//! Offline stand-in for `serde`.
//!
//! This build environment has no access to crates.io. The workspace only
//! *annotates* types with `#[derive(Serialize, Deserialize)]` today — no
//! code path serializes — so this shim supplies the two trait names and
//! no-op derive macros, keeping the source identical to what it would be
//! against the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}
