//! Offline stand-in for `rustc-hash`, implementing the same Fx hashing
//! algorithm (the multiply-rotate hash used by the Rust compiler). Unlike
//! the RNG shim this is byte-for-byte the upstream algorithm, so hash
//! values match the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash function: fast, non-cryptographic, excellent for small
/// integer-like keys such as the simulator's bit-packed outcomes.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            *m.entry(i % 37).or_insert(0) += 1;
        }
        assert_eq!(m.len(), 37);
        assert_eq!(m.values().sum::<u32>(), 1000);
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn set_deduplicates() {
        let s: FxHashSet<u64> = [1, 2, 2, 3, 3, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }
}
