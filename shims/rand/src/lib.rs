//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`Rng::gen_bool`], [`Rng::gen_range`] over half-open integer and float
//! ranges, [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64. Streams therefore differ from upstream `rand`'s ChaCha-based
//! `StdRng`, but every consumer in this workspace only relies on
//! *self-consistent* determinism (same seed, same stream), which this
//! provides. Swapping the real crate back in is a manifest-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Lemire-style scaling: maps 64 random bits onto the span.
                // The bias is < span / 2^64, far below anything these
                // simulations can resolve.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        low + unit_f64(rng.next_u64()) * (high - low)
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 explicit mantissa bits.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p = {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value uniformly from the half-open range `[start, end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(range.start, range.end, self)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named generators offered by this shim.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`shuffle`).
pub mod seq {
    use super::Rng;

    /// Slice extension trait providing an in-place uniform shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly at random (Fisher-Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "observed {freq}");
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..7usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let f = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
