//! No-op `Serialize`/`Deserialize` derive macros for the offline `serde`
//! shim. Nothing in this workspace serializes yet — the derives exist so
//! that types can keep their upstream-compatible `#[derive(Serialize,
//! Deserialize)]` attributes, making the eventual switch to the real crate
//! a manifest-only change.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
