//! Offline stand-in for `rayon`.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the slice of the rayon API the simulator uses: `Vec::into_par_iter
//! ().map(f).collect()` plus a `ThreadPoolBuilder`/`ThreadPool::install`
//! pair that bounds worker-thread count for the closure it runs.
//!
//! Semantics guaranteed (and relied on by the simulator's determinism
//! tests): the mapped results are collected **in input order**, and the
//! worker-thread count never affects which element is mapped with which
//! input — only wall-clock speed. Work is split into contiguous chunks,
//! one `std::thread::scope` thread per chunk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_LIMIT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations will use on this thread.
pub fn current_num_threads() -> usize {
    POOL_LIMIT
        .with(Cell::get)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1)
}

/// Error type mirroring rayon's `ThreadPoolBuildError` (infallible here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of worker threads (0 means "use the default").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors the real API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self
                .num_threads
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        })
    }
}

/// A handle bounding worker-thread count for closures run via
/// [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing parallel operations
    /// invoked inside it.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = POOL_LIMIT.with(|limit| limit.replace(Some(self.num_threads)));
        let result = f();
        POOL_LIMIT.with(|limit| limit.set(previous));
        result
    }

    /// The pool's worker-thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Parallel-iterator entry points, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into the shim's parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// An owned, order-preserving parallel iterator over a `Vec`.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The operations available on the shim's parallel iterators.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Maps every element through `f` in parallel, preserving input order.
    fn map<R, F>(self, f: F) -> ParMap<Self::Item, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, executed by [`ParMap::collect`].
#[derive(Debug)]
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F> {
    /// Executes the map across worker threads and collects the results in
    /// input order.
    pub fn collect<R, C>(self) -> C
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync + Send,
        C: FromIterator<R>,
    {
        let ParMap { items, f } = self;
        let threads = crate::current_num_threads().min(items.len()).max(1);
        if threads <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk_len = items.len().div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut items = items;
        while !items.is_empty() {
            let rest = items.split_off(chunk_len.min(items.len()));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let f = &f;
        let mapped: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel map worker panicked"))
                .collect()
        });
        mapped.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x * 2)
            .collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_bounds_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let seen = pool.install(super::current_num_threads);
        assert_eq!(seen, 3);
        assert_ne!(super::current_num_threads(), 0);
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let input: Vec<u64> = (0..257).collect();
        let run = |threads: usize| -> Vec<u64> {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| input.clone().into_par_iter().map(|x| x * x).collect())
        };
        assert_eq!(run(1), run(7));
    }
}
