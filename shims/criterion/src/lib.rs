//! Offline stand-in for `criterion`.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the benchmark-facing API its benches use (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_with_input`,
//! `bench_function`, `BenchmarkId`, `black_box`) backed by a simple
//! wall-clock harness: per sample it runs a batch of iterations sized so a
//! sample takes roughly a millisecond or more, collects `sample_size`
//! samples bounded by `measurement_time`, and reports min/median/mean
//! nanoseconds per iteration on stdout.
//!
//! No statistical outlier analysis, HTML reports, or baseline storage —
//! `nisq-bench` keeps its own JSON baselines (see `BENCH_sim.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Summary of one benchmark's samples, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sampled {
    /// Fastest observed sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean across samples.
    pub mean_ns: f64,
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Mirrors criterion's CLI configuration hook; the shim has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Display, routine: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        let time = self.measurement_time;
        run_and_report("", &id.to_string(), sample_size, time, routine);
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Bounds the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `routine` against a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_and_report(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            |b| routine(b, input),
        );
        self
    }

    /// Benchmarks a routine with no external input.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_and_report(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            routine,
        );
        self
    }

    /// Ends the group (reporting happens eagerly; this mirrors the API).
    pub fn finish(self) {}
}

fn run_and_report(
    group: &str,
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut routine: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size,
        measurement_time,
        samples_ns: Vec::new(),
    };
    routine(&mut bencher);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match bencher.summary() {
        Some(s) => println!(
            "bench: {label:<60} min {} med {} mean {}",
            format_ns(s.min_ns),
            format_ns(s.median_ns),
            format_ns(s.mean_ns),
        ),
        None => println!("bench: {label:<60} (no samples — routine never called iter)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collects timing samples for one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`: warms up briefly, sizes iteration batches so each
    /// sample is long enough to time reliably, then records samples until
    /// the sample count or the time budget is reached.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up and batch sizing: target ~1 ms or more per sample.
        let warmup_start = Instant::now();
        black_box(f());
        let first_iter = warmup_start.elapsed();
        let batch = if first_iter >= Duration::from_millis(1) {
            1
        } else {
            let per_iter_ns = first_iter.as_nanos().max(20) as u64;
            (1_000_000 / per_iter_ns).clamp(1, 1_000_000)
        };

        let started = Instant::now();
        let mut samples = Vec::with_capacity(self.sample_size);
        while samples.len() < self.sample_size {
            let sample_start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = sample_start.elapsed();
            samples.push(elapsed.as_nanos() as f64 / batch as f64);
            if started.elapsed() > self.measurement_time && samples.len() >= 2 {
                break;
            }
        }
        self.samples_ns = samples;
    }

    /// The summary of the last `iter` call, if any.
    pub fn summary(&self) -> Option<Sampled> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(f64::total_cmp);
        Some(Sampled {
            min_ns: sorted[0],
            median_ns: sorted[sorted.len() / 2],
            mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
        })
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            sample_size: 5,
            measurement_time: Duration::from_millis(200),
            samples_ns: Vec::new(),
        };
        b.iter(|| std::hint::black_box(40 + 2));
        let s = b.summary().expect("samples were collected");
        assert!(s.min_ns <= s.median_ns);
        assert!(s.mean_ns > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn group_runs_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(50));
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        group.finish();
        assert!(ran);
    }
}
