use crate::complex::Complex;
use crate::gates::Matrix2;
use rand::Rng;

/// A pure quantum state over `n` qubits, stored as `2^n` complex amplitudes
/// with qubit `q` mapped to bit `q` of the basis-state index.
///
/// # Layout: split-complex (SoA)
///
/// Amplitudes are stored as two parallel `f64` arrays (`re`, `im`) instead
/// of an array of complex structs. Interleaved re/im pairs defeat the
/// auto-vectorizer on the hot `apply_matrix` pair loops (every vector lane
/// would need a shuffle); with split arrays every kernel below is a
/// stride-1 walk over plain `f64` slices that LLVM turns into packed SIMD
/// arithmetic. The low-stride pairings that remain hostile even then
/// (qubit 0: adjacent pairs; qubit 1: pairs two apart) get dedicated
/// kernels that process a whole cache line of amplitudes per iteration
/// with a fixed shuffle pattern.
///
/// All kernels iterate amplitude *pairs* directly by stride — the
/// `2^(n-1)` pairs `(i, i + 2^q)` — instead of testing `i & mask` over all
/// `2^n` indices, and the frequent operations of the noisy simulator
/// (Pauli injection, measurement) have dedicated fast paths: a Z error is a
/// sign flip over half the amplitudes with no pair shuffle, an X error and
/// a CNOT are pure `swap_with_slice` runs, and `measure` collapses in a
/// single pass reusing the already-computed outcome probability as the
/// renormalization constant.
///
/// # Example
///
/// ```
/// use nisq_sim::StateVector;
/// use nisq_ir::GateKind;
///
/// let mut state = StateVector::new(2);
/// state.apply_single(0, GateKind::H);
/// state.apply_cnot(0, 1);
/// // A Bell pair: only |00> and |11> have weight.
/// assert!((state.probability_of_basis(0b00) - 0.5).abs() < 1e-12);
/// assert!((state.probability_of_basis(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl StateVector {
    /// Creates the all-zeros computational basis state `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds 24 (the state would not fit in
    /// memory; the simulator compacts circuits onto their touched qubits so
    /// this is never needed in practice).
    pub fn new(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= 24,
            "state vectors beyond 24 qubits are not supported"
        );
        let len = 1usize << num_qubits;
        let mut state = StateVector {
            num_qubits,
            re: vec![0.0; len],
            im: vec![0.0; len],
        };
        state.re[0] = 1.0;
        state
    }

    /// Resets the state to `|0...0>` without reallocating, so one scratch
    /// state can be replayed across many trials.
    pub fn reset(&mut self) {
        self.re.fill(0.0);
        self.im.fill(0.0);
        self.re[0] = 1.0;
    }

    /// Resizes the state for `num_qubits` qubits (growing the buffers only
    /// when needed) and resets it to `|0...0>` — so one pooled scratch
    /// state can serve programs of different widths without reallocating
    /// on every switch.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds 24.
    pub fn resize_for(&mut self, num_qubits: usize) {
        assert!(
            num_qubits <= 24,
            "state vectors beyond 24 qubits are not supported"
        );
        let len = 1usize << num_qubits;
        self.num_qubits = num_qubits;
        self.re.resize(len, 0.0);
        self.im.resize(len, 0.0);
        // Long-lived pooled scratches serve programs of many widths; when
        // the high-water capacity is far above the current need (a 24-qubit
        // buffer is 256 MiB per component), release it rather than pinning
        // it for the life of the worker thread.
        if self.re.capacity() > len << 3 {
            self.re.shrink_to(len);
            self.im.shrink_to(len);
        }
        self.reset();
    }

    /// Copies another state of the same width into this one without
    /// allocating — the restore half of the checkpoint mechanism.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn copy_from(&mut self, other: &StateVector) {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "checkpoint width mismatch"
        );
        self.re.copy_from_slice(&other.re);
        self.im.copy_from_slice(&other.im);
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of amplitudes (`2^n`).
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// Whether the state holds no amplitudes (never true in practice; kept
    /// for API symmetry with `len`).
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// The amplitude of basis state `index` (qubit `q` is bit `q`).
    pub fn amplitude(&self, index: usize) -> Complex {
        Complex::new(self.re[index], self.im[index])
    }

    /// Probability of measuring the exact basis state `index`.
    pub fn probability_of_basis(&self, index: usize) -> f64 {
        self.re[index] * self.re[index] + self.im[index] * self.im[index]
    }

    /// Applies a single-qubit gate to `qubit`, dispatching Paulis to their
    /// specialized kernels.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range or the kind is not single-qubit.
    pub fn apply_single(&mut self, qubit: usize, kind: nisq_ir::GateKind) {
        match kind {
            nisq_ir::GateKind::X => self.apply_pauli_x(qubit),
            nisq_ir::GateKind::Y => self.apply_pauli_y(qubit),
            nisq_ir::GateKind::Z => self.apply_pauli_z(qubit),
            _ => self.apply_matrix(qubit, &crate::gates::single_qubit_matrix(kind)),
        }
    }

    /// Applies an arbitrary 2x2 unitary to `qubit`. Diagonal matrices take
    /// a multiply-only fast path (no pair shuffle); qubits 0 and 1 take the
    /// dedicated low-stride kernels.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range.
    pub fn apply_matrix(&mut self, qubit: usize, m: &Matrix2) {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        if m[1] == Complex::ZERO && m[2] == Complex::ZERO {
            return self.apply_diagonal(qubit, m[0], m[3]);
        }
        if m[0] == Complex::ZERO && m[3] == Complex::ZERO {
            // Anti-diagonal (X/Y-like, the shape of every fused Pauli
            // error): a pair swap with phases, half the arithmetic of the
            // general kernel — and bitwise identical to it, because the
            // `0 * a ± 0 * b` terms of the general update vanish exactly.
            return self.apply_antidiagonal(qubit, m[1], m[2]);
        }
        let c = MatrixCoeffs::from(m);
        match 1usize << qubit {
            1 => self.apply_matrix_q0(&c),
            2 => self.apply_matrix_q1(&c),
            mask => self.apply_matrix_strided(mask, &c),
        }
    }

    /// Applies the anti-diagonal unitary `[[0, u], [l, 0]]` to `qubit`:
    /// `lo' = u * hi`, `hi' = l * lo`.
    fn apply_antidiagonal(&mut self, qubit: usize, u: Complex, l: Complex) {
        let mask = 1usize << qubit;
        if mask == 1 {
            let mut p = 0;
            while p < self.re.len() {
                let (ar, ai, br, bi) = (self.re[p], self.im[p], self.re[p + 1], self.im[p + 1]);
                self.re[p] = u.re * br - u.im * bi;
                self.im[p] = u.re * bi + u.im * br;
                self.re[p + 1] = l.re * ar - l.im * ai;
                self.im[p + 1] = l.re * ai + l.im * ar;
                p += 2;
            }
            return;
        }
        let step = mask << 1;
        let mut base = 0;
        while base < self.re.len() {
            let (re_lo, re_hi) = self.re[base..base + step].split_at_mut(mask);
            let (im_lo, im_hi) = self.im[base..base + step].split_at_mut(mask);
            for k in 0..mask {
                let (ar, ai, br, bi) = (re_lo[k], im_lo[k], re_hi[k], im_hi[k]);
                re_lo[k] = u.re * br - u.im * bi;
                im_lo[k] = u.re * bi + u.im * br;
                re_hi[k] = l.re * ar - l.im * ai;
                im_hi[k] = l.re * ai + l.im * ar;
            }
            base += step;
        }
    }

    /// Applies a 2x2 unitary to `qubit` and returns the post-update
    /// probability of measuring 1 — the fused form of
    /// `apply_matrix(q, m); probability_one(q)` a measurement needs,
    /// saving the separate read pass. Bitwise identical to the unfused
    /// sequence: the fused accumulation visits the freshly-written values
    /// in exactly [`StateVector::probability_one`]'s lane order.
    pub(crate) fn apply_matrix_measure(&mut self, qubit: usize, m: &Matrix2) -> f64 {
        let mask = 1usize << qubit;
        let diagonal = m[1] == Complex::ZERO && m[2] == Complex::ZERO;
        let antidiagonal = m[0] == Complex::ZERO && m[3] == Complex::ZERO;
        if mask < 4 || diagonal || antidiagonal {
            self.apply_matrix(qubit, m);
            return self.probability_one(qubit);
        }
        let c = MatrixCoeffs::from(m);
        let step = mask << 1;
        let mut acc = [0.0f64; 4];
        let mut base = 0;
        while base < self.re.len() {
            let (re_lo, re_hi) = self.re[base..base + step].split_at_mut(mask);
            let (im_lo, im_hi) = self.im[base..base + step].split_at_mut(mask);
            for k in 0..mask {
                (re_lo[k], im_lo[k], re_hi[k], im_hi[k]) =
                    c.pair(re_lo[k], im_lo[k], re_hi[k], im_hi[k]);
            }
            let mut k = 0;
            while k < mask {
                acc[0] += re_hi[k] * re_hi[k] + im_hi[k] * im_hi[k];
                acc[1] += re_hi[k + 1] * re_hi[k + 1] + im_hi[k + 1] * im_hi[k + 1];
                acc[2] += re_hi[k + 2] * re_hi[k + 2] + im_hi[k + 2] * im_hi[k + 2];
                acc[3] += re_hi[k + 3] * re_hi[k + 3] + im_hi[k + 3] * im_hi[k + 3];
                k += 4;
            }
            base += step;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3])
    }

    /// Applies two single-qubit unitaries — `ma` on `qa` first, then `mb`
    /// on `qb` — in **one** state traversal: each group of four amplitudes
    /// `{i, i|2^qa, i|2^qb, i|2^qa|2^qb}` is loaded once, run through the
    /// `qa` pair update and then the `qb` pair update in registers, and
    /// stored once. That is the Kronecker product `mb ⊗ ma` evaluated
    /// factored, so the arithmetic — every multiply, add and rounding —
    /// is *identical* to `apply_matrix(qa, ma); apply_matrix(qb, mb)`;
    /// only the intermediate memory round-trip disappears, halving the
    /// traffic of the terminal-flush and pre-CNOT flush pairs that
    /// dominate the ≥12-qubit entries.
    ///
    /// Callers must route diagonal/anti-diagonal matrices to
    /// [`StateVector::apply_matrix`] instead (see [`is_general_shape`]):
    /// those shapes dispatch to specialized single-wire kernels whose
    /// FP-operation sequences this fused kernel does not reproduce.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range or they coincide.
    pub(crate) fn apply_two_matrices(&mut self, qa: usize, ma: &Matrix2, qb: usize, mb: &Matrix2) {
        assert!(qa < self.num_qubits && qb < self.num_qubits);
        assert_ne!(qa, qb, "fused flush wires must differ");
        let amask = 1usize << qa;
        let bmask = 1usize << qb;
        let (lo, hi) = if amask < bmask {
            (amask, bmask)
        } else {
            (bmask, amask)
        };
        if lo < 4 {
            // Short runs would leave the fused loop scalar; the dedicated
            // qubit-0/1 single-wire kernels are faster. (Sequential
            // application is the fused kernel's definition, so this arm is
            // trivially bitwise identical.)
            self.apply_matrix(qa, ma);
            self.apply_matrix(qb, mb);
            return;
        }
        let ca = MatrixCoeffs::from(ma);
        let cb = MatrixCoeffs::from(mb);
        let a_is_lo = amask == lo;
        // Each 4-group {i, i+lo, i+hi, i+hi+lo} splits into four contiguous
        // runs of length `lo`, walked at stride 1 — the same shape as the
        // single-wire strided kernel, twice over. The qa update runs on the
        // qa-pairs first, then the qb update on the results; the
        // intermediate values never leave registers but are the exact
        // values two sequential passes would write and re-read.
        let mut base = 0;
        while base < self.re.len() {
            let mut mid = base;
            while mid < base + hi {
                let (re0, re1, re2, re3) = four_runs(&mut self.re, mid, lo, hi);
                let (im0, im1, im2, im3) = four_runs(&mut self.im, mid, lo, hi);
                for k in 0..lo {
                    let (r0, i0, r1, i1, r2, i2, r3, i3) = if a_is_lo {
                        // qa pairs (0,1) (2,3); qb pairs (0,2) (1,3).
                        let (r0, i0, r1, i1) = ca.pair(re0[k], im0[k], re1[k], im1[k]);
                        let (r2, i2, r3, i3) = ca.pair(re2[k], im2[k], re3[k], im3[k]);
                        let (r0, i0, r2, i2) = cb.pair(r0, i0, r2, i2);
                        let (r1, i1, r3, i3) = cb.pair(r1, i1, r3, i3);
                        (r0, i0, r1, i1, r2, i2, r3, i3)
                    } else {
                        // qa pairs (0,2) (1,3); qb pairs (0,1) (2,3).
                        let (r0, i0, r2, i2) = ca.pair(re0[k], im0[k], re2[k], im2[k]);
                        let (r1, i1, r3, i3) = ca.pair(re1[k], im1[k], re3[k], im3[k]);
                        let (r0, i0, r1, i1) = cb.pair(r0, i0, r1, i1);
                        let (r2, i2, r3, i3) = cb.pair(r2, i2, r3, i3);
                        (r0, i0, r1, i1, r2, i2, r3, i3)
                    };
                    re0[k] = r0;
                    im0[k] = i0;
                    re1[k] = r1;
                    im1[k] = i1;
                    re2[k] = r2;
                    im2[k] = i2;
                    re3[k] = r3;
                    im3[k] = i3;
                }
                mid += lo << 1;
            }
            base += hi << 1;
        }
    }

    /// General pair kernel for `mask >= 4`: each 2·mask block splits into a
    /// contiguous lo half and hi half, and the update walks all four slices
    /// at stride 1 — exactly the shape the auto-vectorizer wants.
    fn apply_matrix_strided(&mut self, mask: usize, c: &MatrixCoeffs) {
        let step = mask << 1;
        let mut base = 0;
        while base < self.re.len() {
            let (re_lo, re_hi) = self.re[base..base + step].split_at_mut(mask);
            let (im_lo, im_hi) = self.im[base..base + step].split_at_mut(mask);
            for k in 0..mask {
                (re_lo[k], im_lo[k], re_hi[k], im_hi[k]) =
                    c.pair(re_lo[k], im_lo[k], re_hi[k], im_hi[k]);
            }
            base += step;
        }
    }

    /// Qubit-0 kernel: pairs are adjacent `(2k, 2k+1)` elements, the
    /// auto-vectorizer-hostile case. Processing four pairs (eight
    /// amplitudes) per iteration with a fixed even/odd shuffle pattern
    /// keeps the loop body branch-free and SLP-vectorizable.
    fn apply_matrix_q0(&mut self, c: &MatrixCoeffs) {
        let mut re_chunks = self.re.chunks_exact_mut(8);
        let mut im_chunks = self.im.chunks_exact_mut(8);
        for (rc, ic) in (&mut re_chunks).zip(&mut im_chunks) {
            let mut p = 0;
            while p < 8 {
                (rc[p], ic[p], rc[p + 1], ic[p + 1]) = c.pair(rc[p], ic[p], rc[p + 1], ic[p + 1]);
                p += 2;
            }
        }
        let re_rest = re_chunks.into_remainder();
        let im_rest = im_chunks.into_remainder();
        let mut p = 0;
        while p < re_rest.len() {
            (re_rest[p], im_rest[p], re_rest[p + 1], im_rest[p + 1]) =
                c.pair(re_rest[p], im_rest[p], re_rest[p + 1], im_rest[p + 1]);
            p += 2;
        }
    }

    /// Qubit-1 kernel: pairs sit two apart, so each 8-amplitude chunk holds
    /// four full pairs `(0,2) (1,3) (4,6) (5,7)` — again a fixed shuffle
    /// pattern the SLP vectorizer can digest.
    fn apply_matrix_q1(&mut self, c: &MatrixCoeffs) {
        let mut re_chunks = self.re.chunks_exact_mut(8);
        let mut im_chunks = self.im.chunks_exact_mut(8);
        for (rc, ic) in (&mut re_chunks).zip(&mut im_chunks) {
            for half in [0usize, 4] {
                for k in half..half + 2 {
                    (rc[k], ic[k], rc[k + 2], ic[k + 2]) =
                        c.pair(rc[k], ic[k], rc[k + 2], ic[k + 2]);
                }
            }
        }
        let re_rest = re_chunks.into_remainder();
        let im_rest = im_chunks.into_remainder();
        if !re_rest.is_empty() {
            for k in 0..2 {
                (re_rest[k], im_rest[k], re_rest[k + 2], im_rest[k + 2]) =
                    c.pair(re_rest[k], im_rest[k], re_rest[k + 2], im_rest[k + 2]);
            }
        }
    }

    /// Applies the diagonal unitary `diag(d0, d1)` to `qubit`: pure
    /// per-amplitude phases, no pairing. Unit factors are skipped entirely.
    fn apply_diagonal(&mut self, qubit: usize, d0: Complex, d1: Complex) {
        let mask = 1usize << qubit;
        let step = mask << 1;
        let scale_run = |re: &mut [f64], im: &mut [f64], d: Complex| {
            for (r, i) in re.iter_mut().zip(im.iter_mut()) {
                let (ar, ai) = (*r, *i);
                *r = d.re * ar - d.im * ai;
                *i = d.re * ai + d.im * ar;
            }
        };
        if d0 != Complex::ONE {
            let mut base = 0;
            while base < self.re.len() {
                scale_run(
                    &mut self.re[base..base + mask],
                    &mut self.im[base..base + mask],
                    d0,
                );
                base += step;
            }
        }
        if d1 != Complex::ONE {
            let mut base = mask;
            while base < self.re.len() {
                scale_run(
                    &mut self.re[base..base + mask],
                    &mut self.im[base..base + mask],
                    d1,
                );
                base += step;
            }
        }
    }

    /// Applies a Pauli-X to `qubit`: a pure run swap, no arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range.
    pub fn apply_pauli_x(&mut self, qubit: usize) {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        let mask = 1usize << qubit;
        let mut base = 0;
        while base < self.re.len() {
            let (re_lo, re_hi) = self.re[base..base + (mask << 1)].split_at_mut(mask);
            re_lo.swap_with_slice(re_hi);
            let (im_lo, im_hi) = self.im[base..base + (mask << 1)].split_at_mut(mask);
            im_lo.swap_with_slice(im_hi);
            base += mask << 1;
        }
    }

    /// Applies a Pauli-Y to `qubit`: pair swap with `±i` phases.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range.
    pub fn apply_pauli_y(&mut self, qubit: usize) {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        let mask = 1usize << qubit;
        if mask == 1 {
            let mut p = 0;
            while p < self.re.len() {
                let (ar, ai, br, bi) = (self.re[p], self.im[p], self.re[p + 1], self.im[p + 1]);
                // Y = [[0, -i], [i, 0]].
                self.re[p] = bi;
                self.im[p] = -br;
                self.re[p + 1] = -ai;
                self.im[p + 1] = ar;
                p += 2;
            }
            return;
        }
        let step = mask << 1;
        let mut base = 0;
        while base < self.re.len() {
            let (re_lo, re_hi) = self.re[base..base + step].split_at_mut(mask);
            let (im_lo, im_hi) = self.im[base..base + step].split_at_mut(mask);
            for k in 0..mask {
                let (ar, ai, br, bi) = (re_lo[k], im_lo[k], re_hi[k], im_hi[k]);
                re_lo[k] = bi;
                im_lo[k] = -br;
                re_hi[k] = -ai;
                im_hi[k] = ar;
            }
            base += step;
        }
    }

    /// Applies a Pauli-Z to `qubit`: a sign flip on the `qubit = 1` half of
    /// the amplitudes, no pair shuffle — the cheapest error-injection path.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range.
    pub fn apply_pauli_z(&mut self, qubit: usize) {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        let mask = 1usize << qubit;
        let mut base = mask;
        while base < self.re.len() {
            for r in &mut self.re[base..base + mask] {
                *r = -*r;
            }
            for i in &mut self.im[base..base + mask] {
                *i = -*i;
            }
            base += mask << 1;
        }
    }

    /// Applies a CNOT with the given control and target.
    ///
    /// The amplitude exchange decomposes into contiguous runs of length
    /// `min(2^c, 2^t)` swapped via `swap_with_slice`, so the kernel is pure
    /// (vectorizable) memory movement.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range or they coincide.
    pub fn apply_cnot(&mut self, control: usize, target: usize) {
        assert!(control < self.num_qubits && target < self.num_qubits);
        assert_ne!(control, target, "control and target must differ");
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        let (lo, hi) = if cmask < tmask {
            (cmask, tmask)
        } else {
            (tmask, cmask)
        };
        let mut outer = 0;
        while outer < self.re.len() {
            let mut mid = outer;
            while mid < outer + hi {
                // Indices `i | cmask` for consecutive `i` form a contiguous
                // run of length `lo`; OR-ing in `tmask` shifts the whole run.
                let src = mid | cmask;
                let dst = src | tmask;
                let (re_a, re_b) = self.re.split_at_mut(dst);
                re_a[src..src + lo].swap_with_slice(&mut re_b[..lo]);
                let (im_a, im_b) = self.im.split_at_mut(dst);
                im_a[src..src + lo].swap_with_slice(&mut im_b[..lo]);
                mid += lo << 1;
            }
            outer += hi << 1;
        }
    }

    /// Applies a SWAP between two qubits.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range or they coincide.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.num_qubits && b < self.num_qubits);
        assert_ne!(a, b, "swap qubits must differ");
        let amask = 1usize << a;
        let bmask = 1usize << b;
        let (lo, hi) = if amask < bmask {
            (amask, bmask)
        } else {
            (bmask, amask)
        };
        let mut outer = 0;
        while outer < self.re.len() {
            let mut mid = outer;
            while mid < outer + hi {
                let src = mid | lo;
                let dst = mid | hi;
                let (re_a, re_b) = self.re.split_at_mut(dst);
                re_a[src..src + lo].swap_with_slice(&mut re_b[..lo]);
                let (im_a, im_b) = self.im.split_at_mut(dst);
                im_a[src..src + lo].swap_with_slice(&mut im_b[..lo]);
                mid += lo << 1;
            }
            outer += hi << 1;
        }
    }

    /// Probability that measuring `qubit` yields 1: a strided sum over the
    /// `qubit = 1` half of the amplitudes, accumulated in four independent
    /// lanes (vectorizable — an FP reduction cannot be auto-vectorized in
    /// its sequential order) with dedicated low-stride patterns for qubits
    /// 0 and 1.
    pub fn probability_one(&self, qubit: usize) -> f64 {
        let mask = 1usize << qubit;
        let n = self.re.len();
        let mut acc = [0.0f64; 4];
        match mask {
            1 if n >= 8 => {
                for (rc, ic) in self.re.chunks_exact(8).zip(self.im.chunks_exact(8)) {
                    acc[0] += rc[1] * rc[1] + ic[1] * ic[1];
                    acc[1] += rc[3] * rc[3] + ic[3] * ic[3];
                    acc[2] += rc[5] * rc[5] + ic[5] * ic[5];
                    acc[3] += rc[7] * rc[7] + ic[7] * ic[7];
                }
            }
            1 => {
                let mut i = 1;
                while i < n {
                    acc[0] += self.re[i] * self.re[i] + self.im[i] * self.im[i];
                    i += 2;
                }
            }
            2 if n >= 8 => {
                for (rc, ic) in self.re.chunks_exact(8).zip(self.im.chunks_exact(8)) {
                    acc[0] += rc[2] * rc[2] + ic[2] * ic[2];
                    acc[1] += rc[3] * rc[3] + ic[3] * ic[3];
                    acc[2] += rc[6] * rc[6] + ic[6] * ic[6];
                    acc[3] += rc[7] * rc[7] + ic[7] * ic[7];
                }
            }
            2 => {
                acc[0] += self.re[2] * self.re[2] + self.im[2] * self.im[2];
                acc[1] += self.re[3] * self.re[3] + self.im[3] * self.im[3];
            }
            _ => {
                let mut base = mask;
                while base < n {
                    let re = &self.re[base..base + mask];
                    let im = &self.im[base..base + mask];
                    let mut k = 0;
                    while k < mask {
                        acc[0] += re[k] * re[k] + im[k] * im[k];
                        acc[1] += re[k + 1] * re[k + 1] + im[k + 1] * im[k + 1];
                        acc[2] += re[k + 2] * re[k + 2] + im[k + 2] * im[k + 2];
                        acc[3] += re[k + 3] * re[k + 3] + im[k + 3] * im[k + 3];
                        k += 4;
                    }
                    base += mask << 1;
                }
            }
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3])
    }

    /// The single-qubit reduced density matrix of `qubit`, as
    /// `(ρ00, ρ10, ρ11)` with `ρ10 = Σ ψ₁ · conj(ψ₀)` over the amplitude
    /// pairs — exactly the three numbers a Kraus branch probability
    /// `tr(A ρ A†) = g00·ρ00 + g11·ρ11 + 2·Re(g01·ρ10)` needs.
    pub(crate) fn reduced_density(&self, qubit: usize) -> (f64, Complex, f64) {
        let mask = 1usize << qubit;
        let n = self.re.len();
        let (mut p0, mut p1, mut xr, mut xi) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut base = 0usize;
        while base < n {
            for k in base..base + mask {
                let (ar, ai) = (self.re[k], self.im[k]);
                let (br, bi) = (self.re[k | mask], self.im[k | mask]);
                p0 += ar * ar + ai * ai;
                p1 += br * br + bi * bi;
                xr += br * ar + bi * ai;
                xi += bi * ar - br * ai;
            }
            base += mask << 1;
        }
        (p0, Complex::new(xr, xi), p1)
    }

    /// Multiplies every amplitude by `factor` (Kraus-branch
    /// renormalization; the one state operation that is not trace-
    /// preserving on its own).
    pub(crate) fn scale(&mut self, factor: f64) {
        for v in self.re.iter_mut() {
            *v *= factor;
        }
        for v in self.im.iter_mut() {
            *v *= factor;
        }
    }

    /// Measures `qubit` in the computational basis, collapsing the state and
    /// returning the sampled outcome.
    ///
    /// The collapse reuses the probability computed for sampling as the
    /// renormalization constant, so measurement costs one strided half-read
    /// plus one full write pass (instead of three full passes).
    pub fn measure<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) -> bool {
        let p1 = self.probability_one(qubit).clamp(0.0, 1.0);
        let outcome = rng.gen_bool(p1);
        let norm = if outcome { p1 } else { 1.0 - p1 };
        self.collapse_with_norm(qubit, outcome, norm);
        outcome
    }

    /// Projects `qubit` onto the given outcome and renormalizes.
    pub fn collapse(&mut self, qubit: usize, outcome: bool) {
        let kept = if outcome {
            self.probability_one(qubit)
        } else {
            1.0 - self.probability_one(qubit)
        };
        self.collapse_with_norm(qubit, outcome, kept);
    }

    /// Zeroes the discarded half and rescales the kept half in one pass,
    /// given the kept half's probability mass. Low strides use a fixed
    /// per-chunk pattern so the pass vectorizes at every qubit index.
    pub(crate) fn collapse_with_norm(&mut self, qubit: usize, outcome: bool, norm: f64) {
        let mask = 1usize << qubit;
        let scale = if norm > 0.0 { 1.0 / norm.sqrt() } else { 0.0 };
        // Kept half starts at `mask` for outcome 1, at 0 for outcome 0.
        let (kept_off, dead_off) = if outcome { (mask, 0) } else { (0, mask) };
        if mask < 4 {
            let step = mask << 1;
            for (rc, ic) in self
                .re
                .chunks_exact_mut(step)
                .zip(self.im.chunks_exact_mut(step))
            {
                for k in 0..mask {
                    rc[kept_off + k] *= scale;
                    ic[kept_off + k] *= scale;
                    rc[dead_off + k] = 0.0;
                    ic[dead_off + k] = 0.0;
                }
            }
            return;
        }
        let step = mask << 1;
        for (rc, ic) in self
            .re
            .chunks_exact_mut(step)
            .zip(self.im.chunks_exact_mut(step))
        {
            for r in &mut rc[kept_off..kept_off + mask] {
                *r *= scale;
            }
            for i in &mut ic[kept_off..kept_off + mask] {
                *i *= scale;
            }
            rc[dead_off..dead_off + mask].fill(0.0);
            ic[dead_off..dead_off + mask].fill(0.0);
        }
    }

    /// Samples a full basis state from the `|amplitude|^2` distribution in
    /// one cumulative pass, without collapsing the state.
    pub fn sample_basis<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.gen();
        let mut cum = 0.0;
        let mut last_nonzero = 0;
        for i in 0..self.re.len() {
            let p = self.re[i] * self.re[i] + self.im[i] * self.im[i];
            if p > 0.0 {
                last_nonzero = i;
                cum += p;
                if u < cum {
                    return i;
                }
            }
        }
        // Rounding can leave `cum` marginally below 1; attribute the
        // remainder to the last basis state with any weight.
        last_nonzero
    }

    /// Samples a basis state like [`StateVector::sample_basis`], but
    /// traverses (and returns) *canonical* indices: canonical bit `q` lives
    /// at physical bit `perm[q]` of the stored layout. Two states that are
    /// bit-permutations of each other (e.g. a relabeling-SWAP trial vs. its
    /// materialized twin) therefore accumulate identical probability
    /// sequences and map the same uniform draw to the same canonical
    /// outcome — the property the tiered engine's determinism contract
    /// rests on.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_qubits`.
    pub fn sample_canonical<R: Rng + ?Sized>(&self, perm: &[u8], rng: &mut R) -> usize {
        assert_eq!(perm.len(), self.num_qubits, "permutation width mismatch");
        if perm.iter().enumerate().all(|(q, &p)| usize::from(p) == q) {
            return self.sample_basis(rng);
        }
        // Only the displaced bits need scattering; identity bits copy
        // through in one mask.
        let mut keep = 0usize;
        let mut moved: [(u32, u32); 24] = [(0, 0); 24];
        let mut num_moved = 0;
        for (q, &p) in perm.iter().enumerate() {
            if usize::from(p) == q {
                keep |= 1 << q;
            } else {
                moved[num_moved] = (q as u32, u32::from(p));
                num_moved += 1;
            }
        }
        let scatter = |c: usize| {
            let mut phys = c & keep;
            for &(q, p) in &moved[..num_moved] {
                phys |= (c >> q & 1) << p;
            }
            phys
        };
        let u = rng.gen();
        let mut cum = 0.0;
        let mut last_nonzero = 0;
        for c in 0..self.re.len() {
            let i = scatter(c);
            let p = self.re[i] * self.re[i] + self.im[i] * self.im[i];
            if p > 0.0 {
                last_nonzero = c;
                cum += p;
                if u < cum {
                    return c;
                }
            }
        }
        last_nonzero
    }

    /// Walks the non-zero-probability basis states in canonical order (see
    /// [`StateVector::sample_canonical`]), yielding `(canonical index,
    /// probability)` — the traversal the tiered engine uses to precompute
    /// its terminal outcome CDF so that a binary search over the CDF is
    /// draw-for-draw identical to the linear scan of a replayed trial.
    pub fn for_each_canonical_probability(&self, perm: &[u8], mut f: impl FnMut(usize, f64)) {
        assert_eq!(perm.len(), self.num_qubits, "permutation width mismatch");
        let mut keep = 0usize;
        let mut moved: [(u32, u32); 24] = [(0, 0); 24];
        let mut num_moved = 0;
        for (q, &p) in perm.iter().enumerate() {
            if usize::from(p) == q {
                keep |= 1 << q;
            } else {
                moved[num_moved] = (q as u32, u32::from(p));
                num_moved += 1;
            }
        }
        for c in 0..self.re.len() {
            let mut i = c & keep;
            for &(q, p) in &moved[..num_moved] {
                i |= (c >> q & 1) << p;
            }
            let p = self.re[i] * self.re[i] + self.im[i] * self.im[i];
            if p > 0.0 {
                f(c, p);
            }
        }
    }

    /// Total probability (should stay 1 up to rounding; used in tests).
    pub fn total_probability(&self) -> f64 {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(r, i)| r * r + i * i)
            .sum()
    }

    /// The basis state with the largest probability and that probability.
    pub fn most_likely_basis(&self) -> (usize, f64) {
        let mut best = (0usize, 0.0f64);
        for i in 0..self.re.len() {
            let p = self.re[i] * self.re[i] + self.im[i] * self.im[i];
            if p > best.1 {
                best = (i, p);
            }
        }
        best
    }
}

/// Splits out the four contiguous length-`lo` runs of the 4-group block at
/// `mid` — offsets `0`, `lo`, `hi`, `hi + lo` — as disjoint mutable slices
/// (the stride-1 walking surface of the fused two-wire kernel).
#[inline]
#[allow(clippy::type_complexity)]
fn four_runs(
    v: &mut [f64],
    mid: usize,
    lo: usize,
    hi: usize,
) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
    let (head, tail) = v[mid..].split_at_mut(hi);
    let (r0, rest) = head.split_at_mut(lo);
    let r1 = &mut rest[..lo];
    let (r2, rest) = tail.split_at_mut(lo);
    let r3 = &mut rest[..lo];
    (r0, r1, r2, r3)
}

/// Whether a 2×2 matrix takes [`StateVector::apply_matrix`]'s *general*
/// kernel — neither diagonal nor anti-diagonal. The fused two-wire kernel
/// ([`StateVector::apply_two_matrices`]) is bitwise identical to sequential
/// application exactly for this shape, so callers gate fusion on it. Kept
/// next to the kernels so the dispatch conditions cannot drift apart.
pub(crate) fn is_general_shape(m: &Matrix2) -> bool {
    let diagonal = m[1] == Complex::ZERO && m[2] == Complex::ZERO;
    let antidiagonal = m[0] == Complex::ZERO && m[3] == Complex::ZERO;
    !diagonal && !antidiagonal
}

/// The eight scalar coefficients of a 2x2 complex matrix, unpacked once per
/// kernel call so the inner loops touch no `Complex` structs.
struct MatrixCoeffs {
    m00r: f64,
    m00i: f64,
    m01r: f64,
    m01i: f64,
    m10r: f64,
    m10i: f64,
    m11r: f64,
    m11i: f64,
}

impl MatrixCoeffs {
    /// The 2x2 complex pair update `(lo', hi') = M · (lo, hi)` — the single
    /// shared body of every general kernel, so a change to the update
    /// cannot break the documented bitwise-identity between kernel paths.
    #[inline(always)]
    fn pair(&self, ar: f64, ai: f64, br: f64, bi: f64) -> (f64, f64, f64, f64) {
        (
            self.m00r * ar - self.m00i * ai + (self.m01r * br - self.m01i * bi),
            self.m00r * ai + self.m00i * ar + (self.m01r * bi + self.m01i * br),
            self.m10r * ar - self.m10i * ai + (self.m11r * br - self.m11i * bi),
            self.m10r * ai + self.m10i * ar + (self.m11r * bi + self.m11i * br),
        )
    }
}

impl From<&Matrix2> for MatrixCoeffs {
    fn from(m: &Matrix2) -> Self {
        MatrixCoeffs {
            m00r: m[0].re,
            m00i: m[0].im,
            m01r: m[1].re,
            m01i: m[1].im,
            m10r: m[2].re,
            m10i: m[2].im,
            m11r: m[3].re,
            m11i: m[3].im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn starts_in_the_all_zero_state() {
        let s = StateVector::new(3);
        assert_eq!(s.probability_of_basis(0), 1.0);
        assert_eq!(s.total_probability(), 1.0);
    }

    #[test]
    fn reset_restores_the_zero_state_in_place() {
        let mut s = StateVector::new(3);
        s.apply_single(0, GateKind::H);
        s.apply_cnot(0, 2);
        s.reset();
        assert_eq!(s.probability_of_basis(0), 1.0);
        assert_eq!(s.total_probability(), 1.0);
    }

    #[test]
    fn resize_for_reuses_and_resets() {
        let mut s = StateVector::new(2);
        s.apply_single(0, GateKind::H);
        s.resize_for(4);
        assert_eq!(s.num_qubits(), 4);
        assert_eq!(s.len(), 16);
        assert_eq!(s.probability_of_basis(0), 1.0);
        s.resize_for(1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_probability(), 1.0);
    }

    #[test]
    fn x_flips_a_qubit() {
        let mut s = StateVector::new(2);
        s.apply_single(1, GateKind::X);
        assert!((s.probability_of_basis(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn h_twice_is_identity() {
        let mut s = StateVector::new(1);
        s.apply_single(0, GateKind::H);
        s.apply_single(0, GateKind::H);
        assert!((s.probability_of_basis(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cnot_respects_control() {
        let mut s = StateVector::new(2);
        s.apply_cnot(0, 1);
        assert!((s.probability_of_basis(0b00) - 1.0).abs() < 1e-12);
        s.apply_single(0, GateKind::X);
        s.apply_cnot(0, 1);
        assert!((s.probability_of_basis(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = StateVector::new(2);
        s.apply_single(0, GateKind::X);
        s.apply_swap(0, 1);
        assert!((s.probability_of_basis(0b10) - 1.0).abs() < 1e-12);
    }

    /// The strided Pauli kernels must agree with the generic matrix path.
    #[test]
    fn pauli_fast_paths_match_generic_matrices() {
        for (kind, qubit) in [
            (GateKind::X, 0usize),
            (GateKind::X, 2),
            (GateKind::Y, 0),
            (GateKind::Y, 1),
            (GateKind::Y, 3),
            (GateKind::Z, 0),
            (GateKind::Z, 3),
        ] {
            // Prepare an asymmetric entangled state.
            let mut fast = StateVector::new(4);
            fast.apply_single(0, GateKind::H);
            fast.apply_single(1, GateKind::Ry(0.7));
            fast.apply_cnot(0, 2);
            fast.apply_cnot(1, 3);
            fast.apply_single(3, GateKind::T);
            let generic = fast.clone();

            fast.apply_single(qubit, kind);
            // Route around the Pauli dispatch: apply the raw matrix through
            // the strided kernel by inlining the reference pair update.
            let m = crate::gates::single_qubit_matrix(kind);
            let mask = 1usize << qubit;
            let mut amps: Vec<Complex> = (0..generic.len()).map(|i| generic.amplitude(i)).collect();
            let mut base = 0;
            while base < amps.len() {
                for i in base..base + mask {
                    let j = i + mask;
                    let a0 = amps[i];
                    let a1 = amps[j];
                    amps[i] = m[0] * a0 + m[1] * a1;
                    amps[j] = m[2] * a0 + m[3] * a1;
                }
                base += mask << 1;
            }
            for (i, b) in amps.iter().enumerate() {
                let a = fast.amplitude(i);
                assert!(
                    (a - *b).norm_sqr() < 1e-24,
                    "{kind:?} on qubit {qubit}: {a} vs {b}"
                );
            }
        }
    }

    /// The dedicated qubit-0/1 kernels must match the generic strided path.
    #[test]
    fn low_stride_kernels_match_reference_pair_update() {
        for qubit in [0usize, 1, 2, 3] {
            for kind in [GateKind::H, GateKind::Ry(0.9), GateKind::Rx(0.4)] {
                let mut s = StateVector::new(4);
                s.apply_single(0, GateKind::H);
                s.apply_single(1, GateKind::Ry(0.7));
                s.apply_single(2, GateKind::T);
                s.apply_cnot(0, 3);
                s.apply_cnot(1, 2);
                let reference: Vec<Complex> = {
                    let m = crate::gates::single_qubit_matrix(kind);
                    let mut amps: Vec<Complex> = (0..s.len()).map(|i| s.amplitude(i)).collect();
                    let mask = 1usize << qubit;
                    let mut base = 0;
                    while base < amps.len() {
                        for i in base..base + mask {
                            let j = i + mask;
                            let a0 = amps[i];
                            let a1 = amps[j];
                            amps[i] = m[0] * a0 + m[1] * a1;
                            amps[j] = m[2] * a0 + m[3] * a1;
                        }
                        base += mask << 1;
                    }
                    amps
                };
                s.apply_single(qubit, kind);
                for (i, want) in reference.iter().enumerate() {
                    let got = s.amplitude(i);
                    assert!(
                        (got - *want).norm_sqr() < 1e-24,
                        "{kind:?} on qubit {qubit}, amp {i}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn diagonal_fast_path_matches_generic() {
        for kind in [GateKind::S, GateKind::T, GateKind::Rz(0.9), GateKind::Sdg] {
            let mut a = StateVector::new(3);
            a.apply_single(0, GateKind::H);
            a.apply_single(1, GateKind::H);
            a.apply_cnot(1, 2);
            let b = a.clone();
            a.apply_single(1, kind);
            let m = crate::gates::single_qubit_matrix(kind);
            let mask = 1usize << 1;
            let amps: Vec<Complex> = (0..b.len())
                .map(|i| {
                    let amp = b.amplitude(i);
                    if i & mask == 0 {
                        m[0] * amp
                    } else {
                        m[3] * amp
                    }
                })
                .collect();
            for (i, y) in amps.iter().enumerate() {
                let x = a.amplitude(i);
                assert!((x - *y).norm_sqr() < 1e-24, "{kind:?}");
            }
        }
    }

    #[test]
    fn toffoli_decomposition_matches_truth_table() {
        // Build the standard 6-CNOT Toffoli from the IR decomposition and
        // check it flips the target exactly when both controls are 1.
        for a in [false, true] {
            for b in [false, true] {
                let mut circuit = nisq_ir::Circuit::new(3);
                circuit.toffoli(nisq_ir::Qubit(0), nisq_ir::Qubit(1), nisq_ir::Qubit(2));
                let mut s = StateVector::new(3);
                if a {
                    s.apply_single(0, GateKind::X);
                }
                if b {
                    s.apply_single(1, GateKind::X);
                }
                for gate in circuit.iter() {
                    match gate.kind() {
                        GateKind::Cnot => {
                            s.apply_cnot(gate.qubits()[0].0, gate.qubits()[1].0);
                        }
                        kind => s.apply_single(gate.qubits()[0].0, kind),
                    }
                }
                let expected = (a as usize) | ((b as usize) << 1) | (((a && b) as usize) << 2);
                assert!(
                    s.probability_of_basis(expected) > 1.0 - 1e-9,
                    "toffoli wrong for inputs ({a}, {b})"
                );
            }
        }
    }

    /// The fused two-wire kernel must be *bitwise* identical to the two
    /// sequential general-kernel passes it replaces, at every stride
    /// pairing (including the dedicated qubit-0/1 kernels, which share the
    /// same per-element pair update).
    #[test]
    fn fused_two_wire_kernel_is_bitwise_identical_to_sequential() {
        use crate::gates::single_qubit_matrix;
        let ma = single_qubit_matrix(GateKind::Ry(0.9));
        let mb = single_qubit_matrix(GateKind::H);
        for (qa, qb) in [(0, 1), (1, 0), (0, 3), (2, 1), (3, 2), (0, 2), (3, 0)] {
            assert!(is_general_shape(&ma) && is_general_shape(&mb));
            let mut sequential = StateVector::new(4);
            sequential.apply_single(0, GateKind::H);
            sequential.apply_single(1, GateKind::Ry(0.7));
            sequential.apply_single(3, GateKind::T);
            sequential.apply_cnot(0, 2);
            sequential.apply_cnot(1, 3);
            let mut fused = sequential.clone();
            sequential.apply_matrix(qa, &ma);
            sequential.apply_matrix(qb, &mb);
            fused.apply_two_matrices(qa, &ma, qb, &mb);
            for i in 0..sequential.len() {
                let (s, f) = (sequential.amplitude(i), fused.amplitude(i));
                assert_eq!(s.re.to_bits(), f.re.to_bits(), "({qa},{qb}) amp {i}");
                assert_eq!(s.im.to_bits(), f.im.to_bits(), "({qa},{qb}) amp {i}");
            }
        }
    }

    #[test]
    fn general_shape_excludes_diagonal_and_antidiagonal() {
        use crate::gates::single_qubit_matrix;
        assert!(is_general_shape(&single_qubit_matrix(GateKind::H)));
        assert!(is_general_shape(&single_qubit_matrix(GateKind::Ry(0.4))));
        assert!(!is_general_shape(&single_qubit_matrix(GateKind::S)));
        assert!(!is_general_shape(&single_qubit_matrix(GateKind::Rz(0.3))));
        assert!(!is_general_shape(&single_qubit_matrix(GateKind::X)));
        assert!(!is_general_shape(&single_qubit_matrix(GateKind::Y)));
    }

    #[test]
    fn measurement_collapses_the_state() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = StateVector::new(1);
        s.apply_single(0, GateKind::H);
        let outcome = s.measure(0, &mut rng);
        let expected_basis = usize::from(outcome);
        assert!((s.probability_of_basis(expected_basis) - 1.0).abs() < 1e-9);
        assert!((s.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn measure_renormalizes_entangled_states() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..16 {
            let mut s = StateVector::new(3);
            s.apply_single(0, GateKind::Ry(0.9));
            s.apply_cnot(0, 1);
            s.apply_single(2, GateKind::H);
            let _ = s.measure(1, &mut rng);
            assert!((s.total_probability() - 1.0).abs() < 1e-9);
            // Qubits 0 and 1 are perfectly correlated.
            let _ = s.measure(2, &mut rng);
            let p0 = s.probability_one(0);
            let p1 = s.probability_one(1);
            assert!((p0 - p1).abs() < 1e-9);
        }
    }

    #[test]
    fn collapse_matches_probability_one() {
        let mut s = StateVector::new(2);
        s.apply_single(0, GateKind::Ry(1.1));
        s.apply_cnot(0, 1);
        let p1 = s.probability_one(0);
        assert!(p1 > 0.0 && p1 < 1.0);
        s.collapse(0, true);
        assert!((s.probability_one(0) - 1.0).abs() < 1e-9);
        assert!((s.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probability_one_matches_amplitudes() {
        let mut s = StateVector::new(2);
        s.apply_single(0, GateKind::H);
        assert!((s.probability_one(0) - 0.5).abs() < 1e-12);
        assert!(s.probability_one(1).abs() < 1e-12);
    }

    #[test]
    fn unitaries_preserve_total_probability() {
        let mut s = StateVector::new(3);
        for kind in [GateKind::H, GateKind::T, GateKind::Ry(0.3), GateKind::S] {
            s.apply_single(1, kind);
        }
        s.apply_cnot(1, 2);
        s.apply_swap(0, 2);
        assert!((s.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sample_canonical_matches_sample_basis_under_identity() {
        let mut s = StateVector::new(3);
        s.apply_single(0, GateKind::H);
        s.apply_single(1, GateKind::Ry(0.8));
        s.apply_cnot(0, 2);
        let perm = [0u8, 1, 2];
        for seed in 0..32u64 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            assert_eq!(s.sample_canonical(&perm, &mut a), s.sample_basis(&mut b));
        }
    }

    #[test]
    fn sample_canonical_is_layout_invariant() {
        // The same logical state stored in two layouts (physical swap vs.
        // relabeled permutation) must map identical draws to identical
        // canonical outcomes.
        let build = || {
            let mut s = StateVector::new(3);
            s.apply_single(0, GateKind::H);
            s.apply_single(1, GateKind::Ry(0.8));
            s.apply_single(2, GateKind::T);
            s.apply_cnot(0, 1);
            s.apply_cnot(1, 2);
            s
        };
        let canonical = build();
        let mut swapped = build();
        swapped.apply_swap(0, 2); // content of wire 0 now lives at slot 2
        let identity = [0u8, 1, 2];
        let relabeled = [2u8, 1, 0];
        for seed in 0..64u64 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            assert_eq!(
                canonical.sample_canonical(&identity, &mut a),
                swapped.sample_canonical(&relabeled, &mut b),
                "seed {seed}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_qubits() {
        let mut s = StateVector::new(2);
        s.apply_single(5, GateKind::X);
    }
}
