use crate::complex::Complex;
use crate::gates::Matrix2;
use rand::Rng;

/// A pure quantum state over `n` qubits, stored as `2^n` complex amplitudes
/// with qubit `q` mapped to bit `q` of the basis-state index.
///
/// All kernels iterate amplitude *pairs* directly by stride — the
/// `2^(n-1)` pairs `(i, i + 2^q)` — instead of testing `i & mask` over all
/// `2^n` indices, and the frequent operations of the noisy simulator
/// (Pauli injection, measurement) have dedicated fast paths: a Z error is a
/// sign flip over half the amplitudes with no pair shuffle, an X error is a
/// pure pair swap, and `measure` collapses in a single pass reusing the
/// already-computed outcome probability as the renormalization constant.
///
/// # Example
///
/// ```
/// use nisq_sim::StateVector;
/// use nisq_ir::GateKind;
///
/// let mut state = StateVector::new(2);
/// state.apply_single(0, GateKind::H);
/// state.apply_cnot(0, 1);
/// // A Bell pair: only |00> and |11> have weight.
/// assert!((state.probability_of_basis(0b00) - 0.5).abs() < 1e-12);
/// assert!((state.probability_of_basis(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// Creates the all-zeros computational basis state `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds 24 (the state would not fit in
    /// memory; the simulator compacts circuits onto their touched qubits so
    /// this is never needed in practice).
    pub fn new(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= 24,
            "state vectors beyond 24 qubits are not supported"
        );
        let mut amps = vec![Complex::ZERO; 1usize << num_qubits];
        amps[0] = Complex::ONE;
        StateVector { num_qubits, amps }
    }

    /// Resets the state to `|0...0>` without reallocating, so one scratch
    /// state can be replayed across many trials.
    pub fn reset(&mut self) {
        self.amps.fill(Complex::ZERO);
        self.amps[0] = Complex::ONE;
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Probability of measuring the exact basis state `index`.
    pub fn probability_of_basis(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// The raw amplitudes, indexed by basis state (qubit `q` is bit `q`).
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Applies a single-qubit gate to `qubit`, dispatching Paulis to their
    /// specialized kernels.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range or the kind is not single-qubit.
    pub fn apply_single(&mut self, qubit: usize, kind: nisq_ir::GateKind) {
        match kind {
            nisq_ir::GateKind::X => self.apply_pauli_x(qubit),
            nisq_ir::GateKind::Y => self.apply_pauli_y(qubit),
            nisq_ir::GateKind::Z => self.apply_pauli_z(qubit),
            _ => self.apply_matrix(qubit, &crate::gates::single_qubit_matrix(kind)),
        }
    }

    /// Applies an arbitrary 2x2 unitary to `qubit`. Diagonal matrices take
    /// a multiply-only fast path (no pair shuffle).
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range.
    pub fn apply_matrix(&mut self, qubit: usize, m: &Matrix2) {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        if m[1] == Complex::ZERO && m[2] == Complex::ZERO {
            return self.apply_diagonal(qubit, m[0], m[3]);
        }
        let mask = 1usize << qubit;
        let (m00, m01, m10, m11) = (m[0], m[1], m[2], m[3]);
        let mut base = 0;
        while base < self.amps.len() {
            for i in base..base + mask {
                let j = i + mask;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m00 * a0 + m01 * a1;
                self.amps[j] = m10 * a0 + m11 * a1;
            }
            base += mask << 1;
        }
    }

    /// Applies the diagonal unitary `diag(d0, d1)` to `qubit`: pure
    /// per-amplitude phases, no pairing. Unit factors are skipped entirely.
    fn apply_diagonal(&mut self, qubit: usize, d0: Complex, d1: Complex) {
        let mask = 1usize << qubit;
        let step = mask << 1;
        if d0 != Complex::ONE {
            let mut base = 0;
            while base < self.amps.len() {
                for i in base..base + mask {
                    self.amps[i] = d0 * self.amps[i];
                }
                base += step;
            }
        }
        if d1 != Complex::ONE {
            let mut base = mask;
            while base < self.amps.len() {
                for j in base..base + mask {
                    self.amps[j] = d1 * self.amps[j];
                }
                base += step;
            }
        }
    }

    /// Applies a Pauli-X to `qubit`: a pure pair swap, no arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range.
    pub fn apply_pauli_x(&mut self, qubit: usize) {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        let mask = 1usize << qubit;
        let mut base = 0;
        while base < self.amps.len() {
            for i in base..base + mask {
                self.amps.swap(i, i + mask);
            }
            base += mask << 1;
        }
    }

    /// Applies a Pauli-Y to `qubit`: pair swap with `±i` phases.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range.
    pub fn apply_pauli_y(&mut self, qubit: usize) {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        let mask = 1usize << qubit;
        let mut base = 0;
        while base < self.amps.len() {
            for i in base..base + mask {
                let j = i + mask;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                // Y = [[0, -i], [i, 0]].
                self.amps[i] = Complex::new(a1.im, -a1.re);
                self.amps[j] = Complex::new(-a0.im, a0.re);
            }
            base += mask << 1;
        }
    }

    /// Applies a Pauli-Z to `qubit`: a sign flip on the `qubit = 1` half of
    /// the amplitudes, no pair shuffle — the cheapest error-injection path.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range.
    pub fn apply_pauli_z(&mut self, qubit: usize) {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        let mask = 1usize << qubit;
        let mut base = mask;
        while base < self.amps.len() {
            for j in base..base + mask {
                self.amps[j] = -self.amps[j];
            }
            base += mask << 1;
        }
    }

    /// Applies a CNOT with the given control and target.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range or they coincide.
    pub fn apply_cnot(&mut self, control: usize, target: usize) {
        assert!(control < self.num_qubits && target < self.num_qubits);
        assert_ne!(control, target, "control and target must differ");
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        // Iterate the 2^(n-2) indices with control = 1, target = 0 as
        // nested block strides around the two bit positions.
        let (lo, hi) = if cmask < tmask {
            (cmask, tmask)
        } else {
            (tmask, cmask)
        };
        let mut outer = 0;
        while outer < self.amps.len() {
            let mut mid = outer;
            while mid < outer + hi {
                for i in mid..mid + lo {
                    let src = i | cmask;
                    self.amps.swap(src, src | tmask);
                }
                mid += lo << 1;
            }
            outer += hi << 1;
        }
    }

    /// Applies a SWAP between two qubits.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range or they coincide.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.num_qubits && b < self.num_qubits);
        assert_ne!(a, b, "swap qubits must differ");
        let amask = 1usize << a;
        let bmask = 1usize << b;
        let (lo, hi) = if amask < bmask {
            (amask, bmask)
        } else {
            (bmask, amask)
        };
        let mut outer = 0;
        while outer < self.amps.len() {
            let mut mid = outer;
            while mid < outer + hi {
                for i in mid..mid + lo {
                    self.amps.swap(i | amask, i | bmask);
                }
                mid += lo << 1;
            }
            outer += hi << 1;
        }
    }

    /// Probability that measuring `qubit` yields 1: a strided sum over the
    /// `qubit = 1` half of the amplitudes.
    pub fn probability_one(&self, qubit: usize) -> f64 {
        let mask = 1usize << qubit;
        let mut sum = 0.0;
        let mut base = mask;
        while base < self.amps.len() {
            for j in base..base + mask {
                sum += self.amps[j].norm_sqr();
            }
            base += mask << 1;
        }
        sum
    }

    /// Measures `qubit` in the computational basis, collapsing the state and
    /// returning the sampled outcome.
    ///
    /// The collapse reuses the probability computed for sampling as the
    /// renormalization constant, so measurement costs one strided half-read
    /// plus one full write pass (instead of three full passes).
    pub fn measure<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) -> bool {
        let p1 = self.probability_one(qubit).clamp(0.0, 1.0);
        let outcome = rng.gen_bool(p1);
        let norm = if outcome { p1 } else { 1.0 - p1 };
        self.collapse_with_norm(qubit, outcome, norm);
        outcome
    }

    /// Projects `qubit` onto the given outcome and renormalizes.
    pub fn collapse(&mut self, qubit: usize, outcome: bool) {
        let kept = if outcome {
            self.probability_one(qubit)
        } else {
            1.0 - self.probability_one(qubit)
        };
        self.collapse_with_norm(qubit, outcome, kept);
    }

    /// Zeroes the discarded half and rescales the kept half in one pass,
    /// given the kept half's probability mass.
    fn collapse_with_norm(&mut self, qubit: usize, outcome: bool, norm: f64) {
        let mask = 1usize << qubit;
        let scale = if norm > 0.0 { 1.0 / norm.sqrt() } else { 0.0 };
        // Kept half starts at `mask` for outcome 1, at 0 for outcome 0.
        let (kept_off, dead_off) = if outcome { (mask, 0) } else { (0, mask) };
        let mut base = 0;
        while base < self.amps.len() {
            for k in base + kept_off..base + kept_off + mask {
                self.amps[k] = self.amps[k].scale(scale);
            }
            for d in base + dead_off..base + dead_off + mask {
                self.amps[d] = Complex::ZERO;
            }
            base += mask << 1;
        }
    }

    /// Samples a full basis state from the `|amplitude|^2` distribution in
    /// one cumulative pass, without collapsing the state. This is how the
    /// simulator realizes a *terminal* run of measurements: one pass
    /// replaces a measure-and-collapse sweep per qubit.
    pub fn sample_basis<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.gen();
        let mut cum = 0.0;
        let mut last_nonzero = 0;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > 0.0 {
                last_nonzero = i;
                cum += p;
                if u < cum {
                    return i;
                }
            }
        }
        // Rounding can leave `cum` marginally below 1; attribute the
        // remainder to the last basis state with any weight.
        last_nonzero
    }

    /// Total probability (should stay 1 up to rounding; used in tests).
    pub fn total_probability(&self) -> f64 {
        self.amps.iter().map(Complex::norm_sqr).sum()
    }

    /// The basis state with the largest probability and that probability.
    pub fn most_likely_basis(&self) -> (usize, f64) {
        let mut best = (0usize, 0.0f64);
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > best.1 {
                best = (i, p);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn starts_in_the_all_zero_state() {
        let s = StateVector::new(3);
        assert_eq!(s.probability_of_basis(0), 1.0);
        assert_eq!(s.total_probability(), 1.0);
    }

    #[test]
    fn reset_restores_the_zero_state_in_place() {
        let mut s = StateVector::new(3);
        s.apply_single(0, GateKind::H);
        s.apply_cnot(0, 2);
        s.reset();
        assert_eq!(s.probability_of_basis(0), 1.0);
        assert_eq!(s.total_probability(), 1.0);
    }

    #[test]
    fn x_flips_a_qubit() {
        let mut s = StateVector::new(2);
        s.apply_single(1, GateKind::X);
        assert!((s.probability_of_basis(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn h_twice_is_identity() {
        let mut s = StateVector::new(1);
        s.apply_single(0, GateKind::H);
        s.apply_single(0, GateKind::H);
        assert!((s.probability_of_basis(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cnot_respects_control() {
        let mut s = StateVector::new(2);
        s.apply_cnot(0, 1);
        assert!((s.probability_of_basis(0b00) - 1.0).abs() < 1e-12);
        s.apply_single(0, GateKind::X);
        s.apply_cnot(0, 1);
        assert!((s.probability_of_basis(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = StateVector::new(2);
        s.apply_single(0, GateKind::X);
        s.apply_swap(0, 1);
        assert!((s.probability_of_basis(0b10) - 1.0).abs() < 1e-12);
    }

    /// The strided Pauli kernels must agree with the generic matrix path.
    #[test]
    fn pauli_fast_paths_match_generic_matrices() {
        for (kind, qubit) in [
            (GateKind::X, 0usize),
            (GateKind::X, 2),
            (GateKind::Y, 1),
            (GateKind::Y, 3),
            (GateKind::Z, 0),
            (GateKind::Z, 3),
        ] {
            // Prepare an asymmetric entangled state.
            let mut fast = StateVector::new(4);
            fast.apply_single(0, GateKind::H);
            fast.apply_single(1, GateKind::Ry(0.7));
            fast.apply_cnot(0, 2);
            fast.apply_cnot(1, 3);
            fast.apply_single(3, GateKind::T);
            let mut generic = fast.clone();

            fast.apply_single(qubit, kind);
            generic.apply_matrix(qubit, &crate::gates::single_qubit_matrix(kind));
            for (a, b) in fast.amplitudes().iter().zip(generic.amplitudes()) {
                assert!(
                    (*a - *b).norm_sqr() < 1e-24,
                    "{kind:?} on qubit {qubit}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn diagonal_fast_path_matches_generic() {
        for kind in [GateKind::S, GateKind::T, GateKind::Rz(0.9), GateKind::Sdg] {
            let mut a = StateVector::new(3);
            a.apply_single(0, GateKind::H);
            a.apply_single(1, GateKind::H);
            a.apply_cnot(1, 2);
            let b = a.clone();
            a.apply_single(1, kind);
            // Route around the diagonal fast path by embedding the matrix in
            // a generic (non-detectable) form: add a zero off-diagonal
            // explicitly via the full pair update.
            let m = crate::gates::single_qubit_matrix(kind);
            let mask = 1usize << 1;
            let amps: Vec<Complex> = b
                .amplitudes()
                .iter()
                .enumerate()
                .map(|(i, &amp)| {
                    if i & mask == 0 {
                        m[0] * amp
                    } else {
                        m[3] * amp
                    }
                })
                .collect();
            for (x, y) in a.amplitudes().iter().zip(&amps) {
                assert!((*x - *y).norm_sqr() < 1e-24, "{kind:?}");
            }
        }
    }

    #[test]
    fn toffoli_decomposition_matches_truth_table() {
        // Build the standard 6-CNOT Toffoli from the IR decomposition and
        // check it flips the target exactly when both controls are 1.
        for a in [false, true] {
            for b in [false, true] {
                let mut circuit = nisq_ir::Circuit::new(3);
                circuit.toffoli(nisq_ir::Qubit(0), nisq_ir::Qubit(1), nisq_ir::Qubit(2));
                let mut s = StateVector::new(3);
                if a {
                    s.apply_single(0, GateKind::X);
                }
                if b {
                    s.apply_single(1, GateKind::X);
                }
                for gate in circuit.iter() {
                    match gate.kind() {
                        GateKind::Cnot => {
                            s.apply_cnot(gate.qubits()[0].0, gate.qubits()[1].0);
                        }
                        kind => s.apply_single(gate.qubits()[0].0, kind),
                    }
                }
                let expected = (a as usize) | ((b as usize) << 1) | (((a && b) as usize) << 2);
                assert!(
                    s.probability_of_basis(expected) > 1.0 - 1e-9,
                    "toffoli wrong for inputs ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn measurement_collapses_the_state() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = StateVector::new(1);
        s.apply_single(0, GateKind::H);
        let outcome = s.measure(0, &mut rng);
        let expected_basis = usize::from(outcome);
        assert!((s.probability_of_basis(expected_basis) - 1.0).abs() < 1e-9);
        assert!((s.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn measure_renormalizes_entangled_states() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..16 {
            let mut s = StateVector::new(3);
            s.apply_single(0, GateKind::Ry(0.9));
            s.apply_cnot(0, 1);
            s.apply_single(2, GateKind::H);
            let _ = s.measure(1, &mut rng);
            assert!((s.total_probability() - 1.0).abs() < 1e-9);
            // Qubits 0 and 1 are perfectly correlated.
            let _ = s.measure(2, &mut rng);
            let p0 = s.probability_one(0);
            let p1 = s.probability_one(1);
            assert!((p0 - p1).abs() < 1e-9);
        }
    }

    #[test]
    fn collapse_matches_probability_one() {
        let mut s = StateVector::new(2);
        s.apply_single(0, GateKind::Ry(1.1));
        s.apply_cnot(0, 1);
        let p1 = s.probability_one(0);
        assert!(p1 > 0.0 && p1 < 1.0);
        s.collapse(0, true);
        assert!((s.probability_one(0) - 1.0).abs() < 1e-9);
        assert!((s.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probability_one_matches_amplitudes() {
        let mut s = StateVector::new(2);
        s.apply_single(0, GateKind::H);
        assert!((s.probability_one(0) - 0.5).abs() < 1e-12);
        assert!(s.probability_one(1).abs() < 1e-12);
    }

    #[test]
    fn unitaries_preserve_total_probability() {
        let mut s = StateVector::new(3);
        for kind in [GateKind::H, GateKind::T, GateKind::Ry(0.3), GateKind::S] {
            s.apply_single(1, kind);
        }
        s.apply_cnot(1, 2);
        s.apply_swap(0, 2);
        assert!((s.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_qubits() {
        let mut s = StateVector::new(2);
        s.apply_single(5, GateKind::X);
    }
}
