use crate::complex::Complex;
use crate::gates::Matrix2;
use rand::Rng;

/// A pure quantum state over `n` qubits, stored as `2^n` complex amplitudes
/// with qubit `q` mapped to bit `q` of the basis-state index.
///
/// # Example
///
/// ```
/// use nisq_sim::StateVector;
/// use nisq_ir::GateKind;
///
/// let mut state = StateVector::new(2);
/// state.apply_single(0, GateKind::H);
/// state.apply_cnot(0, 1);
/// // A Bell pair: only |00> and |11> have weight.
/// assert!((state.probability_of_basis(0b00) - 0.5).abs() < 1e-12);
/// assert!((state.probability_of_basis(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// Creates the all-zeros computational basis state `|0...0>`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds 24 (the state would not fit in
    /// memory; the simulator compacts circuits onto their touched qubits so
    /// this is never needed in practice).
    pub fn new(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= 24,
            "state vectors beyond 24 qubits are not supported"
        );
        let mut amps = vec![Complex::ZERO; 1usize << num_qubits];
        amps[0] = Complex::ONE;
        StateVector { num_qubits, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Probability of measuring the exact basis state `index`.
    pub fn probability_of_basis(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Applies a single-qubit gate to `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range or the kind is not single-qubit.
    pub fn apply_single(&mut self, qubit: usize, kind: nisq_ir::GateKind) {
        self.apply_matrix(qubit, &crate::gates::single_qubit_matrix(kind));
    }

    /// Applies an arbitrary 2x2 unitary to `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range.
    pub fn apply_matrix(&mut self, qubit: usize, m: &Matrix2) {
        assert!(qubit < self.num_qubits, "qubit {qubit} out of range");
        let mask = 1usize << qubit;
        for i in 0..self.amps.len() {
            if i & mask == 0 {
                let j = i | mask;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0] * a0 + m[1] * a1;
                self.amps[j] = m[2] * a0 + m[3] * a1;
            }
        }
    }

    /// Applies a CNOT with the given control and target.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range or they coincide.
    pub fn apply_cnot(&mut self, control: usize, target: usize) {
        assert!(control < self.num_qubits && target < self.num_qubits);
        assert_ne!(control, target, "control and target must differ");
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        for i in 0..self.amps.len() {
            if i & cmask != 0 && i & tmask == 0 {
                self.amps.swap(i, i | tmask);
            }
        }
    }

    /// Applies a SWAP between two qubits.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range or they coincide.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.num_qubits && b < self.num_qubits);
        assert_ne!(a, b, "swap qubits must differ");
        let amask = 1usize << a;
        let bmask = 1usize << b;
        for i in 0..self.amps.len() {
            if i & amask != 0 && i & bmask == 0 {
                self.amps.swap(i, (i & !amask) | bmask);
            }
        }
    }

    /// Probability that measuring `qubit` yields 1.
    pub fn probability_one(&self, qubit: usize) -> f64 {
        let mask = 1usize << qubit;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Measures `qubit` in the computational basis, collapsing the state and
    /// returning the sampled outcome.
    pub fn measure<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) -> bool {
        let p1 = self.probability_one(qubit).clamp(0.0, 1.0);
        let outcome = rng.gen_bool(p1);
        self.collapse(qubit, outcome);
        outcome
    }

    /// Projects `qubit` onto the given outcome and renormalizes.
    pub fn collapse(&mut self, qubit: usize, outcome: bool) {
        let mask = 1usize << qubit;
        let mut norm = 0.0;
        for (i, a) in self.amps.iter_mut().enumerate() {
            let matches = (i & mask != 0) == outcome;
            if matches {
                norm += a.norm_sqr();
            } else {
                *a = Complex::ZERO;
            }
        }
        if norm > 0.0 {
            let scale = 1.0 / norm.sqrt();
            for a in &mut self.amps {
                *a = a.scale(scale);
            }
        }
    }

    /// Total probability (should stay 1 up to rounding; used in tests).
    pub fn total_probability(&self) -> f64 {
        self.amps.iter().map(Complex::norm_sqr).sum()
    }

    /// The basis state with the largest probability and that probability.
    pub fn most_likely_basis(&self) -> (usize, f64) {
        let mut best = (0usize, 0.0f64);
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > best.1 {
                best = (i, p);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::GateKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn starts_in_the_all_zero_state() {
        let s = StateVector::new(3);
        assert_eq!(s.probability_of_basis(0), 1.0);
        assert_eq!(s.total_probability(), 1.0);
    }

    #[test]
    fn x_flips_a_qubit() {
        let mut s = StateVector::new(2);
        s.apply_single(1, GateKind::X);
        assert!((s.probability_of_basis(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn h_twice_is_identity() {
        let mut s = StateVector::new(1);
        s.apply_single(0, GateKind::H);
        s.apply_single(0, GateKind::H);
        assert!((s.probability_of_basis(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cnot_respects_control() {
        let mut s = StateVector::new(2);
        s.apply_cnot(0, 1);
        assert!((s.probability_of_basis(0b00) - 1.0).abs() < 1e-12);
        s.apply_single(0, GateKind::X);
        s.apply_cnot(0, 1);
        assert!((s.probability_of_basis(0b11) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut s = StateVector::new(2);
        s.apply_single(0, GateKind::X);
        s.apply_swap(0, 1);
        assert!((s.probability_of_basis(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn toffoli_decomposition_matches_truth_table() {
        // Build the standard 6-CNOT Toffoli from the IR decomposition and
        // check it flips the target exactly when both controls are 1.
        for a in [false, true] {
            for b in [false, true] {
                let mut circuit = nisq_ir::Circuit::new(3);
                circuit.toffoli(nisq_ir::Qubit(0), nisq_ir::Qubit(1), nisq_ir::Qubit(2));
                let mut s = StateVector::new(3);
                if a {
                    s.apply_single(0, GateKind::X);
                }
                if b {
                    s.apply_single(1, GateKind::X);
                }
                for gate in circuit.iter() {
                    match gate.kind() {
                        GateKind::Cnot => {
                            s.apply_cnot(gate.qubits()[0].0, gate.qubits()[1].0);
                        }
                        kind => s.apply_single(gate.qubits()[0].0, kind),
                    }
                }
                let expected = (a as usize) | ((b as usize) << 1) | (((a && b) as usize) << 2);
                assert!(
                    s.probability_of_basis(expected) > 1.0 - 1e-9,
                    "toffoli wrong for inputs ({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn measurement_collapses_the_state() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = StateVector::new(1);
        s.apply_single(0, GateKind::H);
        let outcome = s.measure(0, &mut rng);
        let expected_basis = usize::from(outcome);
        assert!((s.probability_of_basis(expected_basis) - 1.0).abs() < 1e-9);
        assert!((s.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probability_one_matches_amplitudes() {
        let mut s = StateVector::new(2);
        s.apply_single(0, GateKind::H);
        assert!((s.probability_one(0) - 0.5).abs() < 1e-12);
        assert!(s.probability_one(1).abs() < 1e-12);
    }

    #[test]
    fn unitaries_preserve_total_probability() {
        let mut s = StateVector::new(3);
        for kind in [GateKind::H, GateKind::T, GateKind::Ry(0.3), GateKind::S] {
            s.apply_single(1, kind);
        }
        s.apply_cnot(1, 2);
        s.apply_swap(0, 2);
        assert!((s.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_qubits() {
        let mut s = StateVector::new(2);
        s.apply_single(5, GateKind::X);
    }
}
