//! Stochastic error channels driven by machine calibration data:
//! depolarizing noise after gates, dephasing over time, and classical
//! readout bit-flips.

use nisq_ir::GateKind;
use nisq_machine::{Calibration, HwQubit};
use rand::Rng;

/// Which error channels the simulator injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing error after every hardware CNOT, with the per-edge rate
    /// from the calibration data.
    pub cnot_noise: bool,
    /// Depolarizing error after every single-qubit gate, with the per-qubit
    /// rate from the calibration data.
    pub single_qubit_noise: bool,
    /// Classical bit-flips on measurement results, with the per-qubit
    /// readout error rate.
    pub readout_noise: bool,
    /// Dephasing proportional to gate duration over the qubit's T2 time.
    pub decoherence: bool,
}

impl NoiseModel {
    /// The full noise model: every channel enabled (the default used for
    /// success-rate experiments).
    pub fn full() -> Self {
        NoiseModel {
            cnot_noise: true,
            single_qubit_noise: true,
            readout_noise: true,
            decoherence: true,
        }
    }

    /// A noiseless model, used to validate circuit semantics.
    pub fn ideal() -> Self {
        NoiseModel {
            cnot_noise: false,
            single_qubit_noise: false,
            readout_noise: false,
            decoherence: false,
        }
    }

    /// The paper's first-order model: CNOT and readout errors only.
    pub fn cnot_and_readout_only() -> Self {
        NoiseModel {
            cnot_noise: true,
            single_qubit_noise: false,
            readout_noise: true,
            decoherence: false,
        }
    }

    /// Whether any channel is enabled.
    pub fn is_noisy(&self) -> bool {
        self.cnot_noise || self.single_qubit_noise || self.readout_noise || self.decoherence
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::full()
    }
}

/// A Pauli operator used for stochastic error injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pauli {
    /// Identity (no error).
    I,
    /// Bit flip.
    X,
    /// Bit and phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// The corresponding gate kind, or `None` for the identity.
    pub fn gate_kind(&self) -> Option<GateKind> {
        match self {
            Pauli::I => None,
            Pauli::X => Some(GateKind::X),
            Pauli::Y => Some(GateKind::Y),
            Pauli::Z => Some(GateKind::Z),
        }
    }

    /// Composes two Pauli errors into the single Pauli with the same action
    /// on the state up to global phase (the Pauli group modulo phase is the
    /// Klein four-group). Global phase never affects measurement statistics,
    /// so the trial program applies one composed Pauli instead of two.
    pub fn compose(self, other: Pauli) -> Pauli {
        use Pauli::{I, X, Y, Z};
        match (self, other) {
            (I, p) | (p, I) => p,
            (a, b) if a == b => I,
            (X, Y) | (Y, X) => Z,
            (X, Z) | (Z, X) => Y,
            _ => X, // the remaining cases: (Y, Z) and (Z, Y)
        }
    }

    /// The symplectic `(x, z)` bits of the Pauli: `P = X^x Z^z` up to
    /// global phase — the coordinate system of the tier-0 propagation
    /// tableau ([`crate::clifford::SymplecticPauli`]).
    pub fn symplectic(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// The Pauli with the given symplectic bits (inverse of
    /// [`Pauli::symplectic`], up to global phase).
    pub fn from_symplectic(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    fn from_index(i: usize) -> Pauli {
        match i {
            0 => Pauli::I,
            1 => Pauli::X,
            2 => Pauli::Y,
            _ => Pauli::Z,
        }
    }
}

/// Samples a single-qubit depolarizing error with probability `p`: with
/// probability `p`, a uniformly random non-identity Pauli.
pub fn depolarizing_1q<R: Rng + ?Sized>(p: f64, rng: &mut R) -> Pauli {
    if rng.gen_bool(p.clamp(0.0, 1.0)) {
        fired_depol_1q(rng)
    } else {
        Pauli::I
    }
}

/// The severity draw of a single-qubit depolarizing error that is known to
/// have fired: a uniformly random non-identity Pauli.
pub(crate) fn fired_depol_1q<R: Rng + ?Sized>(rng: &mut R) -> Pauli {
    Pauli::from_index(rng.gen_range(1..4))
}

/// The severity draw of a two-qubit depolarizing error that is known to
/// have fired: a uniformly random non-identity pair of Paulis.
pub(crate) fn fired_depol_2q<R: Rng + ?Sized>(rng: &mut R) -> (Pauli, Pauli) {
    let idx = rng.gen_range(1..16usize);
    (Pauli::from_index(idx / 4), Pauli::from_index(idx % 4))
}

/// Samples a two-qubit depolarizing error with probability `p`: with
/// probability `p`, a uniformly random non-identity pair of Paulis.
pub fn depolarizing_2q<R: Rng + ?Sized>(p: f64, rng: &mut R) -> (Pauli, Pauli) {
    if rng.gen_bool(p.clamp(0.0, 1.0)) {
        // Uniform over the 15 non-identity two-qubit Paulis.
        fired_depol_2q(rng)
    } else {
        (Pauli::I, Pauli::I)
    }
}

/// Samples the error (if any) injected after a single-qubit gate on `qubit`:
/// with the calibrated error probability, a uniformly random non-identity
/// Pauli.
pub fn sample_single_qubit_error<R: Rng + ?Sized>(
    calibration: &Calibration,
    qubit: HwQubit,
    rng: &mut R,
) -> Pauli {
    depolarizing_1q(calibration.single_qubit_error(qubit), rng)
}

/// Samples the two-qubit error injected after a CNOT on the edge
/// `(a, b)`: with the calibrated edge error probability, a uniformly random
/// non-identity pair of Paulis (two-qubit depolarizing noise).
///
/// # Panics
///
/// Panics if the edge has no calibration entry (i.e. the qubits are not
/// adjacent on the machine).
pub fn sample_cnot_error<R: Rng + ?Sized>(
    calibration: &Calibration,
    a: HwQubit,
    b: HwQubit,
    rng: &mut R,
) -> (Pauli, Pauli) {
    let p = calibration
        .cnot_error(a, b)
        .expect("simulated CNOTs act on adjacent hardware qubits");
    depolarizing_2q(p, rng)
}

/// Samples a dephasing error for a qubit idling/operating for
/// `duration_slots` timeslots: a Z error with probability
/// `(1 - exp(-t / T2)) / 2`.
pub fn sample_decoherence_error<R: Rng + ?Sized>(
    calibration: &Calibration,
    qubit: HwQubit,
    duration_slots: u32,
    rng: &mut R,
) -> Pauli {
    // A degenerate calibration (NaN T2, zero timeslot length) can leak a
    // NaN through `dephasing_probability`'s clamp, and `gen_bool` panics
    // outside [0, 1] — guard like every other sampler in this module.
    let p = calibration.dephasing_probability(qubit, duration_slots);
    let p = if p.is_finite() {
        p.clamp(0.0, 1.0)
    } else {
        0.0
    };
    if rng.gen_bool(p) {
        Pauli::Z
    } else {
        Pauli::I
    }
}

/// Samples whether a readout of `qubit` flips its classical result.
pub fn sample_readout_flip<R: Rng + ?Sized>(
    calibration: &Calibration,
    qubit: HwQubit,
    rng: &mut R,
) -> bool {
    rng.gen_bool(calibration.readout_error(qubit).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_machine::{CalibrationGenerator, GridTopology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn calibration() -> Calibration {
        CalibrationGenerator::new(GridTopology::ibmq16(), 0).day(0)
    }

    #[test]
    fn noise_model_presets() {
        assert!(NoiseModel::full().is_noisy());
        assert!(!NoiseModel::ideal().is_noisy());
        let paper = NoiseModel::cnot_and_readout_only();
        assert!(paper.cnot_noise && paper.readout_noise);
        assert!(!paper.single_qubit_noise && !paper.decoherence);
    }

    #[test]
    fn cnot_error_frequency_matches_calibration() {
        let cal = calibration();
        let mut rng = StdRng::seed_from_u64(3);
        let (a, b) = (HwQubit(0), HwQubit(1));
        let p = cal.cnot_error(a, b).unwrap();
        let n = 40_000;
        let errors = (0..n)
            .filter(|_| sample_cnot_error(&cal, a, b, &mut rng) != (Pauli::I, Pauli::I))
            .count();
        let observed = errors as f64 / n as f64;
        assert!(
            (observed - p).abs() < 0.01,
            "observed {observed}, calibrated {p}"
        );
    }

    #[test]
    fn readout_flip_frequency_matches_calibration() {
        let cal = calibration();
        let mut rng = StdRng::seed_from_u64(5);
        let q = HwQubit(3);
        let p = cal.readout_error(q);
        let n = 40_000;
        let flips = (0..n)
            .filter(|_| sample_readout_flip(&cal, q, &mut rng))
            .count();
        assert!(((flips as f64 / n as f64) - p).abs() < 0.01);
    }

    #[test]
    fn decoherence_grows_with_duration() {
        let cal = calibration();
        let mut rng = StdRng::seed_from_u64(7);
        let q = HwQubit(0);
        let n = 20_000;
        let short = (0..n)
            .filter(|_| sample_decoherence_error(&cal, q, 1, &mut rng) != Pauli::I)
            .count();
        let long = (0..n)
            .filter(|_| sample_decoherence_error(&cal, q, 200, &mut rng) != Pauli::I)
            .count();
        assert!(long > short);
    }

    #[test]
    fn decoherence_sampling_survives_degenerate_calibration() {
        // `Machine::try_new` rejects NaN T2 and zero timeslots, but raw
        // `Calibration` values (fields are public) can still carry them;
        // the sampler must degrade to "no dephasing" instead of handing
        // `gen_bool` a NaN.
        let mut rng = StdRng::seed_from_u64(11);
        let q = HwQubit(0);
        let mut nan_t2 = calibration();
        nan_t2.t2_us[0] = f64::NAN;
        assert!(nan_t2.dephasing_probability(q, 10).is_nan());
        assert_eq!(sample_decoherence_error(&nan_t2, q, 10, &mut rng), Pauli::I);
        let mut zero_slot = calibration();
        zero_slot.timeslot_ns = 0.0;
        assert_eq!(
            sample_decoherence_error(&zero_slot, q, 10, &mut rng),
            Pauli::I
        );
    }

    #[test]
    fn pauli_gate_kinds_are_correct() {
        assert_eq!(Pauli::I.gate_kind(), None);
        assert_eq!(Pauli::X.gate_kind(), Some(GateKind::X));
        assert_eq!(Pauli::Z.gate_kind(), Some(GateKind::Z));
    }

    #[test]
    fn pauli_composition_is_the_klein_four_group() {
        use Pauli::{I, X, Y, Z};
        let all = [I, X, Y, Z];
        for p in all {
            assert_eq!(p.compose(I), p);
            assert_eq!(I.compose(p), p);
            assert_eq!(p.compose(p), I);
        }
        assert_eq!(X.compose(Y), Z);
        assert_eq!(Y.compose(X), Z);
        assert_eq!(X.compose(Z), Y);
        assert_eq!(Z.compose(X), Y);
        assert_eq!(Y.compose(Z), X);
        assert_eq!(Z.compose(Y), X);
    }
}
