//! Unitary matrices for the single-qubit gate set.

use crate::complex::Complex;
use nisq_ir::GateKind;
use std::f64::consts::FRAC_1_SQRT_2;

/// A 2x2 unitary in row-major order `[m00, m01, m10, m11]`.
pub type Matrix2 = [Complex; 4];

/// Returns the unitary matrix for a single-qubit gate kind.
///
/// # Panics
///
/// Panics if called with a kind that is not a single-qubit gate (CNOT,
/// SWAP, measurement and barriers are handled separately by the simulator).
pub fn single_qubit_matrix(kind: GateKind) -> Matrix2 {
    let z = Complex::ZERO;
    let one = Complex::ONE;
    match kind {
        GateKind::H => {
            let h = Complex::real(FRAC_1_SQRT_2);
            [h, h, h, -h]
        }
        GateKind::X => [z, one, one, z],
        GateKind::Y => [z, -Complex::I, Complex::I, z],
        GateKind::Z => [one, z, z, -one],
        GateKind::S => [one, z, z, Complex::I],
        GateKind::Sdg => [one, z, z, -Complex::I],
        GateKind::T => [
            one,
            z,
            z,
            Complex::from_polar_unit(std::f64::consts::FRAC_PI_4),
        ],
        GateKind::Tdg => [
            one,
            z,
            z,
            Complex::from_polar_unit(-std::f64::consts::FRAC_PI_4),
        ],
        GateKind::Rx(theta) => {
            let c = Complex::real((theta / 2.0).cos());
            let s = Complex::new(0.0, -(theta / 2.0).sin());
            [c, s, s, c]
        }
        GateKind::Ry(theta) => {
            let c = Complex::real((theta / 2.0).cos());
            let s = Complex::real((theta / 2.0).sin());
            [c, -s, s, c]
        }
        GateKind::Rz(theta) => [
            Complex::from_polar_unit(-theta / 2.0),
            z,
            z,
            Complex::from_polar_unit(theta / 2.0),
        ],
        other => panic!("{other:?} is not a single-qubit unitary"),
    }
}

/// Checks that a matrix is unitary within `tol` (used in tests and debug
/// assertions).
pub fn is_unitary(m: &Matrix2, tol: f64) -> bool {
    // Columns must be orthonormal: M^dagger M = I.
    let c00 = m[0].conj() * m[0] + m[2].conj() * m[2];
    let c11 = m[1].conj() * m[1] + m[3].conj() * m[3];
    let c01 = m[0].conj() * m[1] + m[2].conj() * m[3];
    (c00 - Complex::ONE).norm_sqr() < tol
        && (c11 - Complex::ONE).norm_sqr() < tol
        && c01.norm_sqr() < tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixed_gates_are_unitary() {
        for kind in [
            GateKind::H,
            GateKind::X,
            GateKind::Y,
            GateKind::Z,
            GateKind::S,
            GateKind::Sdg,
            GateKind::T,
            GateKind::Tdg,
            GateKind::Rx(0.7),
            GateKind::Ry(1.3),
            GateKind::Rz(-2.1),
        ] {
            assert!(is_unitary(&single_qubit_matrix(kind), 1e-12), "{kind:?}");
        }
    }

    #[test]
    fn s_squared_is_z() {
        let s = single_qubit_matrix(GateKind::S);
        // S^2 acts as Z on the |1> amplitude.
        let s11 = s[3] * s[3];
        assert!((s11 - (-Complex::ONE)).norm_sqr() < 1e-12);
    }

    #[test]
    fn t_dagger_is_inverse_of_t() {
        let t = single_qubit_matrix(GateKind::T);
        let tdg = single_qubit_matrix(GateKind::Tdg);
        assert!(((t[3] * tdg[3]) - Complex::ONE).norm_sqr() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a single-qubit unitary")]
    fn cnot_is_rejected() {
        let _ = single_qubit_matrix(GateKind::Cnot);
    }
}
