use crate::backend::BackendKind;
use crate::engine::{with_engine_scratch, EngineOptions, TierCounts, TieredEngine};
use crate::noise::NoiseModel;
use crate::program::TrialProgram;
use crate::result::SimulationResult;
use crate::tableau::TableauEngine;
use nisq_core::CompiledCircuit;
use nisq_ir::Circuit;
use nisq_machine::Machine;
use nisq_noise::NoiseSpec;
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Trials per parallel work unit. Fixed (instead of `trials / threads`) so
/// the partition of trials into chunks — and therefore every per-trial RNG
/// stream — is independent of the thread count; merging counts is
/// commutative, so results are bit-for-bit thread-count invariant.
const TRIAL_CHUNK: u32 = 256;

/// Configuration of a multi-trial noisy simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatorConfig {
    /// Number of trials per run (the paper uses 8192 on IBMQ16).
    pub trials: u32,
    /// Base RNG seed; each trial derives its own stream, so results do not
    /// depend on how trials are distributed over threads.
    pub seed: u64,
    /// Which error channels to inject.
    pub noise: NoiseModel,
    /// Number of worker threads (trials are embarrassingly parallel).
    pub threads: usize,
    /// Trial-engine tuning: tier-0 Pauli propagation (statistically
    /// equivalent, on by default) and the exact single-error suffix memo.
    pub engine: EngineOptions,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            trials: 8192,
            seed: 0,
            noise: NoiseModel::full(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            engine: EngineOptions::default(),
        }
    }
}

impl SimulatorConfig {
    /// A configuration with the given trial count and seed, full noise.
    pub fn with_trials(trials: u32, seed: u64) -> Self {
        SimulatorConfig {
            trials,
            seed,
            ..SimulatorConfig::default()
        }
    }

    /// A noiseless configuration (used to validate circuit semantics).
    pub fn ideal(trials: u32) -> Self {
        SimulatorConfig {
            trials,
            seed: 0,
            noise: NoiseModel::ideal(),
            ..SimulatorConfig::default()
        }
    }
}

/// Noisy state-vector simulator bound to one machine snapshot.
///
/// Circuits handed to [`Simulator::run`] are *physical* circuits: their
/// qubit indices are hardware qubit indices on the machine (the output of
/// [`nisq_core::Compiler::compile`]). The simulator only allocates state for
/// the qubits the circuit actually touches, so even executables for large
/// machines simulate quickly as long as the program itself is small.
///
/// Internally, `run` lowers the circuit **once** into a [`TrialProgram`]
/// (pre-resolved indices, pre-fetched calibration data, fused unitaries —
/// see [`crate::program`]) and then replays that flat program for every
/// trial; callers that simulate the same executable repeatedly can lower
/// once themselves via [`Simulator::prepare`] and pass the program to
/// [`Simulator::run_program`].
#[derive(Debug, Clone)]
pub struct Simulator<'m> {
    machine: &'m Machine,
    config: SimulatorConfig,
    /// Worker pool built once per simulator (not per run), so figure sweeps
    /// that call [`Simulator::run_program`] thousands of times stop paying
    /// per-call thread spawn. `None` when the configuration is serial.
    pool: Option<Arc<rayon::ThreadPool>>,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator for a machine snapshot.
    pub fn new(machine: &'m Machine, config: SimulatorConfig) -> Self {
        let threads = config.threads.max(1);
        // Only build a pool a run can actually use: configurations whose
        // trial count fits one chunk always take the serial path.
        let pool = (threads > 1 && config.trials > TRIAL_CHUNK).then(|| {
            Arc::new(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("building the trial thread pool cannot fail"),
            )
        });
        Simulator {
            machine,
            config,
            pool,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// Lowers a physical circuit into a replayable trial program under this
    /// simulator's noise model.
    ///
    /// # Panics
    ///
    /// Panics if the circuit references qubits outside the machine or uses
    /// more than 128 classical bits.
    pub fn prepare(&self, physical: &Circuit) -> TrialProgram {
        self.prepare_with_noise(physical, None)
    }

    /// Like [`Simulator::prepare`], additionally binding the channels of a
    /// declarative [`NoiseSpec`] on top of the configured built-in
    /// [`NoiseModel`]. `None` is exactly [`Simulator::prepare`].
    ///
    /// # Panics
    ///
    /// Panics if the circuit references qubits outside the machine or uses
    /// more than 128 classical bits.
    pub fn prepare_with_noise(&self, physical: &Circuit, spec: Option<&NoiseSpec>) -> TrialProgram {
        TrialProgram::lower_with_spec(physical, self.machine, &self.config.noise, spec)
    }

    /// Runs the configured number of trials of a physical circuit and
    /// aggregates the measured bit-strings.
    ///
    /// # Panics
    ///
    /// Panics if the circuit references qubits outside the machine.
    pub fn run(&self, physical: &Circuit) -> SimulationResult {
        self.run_program(&self.prepare(physical))
    }

    /// Runs the configured number of trials of an already-lowered program.
    ///
    /// Trials are executed by the four-tier engine (see [`TieredEngine`]):
    /// error patterns are pre-sampled per trial, error-free trials are
    /// served from the precomputed ideal terminal distribution, errors
    /// with an all-Clifford suffix are conjugated symplectically onto that
    /// distribution (tier 0), trials whose first error fires before the
    /// Clifford boundary resume from a shared ideal-prefix checkpoint (with
    /// single-error suffixes memoized), and only the rest replay in full.
    /// Results are bit-for-bit deterministic for a seed and independent of
    /// the thread count; with [`EngineOptions::pauli_prop`] disabled they
    /// are additionally bit-identical to a [`TrialProgram::run_trial`]
    /// loop (tier-0 outcomes are statistically equivalent instead — see
    /// [`crate::engine`]).
    pub fn run_program(&self, program: &TrialProgram) -> SimulationResult {
        self.run_program_with_stats(program).0
    }

    /// Like [`Simulator::run_program`], additionally reporting how many
    /// trials each engine tier served (and which backend served them).
    pub fn run_program_with_stats(&self, program: &TrialProgram) -> (SimulationResult, TierCounts) {
        let trials = self.config.trials;
        let seed = self.config.seed;
        // Backend dispatch: fully-Clifford programs run on the stabilizer
        // tableau unless the caller demanded bit-exactness — the tableau is
        // statistically equivalent to the dense engine, so it sits behind
        // the same `pauli_prop` gate as tier 0 and `EngineOptions::exact()`
        // pins the dense bit-exact path.
        let engine =
            if program.backend_kind() == BackendKind::Tableau && self.config.engine.pauli_prop {
                ChunkEngine::Tableau(TableauEngine::new(program))
            } else {
                assert!(
                    program.num_qubits() <= 24,
                    "program touches more than 24 qubits, which only the tableau backend can \
                 simulate; it was forced onto the dense path (EngineOptions::exact() or \
                 pauli_prop = false)"
                );
                ChunkEngine::Dense(TieredEngine::with_options(program, self.config.engine))
            };

        // The serial path walks the same fixed-size chunk partition the
        // pool distributes, so *everything* the engine reports — outcomes
        // and the per-chunk memo hit counters alike — is a pure function
        // of (program, seed, trials), independent of the thread count.
        let chunks: Vec<(u32, u32)> = (0..trials.div_ceil(TRIAL_CHUNK))
            .map(|c| (c * TRIAL_CHUNK, ((c + 1) * TRIAL_CHUNK).min(trials)))
            .collect();
        let pool = self.pool.as_ref().filter(|_| trials > TRIAL_CHUNK);
        let partials: Vec<(FxHashMap<u128, u32>, TierCounts)> = if let Some(pool) = pool {
            pool.install(|| {
                chunks
                    .into_par_iter()
                    .map(|(start, end)| simulate_chunk(&engine, seed, start, end))
                    .collect()
            })
        } else {
            chunks
                .into_iter()
                .map(|(start, end)| simulate_chunk(&engine, seed, start, end))
                .collect()
        };
        // Count merging is commutative, so the final map does not depend
        // on chunk completion order.
        let mut counts = FxHashMap::default();
        let mut tiers = TierCounts::default();
        for (partial, partial_tiers) in partials {
            for (key, count) in partial {
                *counts.entry(key).or_insert(0) += count;
            }
            tiers.merge(&partial_tiers);
        }
        (
            SimulationResult::from_bitpacked(counts, program.num_clbits()),
            tiers,
        )
    }

    /// Runs the circuit without any noise (regardless of the configured
    /// noise model), useful for checking circuit semantics.
    pub fn run_ideal(&self, physical: &Circuit) -> SimulationResult {
        let ideal = Simulator {
            machine: self.machine,
            config: SimulatorConfig {
                noise: NoiseModel::ideal(),
                ..self.config
            },
            // Same thread count: reuse the already-built pool.
            pool: self.pool.clone(),
        };
        ideal.run(physical)
    }

    /// Convenience wrapper: simulates a compiled executable and returns the
    /// fraction of trials that produced `expected` — the paper's success
    /// rate.
    pub fn success_rate(&self, compiled: &CompiledCircuit, expected: &[bool]) -> f64 {
        self.run(compiled.physical_circuit())
            .probability_of(expected)
    }
}

/// The per-program engine a run dispatches its chunks through: the dense
/// four-tier engine, or the stabilizer-tableau engine for fully-Clifford
/// programs.
#[derive(Debug)]
enum ChunkEngine<'p> {
    Dense(TieredEngine<'p>),
    Tableau(TableauEngine<'p>),
}

/// Simulates trials `[start, end)` through the selected engine with the
/// calling worker's pooled scratch, returning bit-packed outcome counts and
/// tier occupancy.
fn simulate_chunk(
    engine: &ChunkEngine<'_>,
    seed: u64,
    start: u32,
    end: u32,
) -> (FxHashMap<u128, u32>, TierCounts) {
    let mut local: FxHashMap<u128, u32> = FxHashMap::default();
    let mut tiers = TierCounts::default();
    match engine {
        ChunkEngine::Dense(dense) => with_engine_scratch(|scratch| {
            dense.run_chunk(seed, start, end, scratch, &mut local, &mut tiers);
        }),
        ChunkEngine::Tableau(tableau) => {
            tableau.run_chunk(seed, start, end, &mut local, &mut tiers);
        }
    }
    (local, tiers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_core::{Compiler, CompilerConfig};
    use nisq_ir::Benchmark;

    fn machine() -> Machine {
        Machine::ibmq16_on_day(2, 0)
    }

    #[test]
    fn ideal_simulation_reproduces_benchmark_answers() {
        // Validates both the benchmark constructions and the simulator: with
        // no noise, every benchmark returns its classically-known answer in
        // every trial.
        let m = machine();
        let sim = Simulator::new(&m, SimulatorConfig::ideal(64));
        for b in Benchmark::all() {
            let result = sim.run(&b.circuit());
            let expected = b.expected_output();
            assert!(
                (result.probability_of(&expected) - 1.0).abs() < 1e-12,
                "{b} produced {result}"
            );
        }
    }

    #[test]
    fn ideal_simulation_of_compiled_circuits_matches_logical_answers() {
        // The compiled physical circuit (with placement and swap insertion)
        // must compute the same function as the logical circuit.
        let m = machine();
        let sim = Simulator::new(&m, SimulatorConfig::ideal(32));
        for config in CompilerConfig::table1() {
            let compiler = Compiler::new(&m, config);
            for b in [
                Benchmark::Bv4,
                Benchmark::Toffoli,
                Benchmark::Adder,
                Benchmark::Hs4,
            ] {
                let compiled = compiler.compile(&b.circuit()).unwrap();
                let result = sim.run(compiled.physical_circuit());
                assert!(
                    (result.probability_of(&b.expected_output()) - 1.0).abs() < 1e-12,
                    "{} mis-compiled {b}: {result}",
                    config.algorithm
                );
            }
        }
    }

    #[test]
    fn noise_reduces_success_rate() {
        let m = machine();
        let compiled = Compiler::new(&m, CompilerConfig::qiskit())
            .compile(&Benchmark::Toffoli.circuit())
            .unwrap();
        let noisy = Simulator::new(&m, SimulatorConfig::with_trials(512, 1));
        let success = noisy.success_rate(&compiled, &Benchmark::Toffoli.expected_output());
        assert!(success < 1.0);
        assert!(success > 0.0);
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let m = machine();
        let compiled = Compiler::new(&m, CompilerConfig::greedy_e())
            .compile(&Benchmark::Bv4.circuit())
            .unwrap();
        let sim = Simulator::new(&m, SimulatorConfig::with_trials(256, 9));
        let a = sim.run(compiled.physical_circuit());
        let b = sim.run(compiled.physical_circuit());
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let m = machine();
        let compiled = Compiler::new(&m, CompilerConfig::greedy_v())
            .compile(&Benchmark::Peres.circuit())
            .unwrap();
        // 2050 trials spans multiple chunks with a ragged tail, exercising
        // the partition logic rather than just the serial path.
        let mut cfg = SimulatorConfig::with_trials(2050, 4);
        cfg.threads = 1;
        let serial = Simulator::new(&m, cfg).run(compiled.physical_circuit());
        for threads in [2, 3, 4, 7] {
            cfg.threads = threads;
            let parallel = Simulator::new(&m, cfg).run(compiled.physical_circuit());
            assert_eq!(serial, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn prepared_program_reuse_matches_run() {
        let m = machine();
        let compiled = Compiler::new(&m, CompilerConfig::greedy_e())
            .compile(&Benchmark::Hs4.circuit())
            .unwrap();
        let sim = Simulator::new(&m, SimulatorConfig::with_trials(512, 11));
        let program = sim.prepare(compiled.physical_circuit());
        let via_program = sim.run_program(&program);
        let via_run = sim.run(compiled.physical_circuit());
        assert_eq!(via_program, via_run);
    }

    #[test]
    fn better_mappings_give_higher_success() {
        // The core claim of the paper, in miniature: the noise-adaptive
        // optimal mapping beats the noise-unaware baseline under the same
        // noise. Averaged over several benchmarks to keep the test robust.
        let m = machine();
        let sim = Simulator::new(&m, SimulatorConfig::with_trials(1024, 3));
        let mut adaptive_total = 0.0;
        let mut baseline_total = 0.0;
        for b in [Benchmark::Bv4, Benchmark::Bv8, Benchmark::Hs4] {
            let expected = b.expected_output();
            let adaptive = Compiler::new(&m, CompilerConfig::r_smt_star(0.5))
                .compile(&b.circuit())
                .unwrap();
            let baseline = Compiler::new(&m, CompilerConfig::qiskit())
                .compile(&b.circuit())
                .unwrap();
            adaptive_total += sim.success_rate(&adaptive, &expected);
            baseline_total += sim.success_rate(&baseline, &expected);
        }
        assert!(
            adaptive_total > baseline_total,
            "adaptive {adaptive_total} <= baseline {baseline_total}"
        );
    }

    #[test]
    fn analytic_estimate_tracks_measured_success() {
        // The analytic reliability score and the simulated success rate
        // should agree in ordering for clearly-separated mappings.
        let m = machine();
        let sim = Simulator::new(&m, SimulatorConfig::with_trials(1024, 5));
        let b = Benchmark::Bv8;
        let good = Compiler::new(&m, CompilerConfig::r_smt_star(0.5))
            .compile(&b.circuit())
            .unwrap();
        let bad = Compiler::new(&m, CompilerConfig::qiskit())
            .compile(&b.circuit())
            .unwrap();
        let good_measured = sim.success_rate(&good, &b.expected_output());
        let bad_measured = sim.success_rate(&bad, &b.expected_output());
        assert!(good.estimated_reliability() > bad.estimated_reliability());
        assert!(good_measured > bad_measured);
    }
}
