use crate::noise::{self, NoiseModel, Pauli};
use crate::result::SimulationResult;
use crate::state::StateVector;
use nisq_core::CompiledCircuit;
use nisq_ir::{Circuit, GateKind};
use nisq_machine::{HwQubit, Machine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Configuration of a multi-trial noisy simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatorConfig {
    /// Number of trials per run (the paper uses 8192 on IBMQ16).
    pub trials: u32,
    /// Base RNG seed; each trial derives its own stream, so results do not
    /// depend on how trials are distributed over threads.
    pub seed: u64,
    /// Which error channels to inject.
    pub noise: NoiseModel,
    /// Number of worker threads (trials are embarrassingly parallel).
    pub threads: usize,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            trials: 8192,
            seed: 0,
            noise: NoiseModel::full(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
        }
    }
}

impl SimulatorConfig {
    /// A configuration with the given trial count and seed, full noise.
    pub fn with_trials(trials: u32, seed: u64) -> Self {
        SimulatorConfig {
            trials,
            seed,
            ..SimulatorConfig::default()
        }
    }

    /// A noiseless configuration (used to validate circuit semantics).
    pub fn ideal(trials: u32) -> Self {
        SimulatorConfig {
            trials,
            seed: 0,
            noise: NoiseModel::ideal(),
            ..SimulatorConfig::default()
        }
    }
}

/// Noisy state-vector simulator bound to one machine snapshot.
///
/// Circuits handed to [`Simulator::run`] are *physical* circuits: their
/// qubit indices are hardware qubit indices on the machine (the output of
/// [`nisq_core::Compiler::compile`]). The simulator only allocates state for
/// the qubits the circuit actually touches, so even executables for large
/// machines simulate quickly as long as the program itself is small.
#[derive(Debug, Clone)]
pub struct Simulator<'m> {
    machine: &'m Machine,
    config: SimulatorConfig,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl<'m> Simulator<'m> {
    /// Creates a simulator for a machine snapshot.
    pub fn new(machine: &'m Machine, config: SimulatorConfig) -> Self {
        Simulator { machine, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// Runs the configured number of trials of a physical circuit and
    /// aggregates the measured bit-strings.
    ///
    /// # Panics
    ///
    /// Panics if the circuit references qubits outside the machine.
    pub fn run(&self, physical: &Circuit) -> SimulationResult {
        let expanded = physical.expand_swaps();
        assert!(
            expanded.num_qubits() <= self.machine.num_qubits()
                || expanded
                    .iter()
                    .all(|g| g.qubits().iter().all(|q| q.0 < self.machine.num_qubits())),
            "circuit uses qubits outside the machine"
        );

        // Compact the circuit onto the qubits it actually touches.
        let mut touched: Vec<usize> = expanded
            .iter()
            .flat_map(|g| g.qubits().iter().map(|q| q.0))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        let mut compact = vec![usize::MAX; expanded.num_qubits().max(self.machine.num_qubits())];
        for (i, &hw) in touched.iter().enumerate() {
            compact[hw] = i;
        }

        let trials = self.config.trials;
        let threads = self.config.threads.max(1);
        let chunk = trials.div_ceil(threads as u32).max(1);

        let mut counts: BTreeMap<Vec<bool>, u32> = BTreeMap::new();
        if threads == 1 || trials < 64 {
            for trial in 0..trials {
                let bits = self.run_one_trial(&expanded, &touched, &compact, trial);
                *counts.entry(bits).or_insert(0) += 1;
            }
        } else {
            let partials = crossbeam::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads as u32 {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(trials);
                    if start >= end {
                        break;
                    }
                    let expanded = &expanded;
                    let touched = &touched;
                    let compact = &compact;
                    handles.push(scope.spawn(move |_| {
                        let mut local: BTreeMap<Vec<bool>, u32> = BTreeMap::new();
                        for trial in start..end {
                            let bits = self.run_one_trial(expanded, touched, compact, trial);
                            *local.entry(bits).or_insert(0) += 1;
                        }
                        local
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("simulation worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("simulation scope panicked");
            for partial in partials {
                for (bits, count) in partial {
                    *counts.entry(bits).or_insert(0) += count;
                }
            }
        }
        SimulationResult::new(counts)
    }

    /// Runs the circuit without any noise (regardless of the configured
    /// noise model), useful for checking circuit semantics.
    pub fn run_ideal(&self, physical: &Circuit) -> SimulationResult {
        let ideal = Simulator {
            machine: self.machine,
            config: SimulatorConfig {
                noise: NoiseModel::ideal(),
                ..self.config
            },
        };
        ideal.run(physical)
    }

    /// Convenience wrapper: simulates a compiled executable and returns the
    /// fraction of trials that produced `expected` — the paper's success
    /// rate.
    pub fn success_rate(&self, compiled: &CompiledCircuit, expected: &[bool]) -> f64 {
        self.run(compiled.physical_circuit()).probability_of(expected)
    }

    fn run_one_trial(
        &self,
        expanded: &Circuit,
        touched: &[usize],
        compact: &[usize],
        trial: u32,
    ) -> Vec<bool> {
        let calibration = self.machine.calibration();
        let noise_model = self.config.noise;
        let mut rng = StdRng::seed_from_u64(splitmix64(
            self.config.seed ^ (u64::from(trial)).wrapping_mul(0x9e3779b9),
        ));
        let mut state = StateVector::new(touched.len());
        let mut clbits = vec![false; expanded.num_clbits()];

        let mean_cnot_error = calibration.mean_cnot_error();
        let single_slots = calibration.durations.single_qubit_slots;

        for gate in expanded.iter() {
            match gate.kind() {
                GateKind::Cnot => {
                    let hw_a = gate.qubits()[0].0;
                    let hw_b = gate.qubits()[1].0;
                    let (ca, cb) = (compact[hw_a], compact[hw_b]);
                    state.apply_cnot(ca, cb);
                    if noise_model.cnot_noise {
                        let p = calibration
                            .cnot_error(HwQubit(hw_a), HwQubit(hw_b))
                            .unwrap_or(mean_cnot_error);
                        let (pa, pb) = noise::depolarizing_2q(p, &mut rng);
                        apply_pauli(&mut state, ca, pa);
                        apply_pauli(&mut state, cb, pb);
                    }
                    if noise_model.decoherence {
                        let slots = calibration
                            .durations
                            .cnot(nisq_machine::EdgeId::new(HwQubit(hw_a), HwQubit(hw_b)))
                            .unwrap_or(4);
                        for (hw, c) in [(hw_a, ca), (hw_b, cb)] {
                            let pauli = noise::sample_decoherence_error(
                                calibration,
                                HwQubit(hw),
                                slots,
                                &mut rng,
                            );
                            apply_pauli(&mut state, c, pauli);
                        }
                    }
                }
                GateKind::Swap => {
                    // expand_swaps() removes these; kept for robustness.
                    let a = compact[gate.qubits()[0].0];
                    let b = compact[gate.qubits()[1].0];
                    state.apply_swap(a, b);
                }
                GateKind::Measure => {
                    let hw = gate.qubits()[0].0;
                    let c = compact[hw];
                    let mut outcome = state.measure(c, &mut rng);
                    if noise_model.readout_noise
                        && noise::sample_readout_flip(calibration, HwQubit(hw), &mut rng)
                    {
                        outcome = !outcome;
                    }
                    clbits[gate.clbits()[0].0] = outcome;
                }
                GateKind::Barrier => {}
                kind => {
                    let hw = gate.qubits()[0].0;
                    let c = compact[hw];
                    state.apply_single(c, kind);
                    if noise_model.single_qubit_noise {
                        let pauli =
                            noise::sample_single_qubit_error(calibration, HwQubit(hw), &mut rng);
                        apply_pauli(&mut state, c, pauli);
                    }
                    if noise_model.decoherence {
                        let pauli = noise::sample_decoherence_error(
                            calibration,
                            HwQubit(hw),
                            single_slots,
                            &mut rng,
                        );
                        apply_pauli(&mut state, c, pauli);
                    }
                }
            }
        }
        clbits
    }
}

fn apply_pauli(state: &mut StateVector, qubit: usize, pauli: Pauli) {
    if let Some(kind) = pauli.gate_kind() {
        state.apply_single(qubit, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_core::{Compiler, CompilerConfig};
    use nisq_ir::Benchmark;

    fn machine() -> Machine {
        Machine::ibmq16_on_day(2, 0)
    }

    #[test]
    fn ideal_simulation_reproduces_benchmark_answers() {
        // Validates both the benchmark constructions and the simulator: with
        // no noise, every benchmark returns its classically-known answer in
        // every trial.
        let m = machine();
        let sim = Simulator::new(&m, SimulatorConfig::ideal(64));
        for b in Benchmark::all() {
            let result = sim.run(&b.circuit());
            let expected = b.expected_output();
            assert!(
                (result.probability_of(&expected) - 1.0).abs() < 1e-12,
                "{b} produced {result}"
            );
        }
    }

    #[test]
    fn ideal_simulation_of_compiled_circuits_matches_logical_answers() {
        // The compiled physical circuit (with placement and swap insertion)
        // must compute the same function as the logical circuit.
        let m = machine();
        let sim = Simulator::new(&m, SimulatorConfig::ideal(32));
        for config in CompilerConfig::table1() {
            let compiler = Compiler::new(&m, config);
            for b in [Benchmark::Bv4, Benchmark::Toffoli, Benchmark::Adder, Benchmark::Hs4] {
                let compiled = compiler.compile(&b.circuit()).unwrap();
                let result = sim.run(compiled.physical_circuit());
                assert!(
                    (result.probability_of(&b.expected_output()) - 1.0).abs() < 1e-12,
                    "{} mis-compiled {b}: {result}",
                    config.algorithm
                );
            }
        }
    }

    #[test]
    fn noise_reduces_success_rate() {
        let m = machine();
        let compiled = Compiler::new(&m, CompilerConfig::qiskit())
            .compile(&Benchmark::Toffoli.circuit())
            .unwrap();
        let noisy = Simulator::new(&m, SimulatorConfig::with_trials(512, 1));
        let success = noisy.success_rate(&compiled, &Benchmark::Toffoli.expected_output());
        assert!(success < 1.0);
        assert!(success > 0.0);
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let m = machine();
        let compiled = Compiler::new(&m, CompilerConfig::greedy_e())
            .compile(&Benchmark::Bv4.circuit())
            .unwrap();
        let sim = Simulator::new(&m, SimulatorConfig::with_trials(256, 9));
        let a = sim.run(compiled.physical_circuit());
        let b = sim.run(compiled.physical_circuit());
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let m = machine();
        let compiled = Compiler::new(&m, CompilerConfig::greedy_v())
            .compile(&Benchmark::Peres.circuit())
            .unwrap();
        let mut cfg = SimulatorConfig::with_trials(256, 4);
        cfg.threads = 1;
        let serial = Simulator::new(&m, cfg).run(compiled.physical_circuit());
        cfg.threads = 4;
        let parallel = Simulator::new(&m, cfg).run(compiled.physical_circuit());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn better_mappings_give_higher_success() {
        // The core claim of the paper, in miniature: the noise-adaptive
        // optimal mapping beats the noise-unaware baseline under the same
        // noise. Averaged over several benchmarks to keep the test robust.
        let m = machine();
        let sim = Simulator::new(&m, SimulatorConfig::with_trials(1024, 3));
        let mut adaptive_total = 0.0;
        let mut baseline_total = 0.0;
        for b in [Benchmark::Bv4, Benchmark::Bv8, Benchmark::Hs4] {
            let expected = b.expected_output();
            let adaptive = Compiler::new(&m, CompilerConfig::r_smt_star(0.5))
                .compile(&b.circuit())
                .unwrap();
            let baseline = Compiler::new(&m, CompilerConfig::qiskit())
                .compile(&b.circuit())
                .unwrap();
            adaptive_total += sim.success_rate(&adaptive, &expected);
            baseline_total += sim.success_rate(&baseline, &expected);
        }
        assert!(
            adaptive_total > baseline_total,
            "adaptive {adaptive_total} <= baseline {baseline_total}"
        );
    }

    #[test]
    fn analytic_estimate_tracks_measured_success() {
        // The analytic reliability score and the simulated success rate
        // should agree in ordering for clearly-separated mappings.
        let m = machine();
        let sim = Simulator::new(&m, SimulatorConfig::with_trials(1024, 5));
        let b = Benchmark::Bv8;
        let good = Compiler::new(&m, CompilerConfig::r_smt_star(0.5))
            .compile(&b.circuit())
            .unwrap();
        let bad = Compiler::new(&m, CompilerConfig::qiskit())
            .compile(&b.circuit())
            .unwrap();
        let good_measured = sim.success_rate(&good, &b.expected_output());
        let bad_measured = sim.success_rate(&bad, &b.expected_output());
        assert!(good.estimated_reliability() > bad.estimated_reliability());
        assert!(good_measured > bad_measured);
    }
}
