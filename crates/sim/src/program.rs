//! Compile-once, replay-many trial programs.
//!
//! The figures of the paper are driven by 8192 noisy trials per executable,
//! and the naive per-trial loop pays for work that never changes between
//! trials: re-expanding SWAPs, re-compacting qubit indices, hashing
//! `EdgeId`s into calibration `BTreeMap`s for every gate, and re-deriving
//! dephasing probabilities from T2 times. [`TrialProgram::lower`] performs
//! all of that exactly once, producing a flat [`TrialOp`] array with
//! pre-resolved compact qubit indices and pre-fetched error probabilities —
//! the per-trial replay does zero hashing, zero calibration lookups and
//! zero allocation.
//!
//! Lowering also *fuses* consecutive single-qubit gates on a qubit into one
//! 2×2 matrix whenever no noise-injection point separates them (always in
//! ideal mode; between CNOTs under the paper's CNOT+readout-only model), so
//! a run of `h, t, h, s` costs one strided pass instead of four.
//!
//! # Two-phase trials: pre-sampled error patterns
//!
//! A trial splits into two phases that consume one RNG stream in a fixed
//! order:
//!
//! 1. **Pre-sampling** ([`TrialProgram::pre_sample`]): every stochastic
//!    error of the program — depolarizing draws, dephasing draws, the three
//!    CNOT error groups of each SWAP — is drawn *without touching the
//!    state*, in program order, into a flat [`TrialEvent`] buffer. The
//!    index of the first non-identity event (if any) is returned.
//! 2. **Replay** ([`TrialProgram::replay_from`]): the state evolution
//!    replays the ops, injecting the pre-drawn events instead of drawing,
//!    and only then consumes measurement/readout draws.
//!
//! Because phase 1 never touches the state, the tiered engine
//! ([`crate::engine`]) can classify trials by their first error site before
//! doing any state work: error-free trials skip evolution entirely, and
//! trials whose first error occurs deep in the program resume from a shared
//! ideal-prefix checkpoint.
//!
//! Determinism contract: a trial's outcome is a pure function of
//! `(program, base_seed, trial_index)`. Replay order inside a trial is the
//! op order fixed at lowering time, every random draw comes from the
//! trial's own seeded RNG stream, and terminal sampling traverses basis
//! states in *canonical* (program-qubit) order so relabeling SWAPs cannot
//! perturb draws — so results are bit-for-bit reproducible for a seed and
//! invariant under how trials are distributed over threads.

use crate::backend::{BackendKind, SimBackend};
use crate::clifford::{self, Clifford1Q, SymplecticPauli};
use crate::complex::Complex;
use crate::gates::{single_qubit_matrix, Matrix2};
use crate::noise::{self, NoiseModel, Pauli};
use crate::rng::TrialRng;
use crate::state::StateVector;
use nisq_ir::{Circuit, GateKind};
use nisq_machine::{Calibration, HwQubit, Machine};
use nisq_noise::{Binding, GateSel, NoiseSpec, PauliForm};
use rand::Rng;

/// Default CNOT duration (timeslots) when an edge has no calibration entry,
/// matching the fallback of the pre-program simulator.
const DEFAULT_CNOT_SLOTS: u32 = 4;

/// One instruction of a lowered trial program. Qubit operands are compact
/// indices into the trial's [`StateVector`]; probabilities are pre-fetched
/// from calibration data at lowering time.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialOp {
    /// A (possibly fused) single-qubit unitary.
    Unitary {
        /// Compact qubit index.
        qubit: u8,
        /// The 2×2 matrix, product of every fused gate.
        matrix: Matrix2,
    },
    /// A CNOT between two compact qubits.
    Cnot {
        /// Compact control index.
        control: u8,
        /// Compact target index.
        target: u8,
    },
    /// A SWAP between two compact qubits, physically three back-to-back
    /// CNOTs on the edge. Its unitary part is a basis permutation, so the
    /// replay realizes it by relabeling qubit indices — zero state passes —
    /// unless one of the three CNOTs' error draws fires, in which case the
    /// exact interleaved CNOT+error sequence is materialized.
    Swap {
        /// First compact qubit.
        a: u8,
        /// Second compact qubit.
        b: u8,
        /// Noise of the 3-CNOT decomposition; `None` when every channel
        /// relevant to this edge is disabled.
        noise: Option<SwapNoise>,
    },
    /// Stochastic error injection after a single-qubit gate: depolarizing
    /// with probability `p_depol`, then dephasing with `p_dephase`; the two
    /// sampled Paulis are composed (up to global phase) and applied with at
    /// most one kernel pass.
    GateNoise {
        /// Compact qubit index.
        qubit: u8,
        /// Pre-fetched single-qubit depolarizing probability.
        p_depol: f64,
        /// Pre-computed dephasing probability over the gate's duration.
        p_dephase: f64,
    },
    /// Stochastic error injection after a CNOT: two-qubit depolarizing with
    /// probability `p_depol`, then per-qubit dephasing over the CNOT's
    /// calibrated duration.
    CnotNoise {
        /// Compact control index.
        control: u8,
        /// Compact target index.
        target: u8,
        /// Pre-fetched per-edge CNOT depolarizing probability.
        p_depol: f64,
        /// Pre-computed control-qubit dephasing probability.
        p_dephase_control: f64,
        /// Pre-computed target-qubit dephasing probability.
        p_dephase_target: f64,
    },
    /// A Pauli-diagonal channel bound by a [`NoiseSpec`] to a single-qubit
    /// gate (emitted after it) or a measurement (emitted before it): with
    /// probability `p_fire`, one non-identity Pauli drawn from the
    /// cumulative severity weights. Pre-sampled exactly like the built-in
    /// channels, so bound Pauli channels keep the fast tiers and the
    /// tableau backend.
    ChannelNoise {
        /// Compact qubit index.
        qubit: u8,
        /// Probability any error fires at this site.
        p_fire: f64,
        /// P(X | fired).
        cum_x: f64,
        /// P(X or Y | fired); the remainder is Z.
        cum_xy: f64,
    },
    /// A two-qubit depolarizing channel bound by a [`NoiseSpec`] to a CNOT
    /// or SWAP edge (emitted after the gate): with probability `p_fire`, a
    /// uniformly random non-identity Pauli pair.
    ChannelNoise2 {
        /// First compact qubit (CNOT control / SWAP `a`).
        a: u8,
        /// Second compact qubit (CNOT target / SWAP `b`).
        b: u8,
        /// Probability any error fires at this site.
        p_fire: f64,
    },
    /// A state-dependent (non-Pauli) channel bound by a [`NoiseSpec`]:
    /// amplitude damping or a general Kraus channel. Branch probabilities
    /// depend on the live amplitudes, so the op cannot be pre-sampled — the
    /// program is forced onto the dense backend and every trial replays in
    /// full. `table` indexes [`TrialProgram::kraus_tables`]; when the
    /// channel follows a single-qubit gate, the gate's fused unitary is
    /// baked into the table's branch operators and no separate `Unitary`
    /// op is emitted for it.
    KrausChannel {
        /// Compact qubit index.
        qubit: u8,
        /// Index into the program's deduplicated Kraus tables.
        table: u16,
    },
    /// Measurement of a qubit into a classical bit, with a pre-fetched
    /// readout flip probability (zero when readout noise is disabled).
    Measure {
        /// Compact qubit index.
        qubit: u8,
        /// Classical bit index (bit position in the packed outcome).
        clbit: u8,
        /// Probability the classical result is flipped.
        p_flip: f64,
    },
    /// The trailing run of measurements of the program (no further gates
    /// act on any qubit). The joint outcome of all of them is sampled from
    /// the uncollapsed state in one cumulative pass — equivalent in
    /// distribution to measuring one qubit at a time, at a fraction of the
    /// cost.
    TerminalSample {
        /// `(qubit, clbit, p_flip)` of each folded measurement, in program
        /// order.
        measures: Vec<(u8, u8, f64)>,
    },
}

/// Pre-fetched error probabilities for one SWAP's 3-CNOT decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapNoise {
    /// Per-CNOT depolarizing probability on the edge.
    pub p_depol: f64,
    /// Per-CNOT dephasing probability of qubit `a`.
    pub p_dephase_a: f64,
    /// Per-CNOT dephasing probability of qubit `b`.
    pub p_dephase_b: f64,
}

/// The precomputed operators of one [`TrialOp::KrausChannel`] site: the
/// branch operators `A_k` (the channel's Kraus operators, with the
/// preceding fused gate unitary baked in when the channel follows a gate)
/// plus the entries of each Gram matrix `G_k = A_k† A_k` needed to evaluate
/// the branch probability `p_k = ⟨ψ|G_k|ψ⟩` from the qubit's reduced
/// density matrix. Tables are deduplicated at lowering: sites with
/// bit-identical operator lists — same gate, same channel, same resolved
/// rate — share one table.
#[derive(Debug, Clone, PartialEq)]
pub struct KrausTable {
    /// Branch operators `A_k` (row-major 2×2, not individually unitary).
    pub ops: Vec<Matrix2>,
    /// Per-branch Gram entries `(g00, g01, g11)` of `G_k = A_k† A_k`
    /// (the diagonal is real; `g10 = conj(g01)`).
    pub grams: Vec<(f64, Complex, f64)>,
}

impl KrausTable {
    fn new(ops: Vec<Matrix2>) -> Self {
        let grams = ops
            .iter()
            .map(|a| {
                // G = A†A with row-major a: g_ij = Σ_m conj(a[2m+i]) a[2m+j].
                let g00 = (a[0].conj() * a[0] + a[2].conj() * a[2]).re;
                let g01 = a[0].conj() * a[1] + a[2].conj() * a[3];
                let g11 = (a[1].conj() * a[1] + a[3].conj() * a[3]).re;
                (g00, g01, g11)
            })
            .collect();
        KrausTable { ops, grams }
    }
}

/// One pre-sampled stochastic outcome of a noise site, produced by
/// [`TrialProgram::pre_sample`] and consumed by
/// [`TrialProgram::replay_from`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialEvent {
    /// Every draw of the site came up identity: the site is a no-op on the
    /// state.
    Clean,
    /// Composed (depolarizing ∘ dephasing) Pauli after a single-qubit gate.
    Gate(Pauli),
    /// Composed per-qubit Paulis after a CNOT (control, target).
    Cnot(Pauli, Pauli),
    /// The residual Pauli pair of a noisy SWAP, in program-qubit `(a, b)`
    /// order, to be applied *after* the relabeling.
    ///
    /// The three per-CNOT error pairs of the SWAP's 3-CNOT decomposition
    /// are conjugated through the remaining internal CNOTs at sampling
    /// time (Paulis are closed under CNOT conjugation up to global phase,
    /// which never affects measurement statistics), so even an erroneous
    /// SWAP replays as a zero-pass relabeling plus at most one fused Pauli
    /// per wire — never as three materialized CNOT passes.
    Swap(Pauli, Pauli),
}

impl TrialEvent {
    /// Whether the event perturbs the state.
    pub fn is_error(&self) -> bool {
        !matches!(
            self,
            TrialEvent::Clean
                | TrialEvent::Gate(Pauli::I)
                | TrialEvent::Cnot(Pauli::I, Pauli::I)
                | TrialEvent::Swap(Pauli::I, Pauli::I)
        )
    }
}

// (The two-qubit symplectic arithmetic a SWAP's interleaved errors are
// conjugated with now lives in [`crate::clifford::SymplecticPauli`], shared
// with the engine's tier-0 Pauli-propagation path.)

/// One Bernoulli gate of the program's flattened error-draw sequence: which
/// noise site (and, for SWAP sites, which internal CNOT group) it belongs
/// to, which channel it gates, and where the site group's draws end.
#[derive(Debug, Clone, Copy, PartialEq)]
struct GatingEntry {
    /// Noise-site index the draw belongs to.
    site: u32,
    /// Internal CNOT group for SWAP sites (0 otherwise).
    swap_k: u8,
    /// Channel: 0 = depolarizing, 1 = first dephasing, 2 = second
    /// dephasing (in the group's draw order).
    sub: u8,
    /// Gating index just past this draw's group — where inversion sampling
    /// resumes after the group is resolved.
    group_end: u32,
    /// The draw's firing probability — used by the sequential fallback
    /// when the survival product has collapsed to zero (a certain-fire
    /// channel earlier in the program).
    prob: f64,
}

/// A physical circuit lowered against one machine snapshot and noise model,
/// ready for cheap repeated trials. See the module docs for what lowering
/// precomputes.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialProgram {
    ops: Vec<TrialOp>,
    /// Op index of every noise site (op that consumes error draws), in
    /// program order — the coordinate system of pre-sampled
    /// [`TrialEvent`]s.
    noise_sites: Vec<u32>,
    /// The flattened Bernoulli-gate sequence of one trial's error pattern,
    /// in draw order (identical for a native-SWAP program and its 3-CNOT
    /// expansion).
    gating: Vec<GatingEntry>,
    /// `survival[i]` = probability that no gate at index `<= i` fires —
    /// the inversion-sampling table that lets [`TrialProgram::pre_sample`]
    /// jump straight to the next firing draw with one uniform.
    survival: Vec<f64>,
    /// Hardware qubit of each compact index (sorted ascending).
    touched: Vec<usize>,
    /// Deduplicated branch-operator tables of the program's
    /// [`TrialOp::KrausChannel`] sites (empty for Pauli-only programs).
    kraus_tables: Vec<KrausTable>,
    num_clbits: usize,
    /// The symplectic action of each op's fused 2×2 unitary when it matched
    /// one of the 24 single-qubit Cliffords (up to phase); `None` for
    /// non-Clifford unitaries and for every non-`Unitary` op. Parallel to
    /// `ops`.
    clifford_actions: Vec<Option<Clifford1Q>>,
    /// The program's Clifford-suffix table, collapsed to its one defining
    /// number: the smallest op index from which every single-qubit unitary
    /// is Clifford. An error site at op `i` has an all-Clifford suffix —
    /// and is eligible for the engine's tier-0 Pauli propagation — exactly
    /// when `i >= clifford_suffix_from` (CNOTs, SWAPs, noise injections and
    /// measurements are all symplectic-compatible, so only non-Clifford
    /// unitaries bound the suffix).
    clifford_suffix_from: usize,
    /// The simulation backend serving this program's trials, selected
    /// automatically at lowering time: the bit-packed stabilizer tableau
    /// when every single-qubit unitary classified as Clifford
    /// (`clifford_suffix_from == 0`), the dense state vector otherwise.
    backend: BackendKind,
}

impl TrialProgram {
    /// Lowers a physical circuit for `machine` under `noise`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit references qubits outside the machine, uses
    /// more than 128 classical bits (outcomes are bit-packed in a `u128`),
    /// or touches more qubits than its backend supports: 24 for the dense
    /// state vector (any program), 255 for the stabilizer tableau
    /// (fully-Clifford programs).
    pub fn lower(physical: &Circuit, machine: &Machine, noise: &NoiseModel) -> Self {
        Self::lower_with_spec(physical, machine, noise, None)
    }

    /// Like [`TrialProgram::lower`], additionally lowering the channel
    /// bindings of a declarative [`NoiseSpec`] (validated; binding filters
    /// name *hardware* qubit indices). Pauli-diagonal channels join the
    /// built-in channels in the pre-sampled gating table, so a Pauli-only
    /// spec keeps every fast tier and the tableau backend; amplitude
    /// damping and general Kraus channels become state-dependent
    /// [`TrialOp::KrausChannel`] sites, which force the dense backend and
    /// full per-trial replay. `spec = None` is bit-identical to
    /// [`TrialProgram::lower`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`TrialProgram::lower`]; a
    /// non-Pauli spec additionally panics when the circuit touches more
    /// than 24 qubits (the forced dense backend would not fit).
    pub fn lower_with_spec(
        physical: &Circuit,
        machine: &Machine,
        noise: &NoiseModel,
        spec: Option<&NoiseSpec>,
    ) -> Self {
        assert!(
            physical
                .iter()
                .all(|g| g.qubits().iter().all(|q| q.0 < machine.num_qubits())),
            "circuit uses qubits outside the machine"
        );
        assert!(
            physical.num_clbits() <= 128,
            "trial outcomes are bit-packed; at most 128 classical bits are supported"
        );

        // Compact the circuit onto the qubits it actually touches. The
        // dense 24-qubit limit is enforced *after* Clifford classification,
        // because fully-Clifford programs select the tableau backend and
        // carry no 2^n memory term.
        let mut touched: Vec<usize> = physical
            .iter()
            .flat_map(|g| g.qubits().iter().map(|q| q.0))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        assert!(
            touched.len() <= 255,
            "circuit touches more than 255 qubits; compact indices are u8"
        );
        let mut compact = vec![u8::MAX; machine.num_qubits()];
        for (i, &hw) in touched.iter().enumerate() {
            compact[hw] = i as u8;
        }

        let calibration = machine.calibration();
        let mean_cnot_error = calibration.mean_cnot_error();
        let single_slots = calibration.durations.single_qubit_slots;

        // Per-qubit noise parameters, fetched once.
        let p_depol_1q: Vec<f64> = touched
            .iter()
            .map(|&hw| {
                if noise.single_qubit_noise {
                    calibration.single_qubit_error(HwQubit(hw))
                } else {
                    0.0
                }
            })
            .collect();
        let p_dephase_1q: Vec<f64> = touched
            .iter()
            .map(|&hw| {
                if noise.decoherence {
                    calibration.dephasing_probability(HwQubit(hw), single_slots)
                } else {
                    0.0
                }
            })
            .collect();
        let p_readout: Vec<f64> = touched
            .iter()
            .map(|&hw| {
                if noise.readout_noise {
                    calibration.readout_error(HwQubit(hw)).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect();

        let mut lowering = Lowering {
            ops: Vec::with_capacity(physical.len()),
            pending: vec![None; touched.len()],
        };

        // Pre-fetched noise of one physical CNOT on the edge `(hw_a, hw_b)`:
        // depolarizing probability plus per-endpoint dephasing over the
        // edge's calibrated duration. Shared by the CNOT and SWAP arms so
        // their fallbacks can never diverge. Returns `None` when every
        // probability is zero (no noise op needs emitting).
        let edge_noise = |hw_a: usize, hw_b: usize| -> Option<(f64, f64, f64)> {
            if !noise.cnot_noise && !noise.decoherence {
                return None;
            }
            let params = calibration.edge_params(HwQubit(hw_a), HwQubit(hw_b));
            let p_depol = if noise.cnot_noise {
                params.map_or(mean_cnot_error, |p| p.cnot_error)
            } else {
                0.0
            };
            let slots = params
                .and_then(|p| p.cnot_slots)
                .unwrap_or(DEFAULT_CNOT_SLOTS);
            let (p_da, p_db) = if noise.decoherence {
                (
                    calibration.dephasing_probability(HwQubit(hw_a), slots),
                    calibration.dephasing_probability(HwQubit(hw_b), slots),
                )
            } else {
                (0.0, 0.0)
            };
            (p_depol > 0.0 || p_da > 0.0 || p_db > 0.0).then_some((p_depol, p_da, p_db))
        };

        // Declarative spec bindings. Filters name hardware qubit indices;
        // calibration-referencing rates resolve against the same tables the
        // built-in model reads, independent of the `NoiseModel` toggles
        // (bound channels are additive, not gated by them).
        let bindings: &[Binding] = spec.map_or(&[][..], |s| s.bindings());
        let mut kraus_tables: Vec<KrausTable> = Vec::new();
        // The calibrated rate a cnot/swap binding's `{"calibration": f}`
        // scales: the edge's CNOT error, mean fallback as in `edge_noise`.
        let edge_calibrated = |hw_a: usize, hw_b: usize| -> f64 {
            calibration
                .edge_params(HwQubit(hw_a), HwQubit(hw_b))
                .map_or(mean_cnot_error, |p| p.cnot_error)
        };

        for gate in physical.iter() {
            match gate.kind() {
                GateKind::Cnot => {
                    let hw_c = gate.qubits()[0].0;
                    let hw_t = gate.qubits()[1].0;
                    let (c, t) = (compact[hw_c], compact[hw_t]);
                    lowering.flush(c);
                    lowering.flush(t);
                    lowering.ops.push(TrialOp::Cnot {
                        control: c,
                        target: t,
                    });
                    if let Some((p_depol, p_dc, p_dt)) = edge_noise(hw_c, hw_t) {
                        lowering.ops.push(TrialOp::CnotNoise {
                            control: c,
                            target: t,
                            p_depol,
                            p_dephase_control: p_dc,
                            p_dephase_target: p_dt,
                        });
                    }
                    for binding in bindings {
                        if binding.on == GateSel::Cnot
                            && binding.applies_to_edge(hw_c as u32, hw_t as u32)
                        {
                            emit_2q_channel(
                                &mut lowering,
                                binding,
                                c,
                                t,
                                edge_calibrated(hw_c, hw_t),
                            );
                        }
                    }
                }
                GateKind::Swap => {
                    let hw_a = gate.qubits()[0].0;
                    let hw_b = gate.qubits()[1].0;
                    let (a, b) = (compact[hw_a], compact[hw_b]);
                    let swap_noise =
                        edge_noise(hw_a, hw_b).map(|(p_depol, p_da, p_db)| SwapNoise {
                            p_depol,
                            p_dephase_a: p_da,
                            p_dephase_b: p_db,
                        });
                    // Flush so the emitted op order matches program order;
                    // at *runtime* unitaries still cross relabeling swaps
                    // cheaply, because TrialScratch's pending matrices
                    // travel with the relabeling.
                    lowering.flush(a);
                    lowering.flush(b);
                    lowering.ops.push(TrialOp::Swap {
                        a,
                        b,
                        noise: swap_noise,
                    });
                    for binding in bindings {
                        if binding.on == GateSel::Swap
                            && binding.applies_to_edge(hw_a as u32, hw_b as u32)
                        {
                            emit_2q_channel(
                                &mut lowering,
                                binding,
                                a,
                                b,
                                edge_calibrated(hw_a, hw_b),
                            );
                        }
                    }
                }
                GateKind::Measure => {
                    let hw = gate.qubits()[0].0;
                    let q = compact[hw];
                    lowering.flush(q);
                    // Measure-bound channels model noise in the measurement
                    // process itself, so they fire just before the readout.
                    for binding in bindings {
                        if binding.on == GateSel::Measure && binding.applies_to_qubit(hw as u32) {
                            emit_1q_channel(
                                &mut lowering,
                                &mut kraus_tables,
                                binding,
                                q,
                                measure_calibrated(calibration, hw),
                            );
                        }
                    }
                    lowering.ops.push(TrialOp::Measure {
                        qubit: q,
                        clbit: gate.clbits()[0].0 as u8,
                        p_flip: p_readout[usize::from(q)],
                    });
                }
                GateKind::Barrier => {}
                kind => {
                    let hw = gate.qubits()[0].0;
                    let q = compact[hw];
                    lowering.fuse(q, &single_qubit_matrix(kind));
                    let p_depol = p_depol_1q[usize::from(q)];
                    let p_dephase = p_dephase_1q[usize::from(q)];
                    if p_depol > 0.0 || p_dephase > 0.0 {
                        lowering.flush(q);
                        lowering.ops.push(TrialOp::GateNoise {
                            qubit: q,
                            p_depol,
                            p_dephase,
                        });
                    }
                    for binding in bindings {
                        if binding.on == GateSel::SingleQubit && binding.applies_to_qubit(hw as u32)
                        {
                            emit_1q_channel(
                                &mut lowering,
                                &mut kraus_tables,
                                binding,
                                q,
                                calibration.single_qubit_error(HwQubit(hw)),
                            );
                        }
                    }
                }
            }
        }
        // Unflushed trailing unitaries act on qubits that are never measured
        // or entangled again, so they cannot influence any recorded outcome
        // and are dropped (dead-gate elimination).

        let mut ops = lowering.ops;
        sink_measures(&mut ops);

        let noise_sites: Vec<u32> = ops
            .iter()
            .enumerate()
            .filter(|(_, op)| {
                matches!(
                    op,
                    TrialOp::GateNoise { .. }
                        | TrialOp::CnotNoise { .. }
                        | TrialOp::Swap { noise: Some(_), .. }
                        | TrialOp::ChannelNoise { .. }
                        | TrialOp::ChannelNoise2 { .. }
                )
            })
            .map(|(i, _)| i as u32)
            .collect();

        // Flatten every stochastic channel into the trial's Bernoulli-gate
        // sequence and its running survival product. Draw order matches the
        // sequential sampling of one trial exactly (per group: depolarizing
        // gate, then each non-zero dephasing gate), so a native-SWAP
        // program and its 3-CNOT expansion produce identical tables.
        let mut gating: Vec<GatingEntry> = Vec::new();
        let mut survival: Vec<f64> = Vec::new();
        let mut alive = 1.0f64;
        for (site, &op_index) in noise_sites.iter().enumerate() {
            let mut push_group = |gating: &mut Vec<GatingEntry>,
                                  survival: &mut Vec<f64>,
                                  swap_k: u8,
                                  probs: [f64; 3]| {
                let start = gating.len();
                for (sub, &p) in probs.iter().enumerate() {
                    if p > 0.0 {
                        let prob = p.clamp(0.0, 1.0);
                        gating.push(GatingEntry {
                            site: site as u32,
                            swap_k,
                            sub: sub as u8,
                            group_end: 0,
                            prob,
                        });
                        alive *= 1.0 - prob;
                        survival.push(alive);
                    }
                }
                let end = gating.len() as u32;
                for entry in &mut gating[start..] {
                    entry.group_end = end;
                }
            };
            match ops[op_index as usize] {
                TrialOp::GateNoise {
                    p_depol, p_dephase, ..
                } => push_group(&mut gating, &mut survival, 0, [p_depol, p_dephase, 0.0]),
                TrialOp::CnotNoise {
                    p_depol,
                    p_dephase_control,
                    p_dephase_target,
                    ..
                } => push_group(
                    &mut gating,
                    &mut survival,
                    0,
                    [p_depol, p_dephase_control, p_dephase_target],
                ),
                TrialOp::ChannelNoise { p_fire, .. } => {
                    push_group(&mut gating, &mut survival, 0, [p_fire, 0.0, 0.0])
                }
                TrialOp::ChannelNoise2 { p_fire, .. } => {
                    push_group(&mut gating, &mut survival, 0, [p_fire, 0.0, 0.0])
                }
                TrialOp::Swap {
                    noise: Some(ref n), ..
                } => {
                    for k in 0..3u8 {
                        // The middle CNOT runs reversed, so its dephasing
                        // draws come in (b, a) order.
                        let (p_first, p_second) = if k == 1 {
                            (n.p_dephase_b, n.p_dephase_a)
                        } else {
                            (n.p_dephase_a, n.p_dephase_b)
                        };
                        push_group(
                            &mut gating,
                            &mut survival,
                            k,
                            [n.p_depol, p_first, p_second],
                        );
                    }
                }
                _ => unreachable!("noise_sites point at stochastic ops"),
            }
        }

        // Clifford classification (tier-0): match every fused unitary
        // against the 24 single-qubit Cliffords, then mark the longest
        // all-Clifford suffix (two-qubit gates are Clifford by
        // construction: CNOT exactly, SWAP as a relabeling).
        let clifford_actions: Vec<Option<Clifford1Q>> = ops
            .iter()
            .map(|op| match op {
                TrialOp::Unitary { matrix, .. } => clifford::classify(matrix),
                _ => None,
            })
            .collect();
        let clifford_suffix_from = ops
            .iter()
            .zip(&clifford_actions)
            .rposition(|(op, action)| matches!(op, TrialOp::Unitary { .. }) && action.is_none())
            .map_or(0, |i| i + 1);

        // Backend selection: a program that is Clifford end to end (every
        // fused unitary classified; CNOT/SWAP/Pauli noise/measurement are
        // Clifford by construction) runs on the stabilizer tableau. Any
        // non-Clifford gate — or any state-dependent Kraus channel, whose
        // branch probabilities no tableau can evaluate — selects the dense
        // state vector.
        let backend = if clifford_suffix_from == 0 && kraus_tables.is_empty() {
            BackendKind::Tableau
        } else {
            BackendKind::Dense
        };
        assert!(
            backend == BackendKind::Tableau || touched.len() <= 24,
            "circuit touches more than 24 qubits and needs the dense state vector \
             (non-Clifford gates or a non-Pauli noise channel), which would not fit in memory"
        );

        TrialProgram {
            ops,
            noise_sites,
            gating,
            survival,
            touched,
            kraus_tables,
            num_clbits: physical.num_clbits(),
            clifford_actions,
            clifford_suffix_from,
            backend,
        }
    }

    /// The lowered instruction stream.
    pub fn ops(&self) -> &[TrialOp] {
        &self.ops
    }

    /// Op index of every noise site (op that consumes error draws), in
    /// program order. Pre-sampled [`TrialEvent`]s use positions in this
    /// list as their coordinates.
    pub fn noise_sites(&self) -> &[u32] {
        &self.noise_sites
    }

    /// Number of compacted qubits a trial state needs.
    pub fn num_qubits(&self) -> usize {
        self.touched.len()
    }

    /// Number of classical bits in an outcome.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Hardware qubit index of each compact qubit, ascending.
    pub fn touched(&self) -> &[usize] {
        &self.touched
    }

    /// The smallest op index from which every single-qubit unitary matched
    /// a Clifford — the program's Clifford-suffix boundary. Error sites at
    /// or past this index qualify for tier-0 Pauli propagation; for a
    /// fully-Clifford program (the BV family) this is 0.
    pub fn clifford_suffix_from(&self) -> usize {
        self.clifford_suffix_from
    }

    /// The simulation backend selected for this program at lowering time.
    /// Selection is automatic: [`BackendKind::Tableau`] for fully-Clifford
    /// programs, [`BackendKind::Dense`] otherwise. The simulator honours
    /// this except under [`crate::EngineOptions::exact`], which pins the
    /// dense bit-exact path.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend
    }

    /// The deduplicated branch-operator tables of the program's
    /// [`TrialOp::KrausChannel`] sites (empty for Pauli-only programs).
    pub fn kraus_tables(&self) -> &[KrausTable] {
        &self.kraus_tables
    }

    /// Whether the program contains state-dependent Kraus channel sites.
    /// When true the backend is always dense and every trial replays in
    /// full: branch probabilities depend on the live amplitudes, so no
    /// shared prefix, checkpoint or Pauli propagation applies.
    pub fn has_kraus(&self) -> bool {
        !self.kraus_tables.is_empty()
    }

    /// The symplectic action of the unitary at `op`, when it matched a
    /// Clifford (`None` for non-Clifford unitaries and non-unitary ops).
    pub fn clifford_action(&self, op: usize) -> Option<Clifford1Q> {
        self.clifford_actions[op]
    }

    /// Probability that a trial samples no error anywhere (the tail of the
    /// survival table). `1.0` for noiseless programs. The engine's
    /// single-error memo gates itself on this: memoization only pays below
    /// an expected error count of about one, i.e. while this stays above
    /// `e^{-1}`.
    pub fn survival_probability(&self) -> f64 {
        self.survival.last().copied().unwrap_or(1.0)
    }

    /// Allocates the reusable per-worker scratch for [`Self::run_trial`].
    pub fn make_scratch(&self) -> TrialScratch {
        TrialScratch {
            state: StateVector::new(self.num_qubits()),
            pending: vec![None; self.num_qubits()],
            perm: (0..self.num_qubits() as u8).collect(),
            events: Vec::with_capacity(self.noise_sites.len()),
        }
    }

    /// Phase 1 of a trial: samples the trial's full error pattern — without
    /// touching any state — into `events` (cleared first; one entry per
    /// noise site). Returns the index of the first error event, or `None`
    /// for an error-free trial.
    ///
    /// Instead of one Bernoulli draw per stochastic channel, the position
    /// of the next *firing* draw is inversion-sampled from the precomputed
    /// survival table with a single uniform (then the firing group is
    /// resolved with its severity draws, and sampling resumes past it).
    /// An error-free trial — the overwhelmingly common case at calibrated
    /// error rates — costs exactly one uniform draw, independent of
    /// program length.
    ///
    /// The draws consumed here are a prefix of the trial's RNG stream; the
    /// replay phase continues from the same `rng`. A native-SWAP program
    /// and its 3-CNOT expansion share identical gating tables and resolve
    /// groups with identical draw sequences, so the two remain bit-for-bit
    /// interchangeable.
    pub fn pre_sample<R: Rng + ?Sized>(
        &self,
        events: &mut Vec<TrialEvent>,
        rng: &mut R,
    ) -> Option<u32> {
        events.clear();
        events.resize(self.noise_sites.len(), TrialEvent::Clean);
        let mut fired_any = false;
        let mut cursor = 0usize; // next gating index to consider
        while cursor < self.gating.len() {
            // Inversion step: P(next fire at j | survived past cursor-1) has
            // CDF 1 - survival[j]/prev, so u maps to the first j whose
            // survival drops below prev * (1 - u). No such j: no more fires.
            let prev = if cursor == 0 {
                1.0
            } else {
                self.survival[cursor - 1]
            };
            let j = if prev > 0.0 {
                let u: f64 = rng.gen();
                let threshold = prev * (1.0 - u);
                cursor + self.survival[cursor..].partition_point(|&s| s >= threshold)
            } else {
                // The survival product collapsed to zero (a certain-fire
                // channel, or underflow on an extreme program): the
                // conditional distribution is no longer resolvable from
                // the products, so fall back to one Bernoulli per
                // remaining gate.
                let mut j = cursor;
                while j < self.gating.len() && !rng.gen_bool(self.gating[j].prob) {
                    j += 1;
                }
                j
            };
            if j >= self.gating.len() {
                break;
            }
            fired_any = true;
            let entry = self.gating[j];
            self.resolve_fire(events, entry, rng);
            cursor = entry.group_end as usize;
        }
        if !fired_any {
            return None;
        }
        // A fired draw is never the identity, but a SWAP residual can
        // cancel across the site's groups — scan for the first event that
        // actually perturbs the state.
        events
            .iter()
            .position(TrialEvent::is_error)
            .map(|i| i as u32)
    }

    /// Resolves the group of a fired gating draw: draws its severity (the
    /// depolarizing Pauli choice) and the group's remaining dephasing
    /// gates sequentially — the exact draws sequential sampling would make
    /// past the firing point — and writes the group's contribution into
    /// `events`.
    fn resolve_fire<R: Rng + ?Sized>(
        &self,
        events: &mut [TrialEvent],
        entry: GatingEntry,
        rng: &mut R,
    ) {
        let site = entry.site as usize;
        match self.ops[self.noise_sites[site] as usize] {
            TrialOp::GateNoise { p_dephase, .. } => {
                let composed = if entry.sub == 0 {
                    noise::fired_depol_1q(rng).compose(sample_dephase(p_dephase, rng))
                } else {
                    Pauli::Z
                };
                events[site] = TrialEvent::Gate(composed);
            }
            TrialOp::CnotNoise {
                p_dephase_control,
                p_dephase_target,
                ..
            } => {
                let (ec, et) = resolve_group(entry.sub, p_dephase_control, p_dephase_target, rng);
                events[site] = TrialEvent::Cnot(ec, et);
            }
            TrialOp::ChannelNoise { cum_x, cum_xy, .. } => {
                // One severity uniform against the cumulative X/Y/Z weights
                // (drawn even for degenerate single-Pauli channels, keeping
                // the draw count independent of the weights).
                let u: f64 = rng.gen();
                let pauli = if u < cum_x {
                    Pauli::X
                } else if u < cum_xy {
                    Pauli::Y
                } else {
                    Pauli::Z
                };
                events[site] = TrialEvent::Gate(pauli);
            }
            TrialOp::ChannelNoise2 { .. } => {
                let (pa, pb) = noise::fired_depol_2q(rng);
                events[site] = TrialEvent::Cnot(pa, pb);
            }
            TrialOp::Swap {
                noise: Some(ref n), ..
            } => {
                let k = entry.swap_k;
                // The middle CNOT runs reversed: control is wire `b`.
                let (p_first, p_second) = if k == 1 {
                    (n.p_dephase_b, n.p_dephase_a)
                } else {
                    (n.p_dephase_a, n.p_dephase_b)
                };
                let (e_control, e_target) = resolve_group(entry.sub, p_first, p_second, rng);
                let (e_a, e_b) = if k == 1 {
                    (e_target, e_control)
                } else {
                    (e_control, e_target)
                };
                // Conjugate the group's pair through the SWAP's remaining
                // internal CNOTs (U_2 = cnot(b,a), U_3 = cnot(a,b)), then
                // compose onto the site's residual — Pauli composition is
                // XOR in symplectic bits, so per-group contributions
                // combine independently of firing order. Wire `a` is
                // tableau qubit 0, wire `b` qubit 1.
                let mut contribution = SymplecticPauli::IDENTITY;
                contribution.compose(0, e_a);
                contribution.compose(1, e_b);
                if k == 0 {
                    contribution.conjugate_cnot(1, 0);
                    contribution.conjugate_cnot(0, 1);
                } else if k == 1 {
                    contribution.conjugate_cnot(0, 1);
                }
                if let TrialEvent::Swap(ra, rb) = events[site] {
                    contribution.compose(0, ra);
                    contribution.compose(1, rb);
                }
                events[site] = TrialEvent::Swap(contribution.pauli_on(0), contribution.pauli_on(1));
            }
            _ => unreachable!("noise_sites point at stochastic ops"),
        }
    }

    /// Phase 2 of a trial: replays `self.ops[start_op..]` against `backend`
    /// (whose state must already hold the evolution of `ops[..start_op]` —
    /// a reset backend for `start_op == 0`, or a restored checkpoint),
    /// injecting pre-drawn `events` (the first event consumed is
    /// `events[0]`, i.e. the slice is positioned at the first noise site at
    /// or after `start_op`). Returns the measured classical bits packed
    /// into a `u128` (bit `i` = clbit `i`).
    ///
    /// The walk is generic over [`SimBackend`]: the dense
    /// [`TrialScratch`] instantiation is the tiered engine's replay path
    /// and is bit-identical to the pre-trait monolithic walker (each trait
    /// hook contains exactly the code that used to be inline); the tableau
    /// instantiation is the stabilizer engine's full-replay fallback.
    ///
    /// Beyond the compile-time fusion done at lowering, the dense backend
    /// fuses at *runtime* across noise-injection points: a sampled Pauli is
    /// itself a 2×2 matrix, so single-qubit unitaries and (rare) sampled
    /// errors accumulate into one pending matrix per qubit, and a state
    /// pass only happens when a CNOT or measurement forces materialization.
    pub fn replay_from<B: SimBackend, R: Rng + ?Sized>(
        &self,
        backend: &mut B,
        start_op: usize,
        events: &[TrialEvent],
        rng: &mut R,
    ) -> u128 {
        let mut site = 0usize;
        let mut clbits = 0u128;
        for op in &self.ops[start_op..] {
            match *op {
                TrialOp::Unitary { qubit, ref matrix } => {
                    backend.fuse_unitary(qubit, matrix);
                }
                TrialOp::Cnot { control, target } => {
                    backend.cnot(control, target);
                }
                TrialOp::Swap { a, b, ref noise } => {
                    let event = if noise.is_some() {
                        let e = events[site];
                        site += 1;
                        e
                    } else {
                        TrialEvent::Clean
                    };
                    // Every SWAP — noisy or not — is a zero-pass
                    // relabeling; a sampled error only injects the residual
                    // (pre-conjugated) Pauli pair onto the relabeled wires.
                    backend.swap_relabel(a, b);
                    match event {
                        TrialEvent::Clean => {}
                        TrialEvent::Swap(ra, rb) => {
                            backend.inject_pauli(a, ra);
                            backend.inject_pauli(b, rb);
                        }
                        other => unreachable!("swap site pre-sampled {other:?}"),
                    }
                }
                TrialOp::GateNoise { qubit, .. } => {
                    let event = events[site];
                    site += 1;
                    if let TrialEvent::Gate(pauli) = event {
                        backend.inject_pauli(qubit, pauli);
                    }
                }
                TrialOp::CnotNoise {
                    control, target, ..
                } => {
                    let event = events[site];
                    site += 1;
                    if let TrialEvent::Cnot(pc, pt) = event {
                        backend.inject_pauli(control, pc);
                        backend.inject_pauli(target, pt);
                    }
                }
                TrialOp::ChannelNoise { qubit, .. } => {
                    let event = events[site];
                    site += 1;
                    if let TrialEvent::Gate(pauli) = event {
                        backend.inject_pauli(qubit, pauli);
                    }
                }
                TrialOp::ChannelNoise2 { a, b, .. } => {
                    let event = events[site];
                    site += 1;
                    if let TrialEvent::Cnot(pa, pb) = event {
                        backend.inject_pauli(a, pa);
                        backend.inject_pauli(b, pb);
                    }
                }
                TrialOp::KrausChannel { qubit, table } => {
                    // State-dependent branch selection: one uniform per
                    // trial per channel, resolved against the current
                    // state's branch probabilities.
                    let u: f64 = rng.gen();
                    backend.apply_kraus(qubit, &self.kraus_tables[usize::from(table)], u);
                }
                TrialOp::Measure {
                    qubit,
                    clbit,
                    p_flip,
                } => {
                    let mut outcome = backend.measure(qubit, rng);
                    if p_flip > 0.0 && rng.gen_bool(p_flip) {
                        outcome = !outcome;
                    }
                    if outcome {
                        clbits |= 1u128 << clbit;
                    }
                }
                TrialOp::TerminalSample { ref measures } => {
                    let ideal = backend.terminal_sample(measures, rng);
                    for (i, &(_, clbit, p_flip)) in measures.iter().enumerate() {
                        let mut outcome = ideal >> i & 1 == 1;
                        if p_flip > 0.0 && rng.gen_bool(p_flip) {
                            outcome = !outcome;
                        }
                        if outcome {
                            clbits |= 1u128 << clbit;
                        }
                    }
                }
            }
        }
        clbits
    }

    /// Advances `scratch` ideally over `self.ops[from_op..to_op]`: unitary
    /// fusion, CNOTs and relabeling SWAPs are applied, noise sites are
    /// skipped (an error-free trial's evolution). This is the shared
    /// ideal-prefix walk of the tiered engine; it applies exactly the same
    /// state operations as an error-free [`TrialProgram::replay_from`] over
    /// the same range, so resuming a replay from the advanced scratch is
    /// bit-identical to replaying from the start.
    ///
    /// # Panics
    ///
    /// Panics if the range contains a measurement (prefixes never extend
    /// past the first measurement: its outcome is per-trial randomness).
    pub fn advance_ideal<B: SimBackend>(&self, backend: &mut B, from_op: usize, to_op: usize) {
        for op in &self.ops[from_op..to_op] {
            match *op {
                TrialOp::Unitary { qubit, ref matrix } => backend.fuse_unitary(qubit, matrix),
                TrialOp::Cnot { control, target } => backend.cnot(control, target),
                TrialOp::Swap { a, b, .. } => backend.swap_relabel(a, b),
                TrialOp::GateNoise { .. }
                | TrialOp::CnotNoise { .. }
                | TrialOp::ChannelNoise { .. }
                | TrialOp::ChannelNoise2 { .. } => {}
                TrialOp::KrausChannel { .. } => {
                    unreachable!("Kraus programs replay every trial in full")
                }
                TrialOp::Measure { .. } | TrialOp::TerminalSample { .. } => {
                    unreachable!("ideal prefixes never cross a measurement")
                }
            }
        }
    }

    /// Advances `scratch` over `self.ops[from_op..to_op]` with pre-drawn
    /// `events` injected (the slice is positioned at the first noise site
    /// at or after `from_op`) — the deterministic, measurement-free segment
    /// of an error trial's replay. Applies exactly the state operations
    /// [`TrialProgram::replay_from`] would over the same range and consumes
    /// **no** RNG draws, so a replay resumed from the advanced scratch is
    /// bit-identical to one that ran straight through. This is how the
    /// engine's single-error suffix memo builds its shared checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if the range contains a measurement (measurement outcomes are
    /// per-trial randomness and can never be part of a shared evolution).
    pub fn advance_noisy<B: SimBackend>(
        &self,
        backend: &mut B,
        from_op: usize,
        to_op: usize,
        events: &[TrialEvent],
    ) {
        let mut site = 0usize;
        for op in &self.ops[from_op..to_op] {
            match *op {
                TrialOp::Unitary { qubit, ref matrix } => backend.fuse_unitary(qubit, matrix),
                TrialOp::Cnot { control, target } => backend.cnot(control, target),
                TrialOp::Swap { a, b, ref noise } => {
                    let event = if noise.is_some() {
                        let e = events[site];
                        site += 1;
                        e
                    } else {
                        TrialEvent::Clean
                    };
                    backend.swap_relabel(a, b);
                    match event {
                        TrialEvent::Clean => {}
                        TrialEvent::Swap(ra, rb) => {
                            backend.inject_pauli(a, ra);
                            backend.inject_pauli(b, rb);
                        }
                        other => unreachable!("swap site pre-sampled {other:?}"),
                    }
                }
                TrialOp::GateNoise { qubit, .. } => {
                    let event = events[site];
                    site += 1;
                    if let TrialEvent::Gate(pauli) = event {
                        backend.inject_pauli(qubit, pauli);
                    }
                }
                TrialOp::CnotNoise {
                    control, target, ..
                } => {
                    let event = events[site];
                    site += 1;
                    if let TrialEvent::Cnot(pc, pt) = event {
                        backend.inject_pauli(control, pc);
                        backend.inject_pauli(target, pt);
                    }
                }
                TrialOp::ChannelNoise { qubit, .. } => {
                    let event = events[site];
                    site += 1;
                    if let TrialEvent::Gate(pauli) = event {
                        backend.inject_pauli(qubit, pauli);
                    }
                }
                TrialOp::ChannelNoise2 { a, b, .. } => {
                    let event = events[site];
                    site += 1;
                    if let TrialEvent::Cnot(pa, pb) = event {
                        backend.inject_pauli(a, pa);
                        backend.inject_pauli(b, pb);
                    }
                }
                TrialOp::KrausChannel { .. } => {
                    unreachable!("Kraus programs replay every trial in full")
                }
                TrialOp::Measure { .. } | TrialOp::TerminalSample { .. } => {
                    unreachable!("shared noisy advances never cross a measurement")
                }
            }
        }
    }

    /// Replays the program once against `scratch` (which is reset first),
    /// returning the measured classical bits packed into a `u128` (bit `i`
    /// = clbit `i`).
    ///
    /// This is the single-trial reference path: phase 1 pre-samples the
    /// trial's full error pattern, phase 2 replays with the events
    /// injected. The tiered engine produces bit-identical outcomes for
    /// every trial while skipping most of the replay work.
    pub fn run_trial<R: Rng + ?Sized>(&self, scratch: &mut TrialScratch, rng: &mut R) -> u128 {
        scratch.reset();
        let mut events = std::mem::take(&mut scratch.events);
        let _ = self.pre_sample(&mut events, rng);
        let key = self.replay_from(scratch, 0, &events, rng);
        scratch.events = events;
        key
    }

    /// Derives the deterministic per-trial RNG for `(base_seed, trial)` —
    /// a counter-based [`TrialRng`] stream with no per-trial seeding work.
    /// Exposed so tests and tools can reproduce a single trial exactly.
    pub fn trial_rng(base_seed: u64, trial: u32) -> TrialRng {
        TrialRng::new(base_seed, trial)
    }
}

/// Reusable per-worker trial state: the scratch [`StateVector`], the
/// runtime-fusion accumulator (one pending 2×2 matrix per program qubit),
/// the program-qubit → state-slot permutation maintained by relabeling
/// SWAPs, and the pre-sampled event buffer. Allocate once via
/// [`TrialProgram::make_scratch`], replay many trials through it.
#[derive(Debug, Clone)]
pub struct TrialScratch {
    state: StateVector,
    pending: Vec<Option<Matrix2>>,
    /// `perm[program qubit] = state slot`. Identity until a SWAP relabels.
    perm: Vec<u8>,
    /// Pre-sampled error events of the current trial (reference path).
    events: Vec<TrialEvent>,
}

impl TrialScratch {
    /// The state vector after the last replay. Pending (unmaterialized)
    /// unitaries act only on qubits whose state is never observed again, so
    /// the amplitudes reflect every measurement-relevant operation. Note
    /// that relabeling SWAPs permute which *slot* holds which program
    /// qubit; [`Self::slot_of`] exposes the mapping.
    pub fn state(&self) -> &StateVector {
        &self.state
    }

    /// The state-vector slot currently holding `program_qubit`.
    pub fn slot_of(&self, program_qubit: usize) -> usize {
        usize::from(self.perm[program_qubit])
    }

    /// The full program-qubit → state-slot permutation.
    pub fn perm(&self) -> &[u8] {
        &self.perm
    }

    /// Resets to the `|0...0>` state with an identity permutation and no
    /// pending matrices.
    pub fn reset(&mut self) {
        self.state.reset();
        self.pending.fill(None);
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i as u8;
        }
    }

    /// Resizes the scratch for a program of `num_qubits` qubits (growing
    /// buffers only when needed) and resets it — so one pooled scratch
    /// serves programs of different widths without reallocation.
    pub fn ensure(&mut self, num_qubits: usize) {
        if self.state.num_qubits() != num_qubits {
            self.state.resize_for(num_qubits);
            self.pending.resize(num_qubits, None);
            self.perm.resize(num_qubits, 0);
        }
        self.reset();
    }

    /// Restores this scratch from a checkpoint of the same width without
    /// allocating.
    pub fn copy_from(&mut self, checkpoint: &TrialScratch) {
        self.state.copy_from(&checkpoint.state);
        self.pending.clone_from_slice(&checkpoint.pending);
        self.perm.copy_from_slice(&checkpoint.perm);
    }

    /// Composes `m` onto the pending matrix of `qubit` (applied after it).
    fn fuse(&mut self, qubit: u8, m: &Matrix2) {
        let slot = &mut self.pending[usize::from(qubit)];
        *slot = Some(match slot.take() {
            Some(old) => matmul(m, &old),
            None => *m,
        });
    }

    /// Composes a sampled Pauli error onto the pending matrix (identity is
    /// free: no work at all).
    pub(crate) fn fuse_pauli(&mut self, qubit: u8, pauli: Pauli) {
        match pauli {
            Pauli::I => {}
            Pauli::X => self.fuse(qubit, &PAULI_X_MATRIX),
            Pauli::Y => self.fuse(qubit, &PAULI_Y_MATRIX),
            Pauli::Z => self.fuse(qubit, &PAULI_Z_MATRIX),
        }
    }

    /// Composes an n-qubit Pauli string onto the pending matrices, qubit by
    /// qubit (a Pauli string is a tensor product of single-qubit Paulis up
    /// to global phase) — how the engine materializes a propagated tier-0
    /// error onto a restored checkpoint when a measure draw diverges.
    pub(crate) fn fuse_symplectic(&mut self, pauli: &SymplecticPauli) {
        let mut live = pauli.x | pauli.z;
        while live != 0 {
            let qubit = live.trailing_zeros() as u8;
            live &= live - 1;
            self.fuse_pauli(qubit, pauli.pauli_on(qubit));
        }
    }

    /// Materializes the pending matrix of `qubit` into its current slot.
    pub(crate) fn flush(&mut self, qubit: u8) {
        if let Some(matrix) = self.pending[usize::from(qubit)].take() {
            self.state
                .apply_matrix(usize::from(self.perm[usize::from(qubit)]), &matrix);
        }
    }

    /// Materializes the pending matrices of two distinct qubits — `a`'s
    /// first — in one state traversal when both are pending and
    /// general-shaped, halving the memory traffic of the back-to-back
    /// flushes in front of every two-qubit gate. Falls back to sequential
    /// flushes otherwise (diagonal/anti-diagonal matrices have their own
    /// specialized single-wire kernels). Bitwise identical to
    /// `flush(a); flush(b)`: the fused kernel evaluates the same two pair
    /// updates, in the same order, on the same intermediate values — they
    /// just stay in registers instead of round-tripping through memory.
    pub(crate) fn flush_two(&mut self, a: u8, b: u8) {
        let (ia, ib) = (usize::from(a), usize::from(b));
        if let (Some(ma), Some(mb)) = (self.pending[ia], self.pending[ib]) {
            if crate::state::is_general_shape(&ma) && crate::state::is_general_shape(&mb) {
                self.pending[ia] = None;
                self.pending[ib] = None;
                self.state.apply_two_matrices(
                    usize::from(self.perm[ia]),
                    &ma,
                    usize::from(self.perm[ib]),
                    &mb,
                );
                return;
            }
        }
        self.flush(a);
        self.flush(b);
    }

    /// Materializes the pending matrices of a terminal run of measurements,
    /// pairing consecutive pending wires into fused two-wire passes (same
    /// kernel and same guarantees as [`Self::flush_two`]; flush order is
    /// the measure order, so the result is bitwise identical to flushing
    /// one wire at a time).
    pub(crate) fn flush_terminal(&mut self, measures: &[(u8, u8, f64)]) {
        let mut carry: Option<u8> = None;
        for &(qubit, _, _) in measures {
            let iq = usize::from(qubit);
            let Some(matrix) = self.pending[iq] else {
                continue;
            };
            match carry {
                None if crate::state::is_general_shape(&matrix) => carry = Some(qubit),
                None => self.flush(qubit),
                // A re-measured qubit meets its own delayed flush: one
                // flush, exactly what the sequential order would have done.
                Some(held) if held == qubit => {
                    self.flush(held);
                    carry = None;
                }
                Some(held) => {
                    self.flush_two(held, qubit);
                    carry = None;
                }
            }
        }
        if let Some(held) = carry {
            self.flush(held);
        }
    }

    /// Materializes the pending matrix of `qubit` and returns the
    /// probability of measuring it as 1, fusing the flush pass with the
    /// probability read (bit-identical to `flush` + `probability_one`).
    pub(crate) fn flush_and_p1(&mut self, qubit: u8) -> f64 {
        let slot = usize::from(self.perm[usize::from(qubit)]);
        match self.pending[usize::from(qubit)].take() {
            Some(matrix) => self.state.apply_matrix_measure(slot, &matrix),
            None => self.state.probability_one(slot),
        }
    }

    /// Applies a CNOT between the current slots of two program qubits.
    fn apply_cnot(&mut self, control: u8, target: u8) {
        self.state.apply_cnot(
            usize::from(self.perm[usize::from(control)]),
            usize::from(self.perm[usize::from(target)]),
        );
    }

    /// Realizes a noiseless SWAP by exchanging the two program qubits'
    /// slots — no state pass at all. Pending matrices are attached to the
    /// content they transform, so they travel with the relabeling.
    fn relabel_swap(&mut self, a: u8, b: u8) {
        self.perm.swap(usize::from(a), usize::from(b));
        self.pending.swap(usize::from(a), usize::from(b));
    }

    /// Projects `qubit` onto a known measurement `outcome` given the
    /// pre-computed probability `p1` of measuring 1 — exactly the collapse
    /// half of [`StateVector::measure`], for replaying a measurement whose
    /// outcome was drawn elsewhere (the engine's dominant-path walker and
    /// its divergence fallback).
    pub(crate) fn collapse_measured(&mut self, qubit: u8, outcome: bool, p1: f64) {
        let slot = usize::from(self.perm[usize::from(qubit)]);
        let norm = if outcome { p1 } else { 1.0 - p1 };
        self.state.collapse_with_norm(slot, outcome, norm);
    }

    /// Applies a general Kraus channel to `qubit`: selects one branch `k`
    /// with the state-dependent probability `p_k = tr(A_k ρ A_k†)`
    /// (computed from the cached Gram matrices `G_k = A_k† A_k` and the
    /// qubit's reduced density matrix), applies its fused operator `A_k`,
    /// and renormalizes by `1/√p_k`. Uses the caller's single uniform `u`
    /// so the draw count per trial is fixed.
    pub(crate) fn apply_kraus_channel(&mut self, qubit: u8, table: &KrausTable, u: f64) {
        // The fused A_k = K_k · U already bakes in the pending unitary
        // taken at lowering, but runtime-fused Paulis from *other* sampled
        // channels may still be pending on this wire — flush them first so
        // the reduced density matrix describes the pre-channel state.
        self.flush(qubit);
        let slot = usize::from(self.perm[usize::from(qubit)]);
        let (p0, cross, p1) = self.state.reduced_density(slot);
        // p_k = g00·ρ00 + g11·ρ11 + 2·Re(g01·ρ10), clamped against
        // rounding (each p_k is a trace of a PSD product, so ≥ 0 exactly).
        let branch_p =
            |g: &(f64, Complex, f64)| (g.0 * p0 + g.2 * p1 + 2.0 * (g.1 * cross).re).max(0.0);
        let total: f64 = table.grams.iter().map(&branch_p).sum();
        let target = u * total;
        let mut chosen = table.grams.len() - 1;
        let mut acc = 0.0;
        for (k, g) in table.grams.iter().enumerate() {
            acc += branch_p(g);
            if acc > target {
                chosen = k;
                break;
            }
        }
        let p = branch_p(&table.grams[chosen]);
        self.state.apply_matrix(slot, &table.ops[chosen]);
        if p > 0.0 {
            self.state.scale(1.0 / p.sqrt());
        }
    }
}

/// The dense state-vector backend. Every hook body is exactly the code the
/// replay walkers used to inline, so the monomorphized generic walk is
/// bit-identical to the pre-trait dense path.
impl SimBackend for TrialScratch {
    fn reset_state(&mut self) {
        self.reset();
    }

    fn fuse_unitary(&mut self, qubit: u8, matrix: &Matrix2) {
        self.fuse(qubit, matrix);
    }

    fn inject_pauli(&mut self, qubit: u8, pauli: Pauli) {
        self.fuse_pauli(qubit, pauli);
    }

    fn cnot(&mut self, control: u8, target: u8) {
        self.flush_two(control, target);
        self.apply_cnot(control, target);
    }

    fn swap_relabel(&mut self, a: u8, b: u8) {
        self.relabel_swap(a, b);
    }

    fn apply_kraus(&mut self, qubit: u8, table: &KrausTable, u: f64) {
        self.apply_kraus_channel(qubit, table, u);
    }

    fn measure<R: Rng + ?Sized>(&mut self, qubit: u8, rng: &mut R) -> bool {
        let p1 = self.flush_and_p1(qubit).clamp(0.0, 1.0);
        let outcome = rng.gen_bool(p1);
        self.collapse_measured(qubit, outcome, p1);
        outcome
    }

    fn terminal_sample<R: Rng + ?Sized>(
        &mut self,
        measures: &[(u8, u8, f64)],
        rng: &mut R,
    ) -> u128 {
        self.flush_terminal(measures);
        // Canonical traversal: basis states are visited in program-qubit
        // bit order regardless of how relabeling SWAPs permuted the
        // physical layout, so the same uniform draw picks the same logical
        // outcome in every layout (and in the tiered engine's precomputed
        // CDF).
        let canonical = self.state.sample_canonical(&self.perm, rng);
        let mut ideal = 0u128;
        for (i, &(qubit, _, _)) in measures.iter().enumerate() {
            if canonical >> qubit & 1 == 1 {
                ideal |= 1u128 << i;
            }
        }
        ideal
    }

    fn save_into(&self, checkpoint: &mut Self) {
        checkpoint.copy_from(self);
    }

    fn restore_from(&mut self, checkpoint: &Self) {
        self.copy_from(checkpoint);
    }
}

const PAULI_X_MATRIX: Matrix2 = [Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO];
const PAULI_Y_MATRIX: Matrix2 = [
    Complex::ZERO,
    Complex { re: 0.0, im: -1.0 },
    Complex::I,
    Complex::ZERO,
];
const PAULI_Z_MATRIX: Matrix2 = [
    Complex::ONE,
    Complex::ZERO,
    Complex::ZERO,
    Complex { re: -1.0, im: 0.0 },
];

/// Accumulates ops while fusing runs of single-qubit unitaries per qubit.
struct Lowering {
    ops: Vec<TrialOp>,
    pending: Vec<Option<Matrix2>>,
}

impl Lowering {
    /// Composes `m` onto the pending unitary of `qubit` (applied after it).
    fn fuse(&mut self, qubit: u8, m: &Matrix2) {
        let slot = &mut self.pending[usize::from(qubit)];
        *slot = Some(match slot.take() {
            Some(old) => matmul(m, &old),
            None => *m,
        });
    }

    /// Emits the pending unitary of `qubit`, if any.
    fn flush(&mut self, qubit: u8) {
        if let Some(matrix) = self.pending[usize::from(qubit)].take() {
            self.ops.push(TrialOp::Unitary { qubit, matrix });
        }
    }
}

/// Row-major 2×2 product `a * b` (apply `b`, then `a`).
fn matmul(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

/// The calibrated rate a measure binding's `{"calibration": f}` scales:
/// the qubit's readout error.
fn measure_calibrated(calibration: &Calibration, hw: usize) -> f64 {
    calibration.readout_error(HwQubit(hw)).clamp(0.0, 1.0)
}

/// Interns a fused Kraus operator list, deduplicating bit-identical
/// tables (a binding covering many sites with the same fused unitary —
/// e.g. every measure — shares one table).
fn intern_kraus(tables: &mut Vec<KrausTable>, ops: Vec<Matrix2>) -> u16 {
    if let Some(i) = tables.iter().position(|t| t.ops == ops) {
        return i as u16;
    }
    assert!(
        tables.len() < usize::from(u16::MAX),
        "program exceeds {} distinct Kraus tables",
        u16::MAX
    );
    tables.push(KrausTable::new(ops));
    (tables.len() - 1) as u16
}

/// Emits the trial op realizing one single-qubit binding at a site whose
/// calibrated error rate is `calibrated`. Pauli-diagonalizable channels
/// become a pre-samplable [`TrialOp::ChannelNoise`] gate (the fast tiers
/// keep working); amplitude damping and general Kraus channels take the
/// wire's pending unitary with them (`A_k = K_k · U`, one fused pass) and
/// become a state-dependent [`TrialOp::KrausChannel`].
fn emit_1q_channel(
    lowering: &mut Lowering,
    kraus_tables: &mut Vec<KrausTable>,
    binding: &Binding,
    qubit: u8,
    calibrated: f64,
) {
    let channel = binding.channel_at(calibrated);
    match channel.pauli_form() {
        Some(PauliForm::One { p_fire, wx, wy, .. }) => {
            if p_fire > 0.0 {
                // Flush so the error lands *after* the gate it is bound to
                // (pending unitaries would otherwise materialize later in
                // the op stream, inverting the order).
                lowering.flush(qubit);
                lowering.ops.push(TrialOp::ChannelNoise {
                    qubit,
                    p_fire: p_fire.clamp(0.0, 1.0),
                    cum_x: wx,
                    cum_xy: wx + wy,
                });
            }
        }
        Some(PauliForm::TwoUniform { .. }) => {
            unreachable!("spec validation restricts two-qubit shapes to cnot/swap bindings")
        }
        None => {
            let kraus = channel
                .kraus_ops()
                .expect("non-Pauli channels expose Kraus operators");
            let fused = lowering.pending[usize::from(qubit)].take();
            let ops: Vec<Matrix2> = kraus
                .iter()
                .map(|k| {
                    let m = [
                        Complex::new(k[0].0, k[0].1),
                        Complex::new(k[1].0, k[1].1),
                        Complex::new(k[2].0, k[2].1),
                        Complex::new(k[3].0, k[3].1),
                    ];
                    match &fused {
                        Some(u) => matmul(&m, u),
                        None => m,
                    }
                })
                .collect();
            let table = intern_kraus(kraus_tables, ops);
            lowering.ops.push(TrialOp::KrausChannel { qubit, table });
        }
    }
}

/// Emits the trial op realizing one cnot/swap binding on the (compact)
/// wire pair. Spec validation guarantees the bound shape is two-qubit
/// depolarizing — always pre-samplable.
fn emit_2q_channel(lowering: &mut Lowering, binding: &Binding, a: u8, b: u8, calibrated: f64) {
    match binding.channel_at(calibrated).pauli_form() {
        Some(PauliForm::TwoUniform { p_fire }) => {
            if p_fire > 0.0 {
                lowering.ops.push(TrialOp::ChannelNoise2 {
                    a,
                    b,
                    p_fire: p_fire.clamp(0.0, 1.0),
                });
            }
        }
        _ => unreachable!("spec validation restricts cnot/swap bindings to depolarizing-2q"),
    }
}

/// Sinks every measurement whose qubit is never referenced afterwards to
/// the end of the program, folding two or more of them into one
/// [`TrialOp::TerminalSample`].
///
/// A measurement commutes with every later op that does not reference its
/// qubit (gates and noise on other qubits, and other sinkable
/// measurements), so its measure-and-collapse pass can be replaced by one
/// joint cumulative sample at the end. Any later reference blocks sinking:
/// gates and noise would see the wrong (uncollapsed) state, and a SWAP
/// relabels which content the qubit names. Qiskit-style executables that
/// measure each logical qubit as soon as it is done benefit the most —
/// every one of their measurements typically sinks.
fn sink_measures(ops: &mut Vec<TrialOp>) {
    // 256-bit qubit set (compact indices are u8, so 256 bits cover every
    // possible wire — wide tableau programs exceed a single machine word).
    let mut used_later = [0u64; 4];
    let mark = |set: &mut [u64; 4], q: u8| set[usize::from(q >> 6)] |= 1u64 << (q & 63);
    let test = |set: &[u64; 4], q: u8| set[usize::from(q >> 6)] >> (q & 63) & 1 == 1;
    // Reverse program order: `used_later` holds the qubits referenced by
    // ops later than the one being examined.
    let mut kept_rev: Vec<TrialOp> = Vec::with_capacity(ops.len());
    let mut sunk_rev: Vec<(u8, u8, f64)> = Vec::new();
    for op in ops.drain(..).rev() {
        if let TrialOp::Measure {
            qubit,
            clbit,
            p_flip,
        } = op
        {
            if !test(&used_later, qubit) {
                // Note: the qubit is deliberately NOT marked as used — an
                // earlier measurement of the same qubit may sink too, and
                // joint sampling then assigns both clbits the same bit,
                // exactly as measure-then-remeasure would.
                sunk_rev.push((qubit, clbit, p_flip));
                continue;
            }
        }
        match op {
            TrialOp::Unitary { qubit, .. }
            | TrialOp::GateNoise { qubit, .. }
            | TrialOp::ChannelNoise { qubit, .. }
            | TrialOp::KrausChannel { qubit, .. } => {
                mark(&mut used_later, qubit);
            }
            TrialOp::Measure { qubit, .. } => {
                mark(&mut used_later, qubit);
            }
            TrialOp::Cnot { control, target }
            | TrialOp::CnotNoise {
                control, target, ..
            } => {
                mark(&mut used_later, control);
                mark(&mut used_later, target);
            }
            TrialOp::Swap { a, b, .. } | TrialOp::ChannelNoise2 { a, b, .. } => {
                mark(&mut used_later, a);
                mark(&mut used_later, b);
            }
            TrialOp::TerminalSample { .. } => {
                unreachable!("sinking runs before any terminal sample exists")
            }
        }
        kept_rev.push(op);
    }
    kept_rev.reverse();
    *ops = kept_rev;
    sunk_rev.reverse();
    match sunk_rev.len() {
        0 => {}
        1 => {
            let (qubit, clbit, p_flip) = sunk_rev[0];
            ops.push(TrialOp::Measure {
                qubit,
                clbit,
                p_flip,
            });
        }
        _ => ops.push(TrialOp::TerminalSample { measures: sunk_rev }),
    }
}

pub(crate) fn sample_dephase<R: Rng + ?Sized>(p: f64, rng: &mut R) -> Pauli {
    if p > 0.0 && rng.gen_bool(p) {
        Pauli::Z
    } else {
        Pauli::I
    }
}

/// Resolves one two-qubit noise group — a depolarizing gate followed by a
/// control and a target dephasing gate — given which of the three fired
/// first: the fired gate's severity plus the group's remaining gates are
/// drawn sequentially, gates before the fired one are known identity.
fn resolve_group<R: Rng + ?Sized>(
    sub: u8,
    p_dephase_control: f64,
    p_dephase_target: f64,
    rng: &mut R,
) -> (Pauli, Pauli) {
    match sub {
        0 => {
            let (pc, pt) = noise::fired_depol_2q(rng);
            let dc = sample_dephase(p_dephase_control, rng);
            let dt = sample_dephase(p_dephase_target, rng);
            (pc.compose(dc), pt.compose(dt))
        }
        1 => (Pauli::Z, sample_dephase(p_dephase_target, rng)),
        _ => (Pauli::I, Pauli::Z),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::{Circuit, Qubit};

    fn machine() -> Machine {
        Machine::ibmq16_on_day(2, 0)
    }

    #[test]
    fn ideal_lowering_fuses_single_qubit_runs() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).t(Qubit(0)).s(Qubit(0)).h(Qubit(1));
        c.cnot(Qubit(0), Qubit(1));
        c.measure_all();
        let program = TrialProgram::lower(&c, &machine(), &NoiseModel::ideal());
        // h/t/s on qubit 0 fuse to one unitary; h on qubit 1 is another; the
        // CNOT and the terminal sample (both measures folded) follow: 4 ops
        // total, and no noise ops.
        let unitaries = program
            .ops()
            .iter()
            .filter(|op| matches!(op, TrialOp::Unitary { .. }))
            .count();
        assert_eq!(unitaries, 2, "ops: {:?}", program.ops());
        assert_eq!(program.ops().len(), 4);
        assert!(matches!(
            program.ops().last(),
            Some(TrialOp::TerminalSample { measures }) if measures.len() == 2
        ));
        assert!(!program
            .ops()
            .iter()
            .any(|op| matches!(op, TrialOp::GateNoise { .. } | TrialOp::CnotNoise { .. })));
        assert!(program.noise_sites().is_empty());
    }

    #[test]
    fn cnot_readout_model_fuses_between_cnots() {
        // Under the paper's first-order model there is no per-single-qubit
        // noise, so runs of single-qubit gates between CNOTs fuse.
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).t(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.h(Qubit(0)).s(Qubit(0)).h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.measure_all();
        let program = TrialProgram::lower(&c, &machine(), &NoiseModel::cnot_and_readout_only());
        let unitaries = program
            .ops()
            .iter()
            .filter(|op| matches!(op, TrialOp::Unitary { .. }))
            .count();
        assert_eq!(unitaries, 2, "ops: {:?}", program.ops());
        assert!(program
            .ops()
            .iter()
            .any(|op| matches!(op, TrialOp::CnotNoise { .. })));
        assert!(matches!(
            program.ops().last(),
            Some(TrialOp::TerminalSample { measures })
                if measures.iter().all(|&(_, _, p_flip)| p_flip > 0.0)
        ));
    }

    #[test]
    fn full_noise_lowering_prefetches_probabilities() {
        let m = machine();
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.measure_all();
        let program = TrialProgram::lower(&c, &m, &NoiseModel::full());
        for op in program.ops() {
            match op {
                TrialOp::GateNoise {
                    p_depol, p_dephase, ..
                } => {
                    assert!(*p_depol > 0.0 && *p_depol < 1.0);
                    assert!(*p_dephase > 0.0 && *p_dephase < 0.5);
                }
                TrialOp::CnotNoise { p_depol, .. } => {
                    assert!(*p_depol > 0.0 && *p_depol < 1.0);
                }
                TrialOp::Measure { p_flip, .. } => {
                    assert!(*p_flip > 0.0 && *p_flip < 1.0);
                }
                TrialOp::TerminalSample { measures } => {
                    for &(_, _, p_flip) in measures {
                        assert!(p_flip > 0.0 && p_flip < 1.0);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn noise_sites_index_every_stochastic_op() {
        let m = machine();
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.push(nisq_ir::Gate::swap(Qubit(1), Qubit(2)));
        c.measure_all();
        let program = TrialProgram::lower(&c, &m, &NoiseModel::full());
        for &site in program.noise_sites() {
            assert!(matches!(
                program.ops()[site as usize],
                TrialOp::GateNoise { .. }
                    | TrialOp::CnotNoise { .. }
                    | TrialOp::Swap { noise: Some(_), .. }
            ));
        }
        let stochastic = program
            .ops()
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    TrialOp::GateNoise { .. }
                        | TrialOp::CnotNoise { .. }
                        | TrialOp::Swap { noise: Some(_), .. }
                )
            })
            .count();
        assert_eq!(program.noise_sites().len(), stochastic);
        assert!(stochastic >= 3, "ops: {:?}", program.ops());
    }

    #[test]
    fn pre_sample_reports_first_error_site() {
        let m = machine();
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.measure_all();
        let program = TrialProgram::lower(&c, &m, &NoiseModel::full());
        let mut events = Vec::new();
        let mut clean = 0u32;
        let mut with_error = 0u32;
        for trial in 0..512u32 {
            let mut rng = TrialProgram::trial_rng(3, trial);
            match program.pre_sample(&mut events, &mut rng) {
                None => {
                    clean += 1;
                    assert!(events.iter().all(|e| !e.is_error()));
                }
                Some(first) => {
                    with_error += 1;
                    assert!(events[first as usize].is_error());
                    assert!(events[..first as usize].iter().all(|e| !e.is_error()));
                }
            }
            assert_eq!(events.len(), program.noise_sites().len());
        }
        // At the paper's calibration-derived error rates, both kinds occur.
        assert!(clean > 0, "no error-free trials in 512");
        assert!(with_error > 0, "no error trials in 512");
    }

    #[test]
    fn lowering_compacts_onto_touched_qubits() {
        let mut c = Circuit::with_clbits(16, 16);
        c.h(Qubit(3));
        c.cnot(Qubit(3), Qubit(7));
        c.measure(Qubit(7), nisq_ir::Clbit(0));
        let program = TrialProgram::lower(&c, &machine(), &NoiseModel::ideal());
        assert_eq!(program.num_qubits(), 2);
        assert_eq!(program.touched(), &[3, 7]);
    }

    #[test]
    fn trailing_unmeasured_unitaries_are_dropped() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.measure(Qubit(0), nisq_ir::Clbit(0));
        c.h(Qubit(1)); // dead: qubit 1 is never measured or entangled
        let program = TrialProgram::lower(&c, &machine(), &NoiseModel::ideal());
        assert!(
            !program
                .ops()
                .iter()
                .any(|op| matches!(op, TrialOp::Unitary { qubit, .. } if *qubit == 1)),
            "ops: {:?}",
            program.ops()
        );
    }

    #[test]
    fn fused_replay_matches_gate_by_gate_amplitudes() {
        // The heart of the fusion correctness argument: replaying the fused
        // ideal program produces the same amplitudes as applying every gate
        // of the expanded circuit one by one.
        let m = machine();
        let mut c = Circuit::new(3);
        c.h(Qubit(0)).t(Qubit(0)).s(Qubit(1)).h(Qubit(1));
        c.cnot(Qubit(0), Qubit(1));
        c.tdg(Qubit(1)).h(Qubit(2)).rz(Qubit(2), 0.4);
        c.cnot(Qubit(1), Qubit(2));
        c.h(Qubit(0)).h(Qubit(1)).h(Qubit(2));
        // Trailing CNOTs flush every pending fused unitary (unflushed
        // trailing unitaries are dead-gate-eliminated by design).
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(1), Qubit(2));
        let program = TrialProgram::lower(&c, &m, &NoiseModel::ideal());

        let mut scratch = program.make_scratch();
        let mut rng = TrialProgram::trial_rng(0, 0);
        // No measurements: replay applies only unitaries.
        let _ = program.run_trial(&mut scratch, &mut rng);
        let fused = scratch.state();

        let mut naive = StateVector::new(3);
        for gate in c.iter() {
            match gate.kind() {
                GateKind::Cnot => naive.apply_cnot(gate.qubits()[0].0, gate.qubits()[1].0),
                kind => naive.apply_single(gate.qubits()[0].0, kind),
            }
        }
        for i in 0..naive.len() {
            let (a, b) = (fused.amplitude(i), naive.amplitude(i));
            assert!((a - b).norm_sqr() < 1e-20, "{a} vs {b}");
        }
    }

    #[test]
    fn replay_from_checkpoint_matches_full_replay() {
        // Resuming from an ideally-advanced prefix must be bit-identical to
        // replaying from op 0 with the same pre-sampled events.
        let m = machine();
        let mut c = Circuit::new(3);
        c.h(Qubit(0)).t(Qubit(1));
        c.cnot(Qubit(0), Qubit(1));
        c.h(Qubit(2));
        c.cnot(Qubit(1), Qubit(2));
        c.measure_all();
        let program = TrialProgram::lower(&c, &m, &NoiseModel::full());
        let sites = program.noise_sites();
        assert!(!sites.is_empty());

        for trial in 0..256u32 {
            let mut rng = TrialProgram::trial_rng(11, trial);
            let mut events = Vec::new();
            let first = program.pre_sample(&mut events, &mut rng);
            let Some(first) = first else { continue };
            let resume_op = sites[first as usize] as usize;

            // Full replay.
            let mut full = program.make_scratch();
            full.reset();
            let mut rng_full = rng.clone();
            let key_full = program.replay_from(&mut full, 0, &events, &mut rng_full);

            // Checkpointed replay: advance ideally to the first error site,
            // then replay the suffix with the events positioned there.
            let mut prefix = program.make_scratch();
            prefix.reset();
            program.advance_ideal(&mut prefix, 0, resume_op);
            let mut rng_ckpt = rng.clone();
            let key_ckpt = program.replay_from(
                &mut prefix,
                resume_op,
                &events[first as usize..],
                &mut rng_ckpt,
            );
            assert_eq!(key_full, key_ckpt, "trial {trial}");
            assert_eq!(rng_full, rng_ckpt, "trial {trial}: draw counts diverged");
        }
    }

    #[test]
    fn trial_rng_is_deterministic_per_trial() {
        use rand::RngCore;
        let mut a = TrialProgram::trial_rng(9, 3);
        let mut b = TrialProgram::trial_rng(9, 3);
        let mut c = TrialProgram::trial_rng(9, 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "outside the machine")]
    fn rejects_out_of_machine_qubits() {
        let mut c = Circuit::new(32);
        c.h(Qubit(31));
        let _ = TrialProgram::lower(&c, &machine(), &NoiseModel::ideal());
    }
}
