//! Compile-once, replay-many trial programs.
//!
//! The figures of the paper are driven by 8192 noisy trials per executable,
//! and the naive per-trial loop pays for work that never changes between
//! trials: re-expanding SWAPs, re-compacting qubit indices, hashing
//! `EdgeId`s into calibration `BTreeMap`s for every gate, and re-deriving
//! dephasing probabilities from T2 times. [`TrialProgram::lower`] performs
//! all of that exactly once, producing a flat [`TrialOp`] array with
//! pre-resolved compact qubit indices and pre-fetched error probabilities —
//! the per-trial replay does zero hashing, zero calibration lookups and
//! zero allocation.
//!
//! Lowering also *fuses* consecutive single-qubit gates on a qubit into one
//! 2×2 matrix whenever no noise-injection point separates them (always in
//! ideal mode; between CNOTs under the paper's CNOT+readout-only model), so
//! a run of `h, t, h, s` costs one strided pass instead of four.
//!
//! Determinism contract: a trial's outcome is a pure function of
//! `(program, base_seed, trial_index)`. Replay order inside a trial is the
//! op order fixed at lowering time, and every random draw comes from the
//! trial's own seeded RNG stream — so results are bit-for-bit reproducible
//! for a seed and invariant under how trials are distributed over threads.

use crate::complex::Complex;
use crate::gates::{single_qubit_matrix, Matrix2};
use crate::noise::{self, NoiseModel, Pauli};
use crate::rng::TrialRng;
use crate::state::StateVector;
use nisq_ir::{Circuit, GateKind};
use nisq_machine::{HwQubit, Machine};
use rand::Rng;

/// Default CNOT duration (timeslots) when an edge has no calibration entry,
/// matching the fallback of the pre-program simulator.
const DEFAULT_CNOT_SLOTS: u32 = 4;

/// One instruction of a lowered trial program. Qubit operands are compact
/// indices into the trial's [`StateVector`]; probabilities are pre-fetched
/// from calibration data at lowering time.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialOp {
    /// A (possibly fused) single-qubit unitary.
    Unitary {
        /// Compact qubit index.
        qubit: u8,
        /// The 2×2 matrix, product of every fused gate.
        matrix: Matrix2,
    },
    /// A CNOT between two compact qubits.
    Cnot {
        /// Compact control index.
        control: u8,
        /// Compact target index.
        target: u8,
    },
    /// A SWAP between two compact qubits, physically three back-to-back
    /// CNOTs on the edge. Its unitary part is a basis permutation, so the
    /// replay realizes it by relabeling qubit indices — zero state passes —
    /// unless one of the three CNOTs' error draws fires, in which case the
    /// exact interleaved CNOT+error sequence is materialized.
    Swap {
        /// First compact qubit.
        a: u8,
        /// Second compact qubit.
        b: u8,
        /// Noise of the 3-CNOT decomposition; `None` when every channel
        /// relevant to this edge is disabled.
        noise: Option<SwapNoise>,
    },
    /// Stochastic error injection after a single-qubit gate: depolarizing
    /// with probability `p_depol`, then dephasing with `p_dephase`; the two
    /// sampled Paulis are composed (up to global phase) and applied with at
    /// most one kernel pass.
    GateNoise {
        /// Compact qubit index.
        qubit: u8,
        /// Pre-fetched single-qubit depolarizing probability.
        p_depol: f64,
        /// Pre-computed dephasing probability over the gate's duration.
        p_dephase: f64,
    },
    /// Stochastic error injection after a CNOT: two-qubit depolarizing with
    /// probability `p_depol`, then per-qubit dephasing over the CNOT's
    /// calibrated duration.
    CnotNoise {
        /// Compact control index.
        control: u8,
        /// Compact target index.
        target: u8,
        /// Pre-fetched per-edge CNOT depolarizing probability.
        p_depol: f64,
        /// Pre-computed control-qubit dephasing probability.
        p_dephase_control: f64,
        /// Pre-computed target-qubit dephasing probability.
        p_dephase_target: f64,
    },
    /// Measurement of a qubit into a classical bit, with a pre-fetched
    /// readout flip probability (zero when readout noise is disabled).
    Measure {
        /// Compact qubit index.
        qubit: u8,
        /// Classical bit index (bit position in the packed outcome).
        clbit: u8,
        /// Probability the classical result is flipped.
        p_flip: f64,
    },
    /// The trailing run of measurements of the program (no further gates
    /// act on any qubit). The joint outcome of all of them is sampled from
    /// the uncollapsed state in one cumulative pass — equivalent in
    /// distribution to measuring one qubit at a time, at a fraction of the
    /// cost.
    TerminalSample {
        /// `(qubit, clbit, p_flip)` of each folded measurement, in program
        /// order.
        measures: Vec<(u8, u8, f64)>,
    },
}

/// Pre-fetched error probabilities for one SWAP's 3-CNOT decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapNoise {
    /// Per-CNOT depolarizing probability on the edge.
    pub p_depol: f64,
    /// Per-CNOT dephasing probability of qubit `a`.
    pub p_dephase_a: f64,
    /// Per-CNOT dephasing probability of qubit `b`.
    pub p_dephase_b: f64,
}

/// A physical circuit lowered against one machine snapshot and noise model,
/// ready for cheap repeated trials. See the module docs for what lowering
/// precomputes.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialProgram {
    ops: Vec<TrialOp>,
    /// Hardware qubit of each compact index (sorted ascending).
    touched: Vec<usize>,
    num_clbits: usize,
}

impl TrialProgram {
    /// Lowers a physical circuit for `machine` under `noise`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit references qubits outside the machine, uses
    /// more than 64 classical bits (outcomes are bit-packed in a `u64`), or
    /// touches more than 24 qubits (the state-vector limit).
    pub fn lower(physical: &Circuit, machine: &Machine, noise: &NoiseModel) -> Self {
        assert!(
            physical
                .iter()
                .all(|g| g.qubits().iter().all(|q| q.0 < machine.num_qubits())),
            "circuit uses qubits outside the machine"
        );
        assert!(
            physical.num_clbits() <= 64,
            "trial outcomes are bit-packed; at most 64 classical bits are supported"
        );

        // Compact the circuit onto the qubits it actually touches.
        let mut touched: Vec<usize> = physical
            .iter()
            .flat_map(|g| g.qubits().iter().map(|q| q.0))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        assert!(
            touched.len() <= 24,
            "circuit touches more than 24 qubits; state vector would not fit in memory"
        );
        let mut compact = vec![u8::MAX; machine.num_qubits()];
        for (i, &hw) in touched.iter().enumerate() {
            compact[hw] = i as u8;
        }

        let calibration = machine.calibration();
        let mean_cnot_error = calibration.mean_cnot_error();
        let single_slots = calibration.durations.single_qubit_slots;

        // Per-qubit noise parameters, fetched once.
        let p_depol_1q: Vec<f64> = touched
            .iter()
            .map(|&hw| {
                if noise.single_qubit_noise {
                    calibration.single_qubit_error(HwQubit(hw))
                } else {
                    0.0
                }
            })
            .collect();
        let p_dephase_1q: Vec<f64> = touched
            .iter()
            .map(|&hw| {
                if noise.decoherence {
                    calibration.dephasing_probability(HwQubit(hw), single_slots)
                } else {
                    0.0
                }
            })
            .collect();
        let p_readout: Vec<f64> = touched
            .iter()
            .map(|&hw| {
                if noise.readout_noise {
                    calibration.readout_error(HwQubit(hw)).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect();

        let mut lowering = Lowering {
            ops: Vec::with_capacity(physical.len()),
            pending: vec![None; touched.len()],
        };

        // Pre-fetched noise of one physical CNOT on the edge `(hw_a, hw_b)`:
        // depolarizing probability plus per-endpoint dephasing over the
        // edge's calibrated duration. Shared by the CNOT and SWAP arms so
        // their fallbacks can never diverge. Returns `None` when every
        // probability is zero (no noise op needs emitting).
        let edge_noise = |hw_a: usize, hw_b: usize| -> Option<(f64, f64, f64)> {
            if !noise.cnot_noise && !noise.decoherence {
                return None;
            }
            let params = calibration.edge_params(HwQubit(hw_a), HwQubit(hw_b));
            let p_depol = if noise.cnot_noise {
                params.map_or(mean_cnot_error, |p| p.cnot_error)
            } else {
                0.0
            };
            let slots = params
                .and_then(|p| p.cnot_slots)
                .unwrap_or(DEFAULT_CNOT_SLOTS);
            let (p_da, p_db) = if noise.decoherence {
                (
                    calibration.dephasing_probability(HwQubit(hw_a), slots),
                    calibration.dephasing_probability(HwQubit(hw_b), slots),
                )
            } else {
                (0.0, 0.0)
            };
            (p_depol > 0.0 || p_da > 0.0 || p_db > 0.0).then_some((p_depol, p_da, p_db))
        };

        for gate in physical.iter() {
            match gate.kind() {
                GateKind::Cnot => {
                    let hw_c = gate.qubits()[0].0;
                    let hw_t = gate.qubits()[1].0;
                    let (c, t) = (compact[hw_c], compact[hw_t]);
                    lowering.flush(c);
                    lowering.flush(t);
                    lowering.ops.push(TrialOp::Cnot {
                        control: c,
                        target: t,
                    });
                    if let Some((p_depol, p_dc, p_dt)) = edge_noise(hw_c, hw_t) {
                        lowering.ops.push(TrialOp::CnotNoise {
                            control: c,
                            target: t,
                            p_depol,
                            p_dephase_control: p_dc,
                            p_dephase_target: p_dt,
                        });
                    }
                }
                GateKind::Swap => {
                    let hw_a = gate.qubits()[0].0;
                    let hw_b = gate.qubits()[1].0;
                    let (a, b) = (compact[hw_a], compact[hw_b]);
                    let swap_noise =
                        edge_noise(hw_a, hw_b).map(|(p_depol, p_da, p_db)| SwapNoise {
                            p_depol,
                            p_dephase_a: p_da,
                            p_dephase_b: p_db,
                        });
                    // Flush so the emitted op order matches program order;
                    // at *runtime* unitaries still cross relabeling swaps
                    // cheaply, because TrialScratch's pending matrices
                    // travel with the relabeling.
                    lowering.flush(a);
                    lowering.flush(b);
                    lowering.ops.push(TrialOp::Swap {
                        a,
                        b,
                        noise: swap_noise,
                    });
                }
                GateKind::Measure => {
                    let q = compact[gate.qubits()[0].0];
                    lowering.flush(q);
                    lowering.ops.push(TrialOp::Measure {
                        qubit: q,
                        clbit: gate.clbits()[0].0 as u8,
                        p_flip: p_readout[usize::from(q)],
                    });
                }
                GateKind::Barrier => {}
                kind => {
                    let q = compact[gate.qubits()[0].0];
                    lowering.fuse(q, &single_qubit_matrix(kind));
                    let p_depol = p_depol_1q[usize::from(q)];
                    let p_dephase = p_dephase_1q[usize::from(q)];
                    if p_depol > 0.0 || p_dephase > 0.0 {
                        lowering.flush(q);
                        lowering.ops.push(TrialOp::GateNoise {
                            qubit: q,
                            p_depol,
                            p_dephase,
                        });
                    }
                }
            }
        }
        // Unflushed trailing unitaries act on qubits that are never measured
        // or entangled again, so they cannot influence any recorded outcome
        // and are dropped (dead-gate elimination).

        let mut ops = lowering.ops;
        sink_measures(&mut ops);

        TrialProgram {
            ops,
            touched,
            num_clbits: physical.num_clbits(),
        }
    }

    /// The lowered instruction stream.
    pub fn ops(&self) -> &[TrialOp] {
        &self.ops
    }

    /// Number of compacted qubits a trial state needs.
    pub fn num_qubits(&self) -> usize {
        self.touched.len()
    }

    /// Number of classical bits in an outcome.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Hardware qubit index of each compact qubit, ascending.
    pub fn touched(&self) -> &[usize] {
        &self.touched
    }

    /// Allocates the reusable per-worker scratch for [`Self::run_trial`].
    pub fn make_scratch(&self) -> TrialScratch {
        TrialScratch {
            state: StateVector::new(self.num_qubits()),
            pending: vec![None; self.num_qubits()],
            perm: (0..self.num_qubits() as u8).collect(),
        }
    }

    /// Replays the program once against `scratch` (which is reset first),
    /// returning the measured classical bits packed into a `u64` (bit `i` =
    /// clbit `i`).
    ///
    /// Beyond the compile-time fusion done at lowering, the replay fuses at
    /// *runtime* across noise-injection points: a sampled Pauli is itself a
    /// 2×2 matrix, so single-qubit unitaries and (rare) sampled errors
    /// accumulate into one pending matrix per qubit, and a state pass only
    /// happens when a CNOT or measurement forces materialization. Under the
    /// full noise model this removes almost every single-qubit sweep, since
    /// most noise draws are the identity.
    pub fn run_trial<R: Rng + ?Sized>(&self, scratch: &mut TrialScratch, rng: &mut R) -> u64 {
        scratch.reset();
        let mut clbits = 0u64;
        for op in &self.ops {
            match *op {
                TrialOp::Unitary { qubit, ref matrix } => {
                    scratch.fuse(qubit, matrix);
                }
                TrialOp::Cnot { control, target } => {
                    scratch.flush(control);
                    scratch.flush(target);
                    scratch.apply_cnot(control, target);
                }
                TrialOp::Swap { a, b, ref noise } => match noise {
                    None => scratch.relabel_swap(a, b),
                    Some(n) => {
                        // Pre-draw every error event of the three CNOTs —
                        // cnot(a,b), cnot(b,a), cnot(a,b) — in exactly the
                        // order the expanded circuit would (per CNOT: the
                        // depolarizing pair, then control dephasing, then
                        // target dephasing), so replaying this op consumes
                        // the same RNG stream as replaying the expansion,
                        // and the relabeling fast path matches the
                        // materializing slow path bit for bit.
                        let mut events = [(Pauli::I, Pauli::I); 3];
                        let mut any_error = false;
                        for (k, event) in events.iter_mut().enumerate() {
                            let reversed = k == 1;
                            let (p_control, p_target) = noise::depolarizing_2q(n.p_depol, rng);
                            let (p_deph_c, p_deph_t) = if reversed {
                                (n.p_dephase_b, n.p_dephase_a)
                            } else {
                                (n.p_dephase_a, n.p_dephase_b)
                            };
                            let d_control = sample_dephase(p_deph_c, rng);
                            let d_target = sample_dephase(p_deph_t, rng);
                            let e_control = p_control.compose(d_control);
                            let e_target = p_target.compose(d_target);
                            *event = if reversed {
                                (e_target, e_control)
                            } else {
                                (e_control, e_target)
                            };
                            any_error |= *event != (Pauli::I, Pauli::I);
                        }
                        if !any_error {
                            scratch.relabel_swap(a, b);
                        } else {
                            // Exact semantics: each CNOT's sampled errors
                            // injected right after it.
                            for (k, &(ea, eb)) in events.iter().enumerate() {
                                let (c, t) = if k == 1 { (b, a) } else { (a, b) };
                                scratch.flush(c);
                                scratch.flush(t);
                                scratch.apply_cnot(c, t);
                                scratch.fuse_pauli(a, ea);
                                scratch.fuse_pauli(b, eb);
                            }
                        }
                    }
                },
                TrialOp::GateNoise {
                    qubit,
                    p_depol,
                    p_dephase,
                } => {
                    let depol = noise::depolarizing_1q(p_depol, rng);
                    let dephase = sample_dephase(p_dephase, rng);
                    scratch.fuse_pauli(qubit, depol.compose(dephase));
                }
                TrialOp::CnotNoise {
                    control,
                    target,
                    p_depol,
                    p_dephase_control,
                    p_dephase_target,
                } => {
                    let (pc, pt) = noise::depolarizing_2q(p_depol, rng);
                    let dc = sample_dephase(p_dephase_control, rng);
                    let dt = sample_dephase(p_dephase_target, rng);
                    scratch.fuse_pauli(control, pc.compose(dc));
                    scratch.fuse_pauli(target, pt.compose(dt));
                }
                TrialOp::Measure {
                    qubit,
                    clbit,
                    p_flip,
                } => {
                    scratch.flush(qubit);
                    let slot = usize::from(scratch.perm[usize::from(qubit)]);
                    let mut outcome = scratch.state.measure(slot, rng);
                    if p_flip > 0.0 && rng.gen_bool(p_flip) {
                        outcome = !outcome;
                    }
                    if outcome {
                        clbits |= 1u64 << clbit;
                    }
                }
                TrialOp::TerminalSample { ref measures } => {
                    for &(qubit, _, _) in measures {
                        scratch.flush(qubit);
                    }
                    let basis = scratch.state.sample_basis(rng);
                    for &(qubit, clbit, p_flip) in measures {
                        let mut outcome = basis >> scratch.perm[usize::from(qubit)] & 1 == 1;
                        if p_flip > 0.0 && rng.gen_bool(p_flip) {
                            outcome = !outcome;
                        }
                        if outcome {
                            clbits |= 1u64 << clbit;
                        }
                    }
                }
            }
        }
        clbits
    }

    /// Derives the deterministic per-trial RNG for `(base_seed, trial)` —
    /// a counter-based [`TrialRng`] stream with no per-trial seeding work.
    /// Exposed so tests and tools can reproduce a single trial exactly.
    pub fn trial_rng(base_seed: u64, trial: u32) -> TrialRng {
        TrialRng::new(base_seed, trial)
    }
}

/// Reusable per-worker trial state: the scratch [`StateVector`], the
/// runtime-fusion accumulator (one pending 2×2 matrix per program qubit),
/// and the program-qubit → state-slot permutation maintained by relabeling
/// SWAPs. Allocate once via [`TrialProgram::make_scratch`], replay many
/// trials through it.
#[derive(Debug, Clone)]
pub struct TrialScratch {
    state: StateVector,
    pending: Vec<Option<Matrix2>>,
    /// `perm[program qubit] = state slot`. Identity until a SWAP relabels.
    perm: Vec<u8>,
}

impl TrialScratch {
    /// The state vector after the last replay. Pending (unmaterialized)
    /// unitaries act only on qubits whose state is never observed again, so
    /// the amplitudes reflect every measurement-relevant operation. Note
    /// that relabeling SWAPs permute which *slot* holds which program
    /// qubit; [`Self::slot_of`] exposes the mapping.
    pub fn state(&self) -> &StateVector {
        &self.state
    }

    /// The state-vector slot currently holding `program_qubit`.
    pub fn slot_of(&self, program_qubit: usize) -> usize {
        usize::from(self.perm[program_qubit])
    }

    fn reset(&mut self) {
        self.state.reset();
        self.pending.fill(None);
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i as u8;
        }
    }

    /// Composes `m` onto the pending matrix of `qubit` (applied after it).
    fn fuse(&mut self, qubit: u8, m: &Matrix2) {
        let slot = &mut self.pending[usize::from(qubit)];
        *slot = Some(match slot.take() {
            Some(old) => matmul(m, &old),
            None => *m,
        });
    }

    /// Composes a sampled Pauli error onto the pending matrix (identity is
    /// free: no work at all).
    fn fuse_pauli(&mut self, qubit: u8, pauli: Pauli) {
        match pauli {
            Pauli::I => {}
            Pauli::X => self.fuse(qubit, &PAULI_X_MATRIX),
            Pauli::Y => self.fuse(qubit, &PAULI_Y_MATRIX),
            Pauli::Z => self.fuse(qubit, &PAULI_Z_MATRIX),
        }
    }

    /// Materializes the pending matrix of `qubit` into its current slot.
    fn flush(&mut self, qubit: u8) {
        if let Some(matrix) = self.pending[usize::from(qubit)].take() {
            self.state
                .apply_matrix(usize::from(self.perm[usize::from(qubit)]), &matrix);
        }
    }

    /// Applies a CNOT between the current slots of two program qubits.
    fn apply_cnot(&mut self, control: u8, target: u8) {
        self.state.apply_cnot(
            usize::from(self.perm[usize::from(control)]),
            usize::from(self.perm[usize::from(target)]),
        );
    }

    /// Realizes a noiseless SWAP by exchanging the two program qubits'
    /// slots — no state pass at all. Pending matrices are attached to the
    /// content they transform, so they travel with the relabeling.
    fn relabel_swap(&mut self, a: u8, b: u8) {
        self.perm.swap(usize::from(a), usize::from(b));
        self.pending.swap(usize::from(a), usize::from(b));
    }
}

const PAULI_X_MATRIX: Matrix2 = [Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO];
const PAULI_Y_MATRIX: Matrix2 = [
    Complex::ZERO,
    Complex { re: 0.0, im: -1.0 },
    Complex::I,
    Complex::ZERO,
];
const PAULI_Z_MATRIX: Matrix2 = [
    Complex::ONE,
    Complex::ZERO,
    Complex::ZERO,
    Complex { re: -1.0, im: 0.0 },
];

/// Accumulates ops while fusing runs of single-qubit unitaries per qubit.
struct Lowering {
    ops: Vec<TrialOp>,
    pending: Vec<Option<Matrix2>>,
}

impl Lowering {
    /// Composes `m` onto the pending unitary of `qubit` (applied after it).
    fn fuse(&mut self, qubit: u8, m: &Matrix2) {
        let slot = &mut self.pending[usize::from(qubit)];
        *slot = Some(match slot.take() {
            Some(old) => matmul(m, &old),
            None => *m,
        });
    }

    /// Emits the pending unitary of `qubit`, if any.
    fn flush(&mut self, qubit: u8) {
        if let Some(matrix) = self.pending[usize::from(qubit)].take() {
            self.ops.push(TrialOp::Unitary { qubit, matrix });
        }
    }
}

/// Row-major 2×2 product `a * b` (apply `b`, then `a`).
fn matmul(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

/// Sinks every measurement whose qubit is never referenced afterwards to
/// the end of the program, folding two or more of them into one
/// [`TrialOp::TerminalSample`].
///
/// A measurement commutes with every later op that does not reference its
/// qubit (gates and noise on other qubits, and other sinkable
/// measurements), so its measure-and-collapse pass can be replaced by one
/// joint cumulative sample at the end. Any later reference blocks sinking:
/// gates and noise would see the wrong (uncollapsed) state, and a SWAP
/// relabels which content the qubit names. Qiskit-style executables that
/// measure each logical qubit as soon as it is done benefit the most —
/// every one of their measurements typically sinks.
fn sink_measures(ops: &mut Vec<TrialOp>) {
    let mut used_later = 0u32;
    // Reverse program order: `used_later` holds the qubits referenced by
    // ops later than the one being examined.
    let mut kept_rev: Vec<TrialOp> = Vec::with_capacity(ops.len());
    let mut sunk_rev: Vec<(u8, u8, f64)> = Vec::new();
    for op in ops.drain(..).rev() {
        if let TrialOp::Measure {
            qubit,
            clbit,
            p_flip,
        } = op
        {
            if used_later & (1u32 << qubit) == 0 {
                // Note: the qubit is deliberately NOT marked as used — an
                // earlier measurement of the same qubit may sink too, and
                // joint sampling then assigns both clbits the same bit,
                // exactly as measure-then-remeasure would.
                sunk_rev.push((qubit, clbit, p_flip));
                continue;
            }
        }
        match op {
            TrialOp::Unitary { qubit, .. } | TrialOp::GateNoise { qubit, .. } => {
                used_later |= 1u32 << qubit;
            }
            TrialOp::Measure { qubit, .. } => {
                used_later |= 1u32 << qubit;
            }
            TrialOp::Cnot { control, target }
            | TrialOp::CnotNoise {
                control, target, ..
            } => {
                used_later |= 1u32 << control | 1u32 << target;
            }
            TrialOp::Swap { a, b, .. } => {
                used_later |= 1u32 << a | 1u32 << b;
            }
            TrialOp::TerminalSample { .. } => {
                unreachable!("sinking runs before any terminal sample exists")
            }
        }
        kept_rev.push(op);
    }
    kept_rev.reverse();
    *ops = kept_rev;
    sunk_rev.reverse();
    match sunk_rev.len() {
        0 => {}
        1 => {
            let (qubit, clbit, p_flip) = sunk_rev[0];
            ops.push(TrialOp::Measure {
                qubit,
                clbit,
                p_flip,
            });
        }
        _ => ops.push(TrialOp::TerminalSample { measures: sunk_rev }),
    }
}

fn sample_dephase<R: Rng + ?Sized>(p: f64, rng: &mut R) -> Pauli {
    if p > 0.0 && rng.gen_bool(p) {
        Pauli::Z
    } else {
        Pauli::I
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::{Circuit, Qubit};

    fn machine() -> Machine {
        Machine::ibmq16_on_day(2, 0)
    }

    #[test]
    fn ideal_lowering_fuses_single_qubit_runs() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).t(Qubit(0)).s(Qubit(0)).h(Qubit(1));
        c.cnot(Qubit(0), Qubit(1));
        c.measure_all();
        let program = TrialProgram::lower(&c, &machine(), &NoiseModel::ideal());
        // h/t/s on qubit 0 fuse to one unitary; h on qubit 1 is another; the
        // CNOT and the terminal sample (both measures folded) follow: 4 ops
        // total, and no noise ops.
        let unitaries = program
            .ops()
            .iter()
            .filter(|op| matches!(op, TrialOp::Unitary { .. }))
            .count();
        assert_eq!(unitaries, 2, "ops: {:?}", program.ops());
        assert_eq!(program.ops().len(), 4);
        assert!(matches!(
            program.ops().last(),
            Some(TrialOp::TerminalSample { measures }) if measures.len() == 2
        ));
        assert!(!program
            .ops()
            .iter()
            .any(|op| matches!(op, TrialOp::GateNoise { .. } | TrialOp::CnotNoise { .. })));
    }

    #[test]
    fn cnot_readout_model_fuses_between_cnots() {
        // Under the paper's first-order model there is no per-single-qubit
        // noise, so runs of single-qubit gates between CNOTs fuse.
        let mut c = Circuit::new(2);
        c.h(Qubit(0)).t(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.h(Qubit(0)).s(Qubit(0)).h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.measure_all();
        let program = TrialProgram::lower(&c, &machine(), &NoiseModel::cnot_and_readout_only());
        let unitaries = program
            .ops()
            .iter()
            .filter(|op| matches!(op, TrialOp::Unitary { .. }))
            .count();
        assert_eq!(unitaries, 2, "ops: {:?}", program.ops());
        assert!(program
            .ops()
            .iter()
            .any(|op| matches!(op, TrialOp::CnotNoise { .. })));
        assert!(matches!(
            program.ops().last(),
            Some(TrialOp::TerminalSample { measures })
                if measures.iter().all(|&(_, _, p_flip)| p_flip > 0.0)
        ));
    }

    #[test]
    fn full_noise_lowering_prefetches_probabilities() {
        let m = machine();
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.cnot(Qubit(0), Qubit(1));
        c.measure_all();
        let program = TrialProgram::lower(&c, &m, &NoiseModel::full());
        for op in program.ops() {
            match op {
                TrialOp::GateNoise {
                    p_depol, p_dephase, ..
                } => {
                    assert!(*p_depol > 0.0 && *p_depol < 1.0);
                    assert!(*p_dephase > 0.0 && *p_dephase < 0.5);
                }
                TrialOp::CnotNoise { p_depol, .. } => {
                    assert!(*p_depol > 0.0 && *p_depol < 1.0);
                }
                TrialOp::Measure { p_flip, .. } => {
                    assert!(*p_flip > 0.0 && *p_flip < 1.0);
                }
                TrialOp::TerminalSample { measures } => {
                    for &(_, _, p_flip) in measures {
                        assert!(p_flip > 0.0 && p_flip < 1.0);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn lowering_compacts_onto_touched_qubits() {
        let mut c = Circuit::with_clbits(16, 16);
        c.h(Qubit(3));
        c.cnot(Qubit(3), Qubit(7));
        c.measure(Qubit(7), nisq_ir::Clbit(0));
        let program = TrialProgram::lower(&c, &machine(), &NoiseModel::ideal());
        assert_eq!(program.num_qubits(), 2);
        assert_eq!(program.touched(), &[3, 7]);
    }

    #[test]
    fn trailing_unmeasured_unitaries_are_dropped() {
        let mut c = Circuit::new(2);
        c.h(Qubit(0));
        c.measure(Qubit(0), nisq_ir::Clbit(0));
        c.h(Qubit(1)); // dead: qubit 1 is never measured or entangled
        let program = TrialProgram::lower(&c, &machine(), &NoiseModel::ideal());
        assert!(
            !program
                .ops()
                .iter()
                .any(|op| matches!(op, TrialOp::Unitary { qubit, .. } if *qubit == 1)),
            "ops: {:?}",
            program.ops()
        );
    }

    #[test]
    fn fused_replay_matches_gate_by_gate_amplitudes() {
        // The heart of the fusion correctness argument: replaying the fused
        // ideal program produces the same amplitudes as applying every gate
        // of the expanded circuit one by one.
        let m = machine();
        let mut c = Circuit::new(3);
        c.h(Qubit(0)).t(Qubit(0)).s(Qubit(1)).h(Qubit(1));
        c.cnot(Qubit(0), Qubit(1));
        c.tdg(Qubit(1)).h(Qubit(2)).rz(Qubit(2), 0.4);
        c.cnot(Qubit(1), Qubit(2));
        c.h(Qubit(0)).h(Qubit(1)).h(Qubit(2));
        // Trailing CNOTs flush every pending fused unitary (unflushed
        // trailing unitaries are dead-gate-eliminated by design).
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(1), Qubit(2));
        let program = TrialProgram::lower(&c, &m, &NoiseModel::ideal());

        let mut scratch = program.make_scratch();
        let mut rng = TrialProgram::trial_rng(0, 0);
        // No measurements: replay applies only unitaries.
        let _ = program.run_trial(&mut scratch, &mut rng);
        let fused = scratch.state();

        let mut naive = StateVector::new(3);
        for gate in c.iter() {
            match gate.kind() {
                GateKind::Cnot => naive.apply_cnot(gate.qubits()[0].0, gate.qubits()[1].0),
                kind => naive.apply_single(gate.qubits()[0].0, kind),
            }
        }
        for (a, b) in fused.amplitudes().iter().zip(naive.amplitudes()) {
            assert!((*a - *b).norm_sqr() < 1e-20, "{a} vs {b}");
        }
    }

    #[test]
    fn trial_rng_is_deterministic_per_trial() {
        use rand::RngCore;
        let mut a = TrialProgram::trial_rng(9, 3);
        let mut b = TrialProgram::trial_rng(9, 3);
        let mut c = TrialProgram::trial_rng(9, 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "outside the machine")]
    fn rejects_out_of_machine_qubits() {
        let mut c = Circuit::new(32);
        c.h(Qubit(31));
        let _ = TrialProgram::lower(&c, &machine(), &NoiseModel::ideal());
    }
}
