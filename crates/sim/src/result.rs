use std::collections::BTreeMap;
use std::fmt;

/// Aggregated outcomes of a multi-trial simulation: how many times each
/// classical bit-string was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationResult {
    counts: BTreeMap<Vec<bool>, u32>,
    trials: u32,
}

impl SimulationResult {
    /// Creates a result from raw counts.
    pub fn new(counts: BTreeMap<Vec<bool>, u32>) -> Self {
        let trials = counts.values().sum();
        SimulationResult { counts, trials }
    }

    /// Creates a result from `u128`-bit-packed outcome counts (bit `i` of a
    /// key is classical bit `i`), the aggregation format of the simulator's
    /// hot loop. Unpacking happens once per *distinct* outcome, not per
    /// trial.
    pub fn from_bitpacked(
        counts: impl IntoIterator<Item = (u128, u32)>,
        num_clbits: usize,
    ) -> Self {
        assert!(
            num_clbits <= 128,
            "bit-packed outcomes hold at most 128 bits"
        );
        let unpacked: BTreeMap<Vec<bool>, u32> = counts
            .into_iter()
            .map(|(key, count)| {
                let bits: Vec<bool> = (0..num_clbits).map(|i| key >> i & 1 == 1).collect();
                (bits, count)
            })
            .collect();
        SimulationResult::new(unpacked)
    }

    /// Total number of trials.
    pub fn trials(&self) -> u32 {
        self.trials
    }

    /// The raw counts, keyed by classical bit-string (index = classical bit).
    pub fn counts(&self) -> &BTreeMap<Vec<bool>, u32> {
        &self.counts
    }

    /// Fraction of trials that produced exactly `bits` — the paper's
    /// success-rate metric when `bits` is the known correct answer.
    pub fn probability_of(&self, bits: &[bool]) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        *self.counts.get(bits).unwrap_or(&0) as f64 / self.trials as f64
    }

    /// The most frequently observed bit-string (ties broken towards the
    /// lexicographically smallest), or `None` when no trials were run.
    pub fn most_frequent(&self) -> Option<&[bool]> {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(bits, _)| bits.as_slice())
    }

    /// Number of distinct observed bit-strings.
    pub fn distinct_outcomes(&self) -> usize {
        self.counts.len()
    }
}

impl fmt::Display for SimulationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} trials, {} distinct outcomes",
            self.trials,
            self.counts.len()
        )?;
        for (bits, count) in &self.counts {
            let s: String = bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
            writeln!(f, "  {s}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimulationResult {
        let mut counts = BTreeMap::new();
        counts.insert(vec![true, true], 60u32);
        counts.insert(vec![false, true], 30u32);
        counts.insert(vec![false, false], 10u32);
        SimulationResult::new(counts)
    }

    #[test]
    fn probabilities_sum_from_counts() {
        let r = sample();
        assert_eq!(r.trials(), 100);
        assert!((r.probability_of(&[true, true]) - 0.6).abs() < 1e-12);
        assert_eq!(r.probability_of(&[true, false]), 0.0);
    }

    #[test]
    fn most_frequent_is_the_mode() {
        let r = sample();
        assert_eq!(r.most_frequent(), Some([true, true].as_slice()));
        assert_eq!(r.distinct_outcomes(), 3);
    }

    #[test]
    fn bitpacked_counts_unpack_little_endian() {
        // 0b01 -> [true, false], 0b10 -> [false, true].
        let r = SimulationResult::from_bitpacked([(0b01u128, 3u32), (0b10, 7)], 2);
        assert_eq!(r.trials(), 10);
        assert_eq!(r.counts().get(&vec![true, false]), Some(&3));
        assert_eq!(r.counts().get(&vec![false, true]), Some(&7));
    }

    #[test]
    fn empty_result_behaves() {
        let r = SimulationResult::new(BTreeMap::new());
        assert_eq!(r.trials(), 0);
        assert_eq!(r.probability_of(&[true]), 0.0);
        assert_eq!(r.most_frequent(), None);
    }

    #[test]
    fn display_renders_bitstrings() {
        let text = sample().to_string();
        assert!(text.contains("11: 60"));
        assert!(text.contains("100 trials"));
    }
}
