//! Symplectic Clifford machinery for the engine's tier-0 fast path.
//!
//! A Clifford unitary maps Paulis to Paulis under conjugation, so an error
//! Pauli injected before an all-Clifford program suffix can be pushed past
//! the suffix with pure bit arithmetic — no state-vector pass at all. This
//! module provides the two pieces the tier-0 path needs:
//!
//! * [`classify`] decides whether a (possibly fused) 2×2 unitary is one of
//!   the **24 single-qubit Cliffords up to global phase** by exact matching
//!   against a generated table, and returns the element's *symplectic
//!   action* — where conjugation sends `X`, `Z` and `Y`, including the
//!   image signs. Tier-0 ignores the signs (it only ever propagates a
//!   single Pauli string applied to a pure state, so its phase is global
//!   and can never affect measurement statistics); the stabilizer-tableau
//!   backend consumes them for its phase column.
//! * [`SymplecticPauli`] is a one-row compact symplectic tableau: an
//!   n-qubit Pauli string (n ≤ 24) bit-packed as an X row and a Z row in
//!   one `u32` each, with conjugation rules for classified single-qubit
//!   Cliffords, CNOT and SWAP, and composition with freshly sampled error
//!   Paulis. Every operation is a handful of XOR/AND/shifts.
//!
//! Matching is *exact up to phase* with a tight tolerance
//! ([`MATCH_TOLERANCE`]): fused products of Clifford generators accumulate
//! only a few ulps of rounding, while the nearest non-Clifford gates of the
//! gate set (`T`, generic rotations) sit at entry distances of order 1.
//! A matrix within the tolerance of a Clifford but not exactly equal to it
//! perturbs amplitudes by at most ~1e-12 per op — far below the
//! statistical-equivalence tolerance tier-0 is fenced with.

use crate::complex::Complex;
use crate::gates::Matrix2;
use crate::noise::Pauli;
use std::sync::OnceLock;

/// Maximum per-entry deviation for a fused matrix to match a canonical
/// Clifford element (after normalizing the global phase).
pub const MATCH_TOLERANCE: f64 = 1e-12;

/// The symplectic action of a single-qubit Clifford: the images of `X`, `Z`
/// and `Y` under conjugation, as `(x-bit, z-bit)` pairs plus a sign bit per
/// generator (`true` means the image carries a `−1`).
///
/// Conjugation of an arbitrary Pauli is linear over its symplectic bits:
/// `U X^x Z^z U† ∝ (U X U†)^x (U Z U†)^z`, so the images of the two
/// generators determine the whole bit action. The signs are *not* linear in
/// the bits (the `Y` image sign absorbs an `i²` from reordering), so all
/// three are recorded; tier-0 Pauli propagation keeps ignoring them (a
/// single Pauli applied to a pure state has a global phase), while the
/// stabilizer-tableau backend uses them to update its phase column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clifford1Q {
    /// `(x, z)` bits of `U X U†`.
    pub x_image: (bool, bool),
    /// `(x, z)` bits of `U Z U†`.
    pub z_image: (bool, bool),
    /// Whether `U X U†` is the *negative* of the Pauli named by `x_image`.
    pub x_sign: bool,
    /// Whether `U Z U†` is the *negative* of the Pauli named by `z_image`.
    pub z_sign: bool,
    /// Whether `U Y U†` is the *negative* of the Pauli its bits
    /// (`x_image ⊕ z_image`) name.
    pub y_sign: bool,
}

impl Clifford1Q {
    /// The identity action.
    pub const IDENTITY: Clifford1Q = Clifford1Q {
        x_image: (true, false),
        z_image: (false, true),
        x_sign: false,
        z_sign: false,
        y_sign: false,
    };

    /// Conjugates the single-qubit Pauli `(x, z)` through this Clifford.
    #[inline]
    pub fn conjugate(&self, x: bool, z: bool) -> (bool, bool) {
        (
            (x & self.x_image.0) ^ (z & self.z_image.0),
            (x & self.x_image.1) ^ (z & self.z_image.1),
        )
    }

    /// Whether conjugating the single-qubit Pauli `(x, z)` (with the
    /// `(1, 1) = Y` convention) flips its sign.
    #[inline]
    pub fn sign_flip(&self, x: bool, z: bool) -> bool {
        (x & !z & self.x_sign) ^ (!x & z & self.z_sign) ^ (x & z & self.y_sign)
    }

    /// Whether this action moves the same Pauli bits as `other`, ignoring
    /// signs — the equivalence tier-0 cares about.
    pub fn same_bits(&self, other: &Clifford1Q) -> bool {
        self.x_image == other.x_image && self.z_image == other.z_image
    }
}

/// An n-qubit Pauli string (n ≤ 24) in compact symplectic form: bit `q` of
/// `x`/`z` is the X/Z component on qubit `q`. The phase is deliberately not
/// tracked (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymplecticPauli {
    /// Bit-packed X row.
    pub x: u32,
    /// Bit-packed Z row.
    pub z: u32,
}

impl SymplecticPauli {
    /// The identity string.
    pub const IDENTITY: SymplecticPauli = SymplecticPauli { x: 0, z: 0 };

    /// Whether the string is the identity (up to phase).
    pub fn is_identity(&self) -> bool {
        self.x == 0 && self.z == 0
    }

    /// The X bit on `qubit` (whether the string flips that qubit).
    #[inline]
    pub fn x_bit(&self, qubit: u8) -> bool {
        self.x >> qubit & 1 == 1
    }

    /// The single-qubit Pauli on `qubit`.
    pub fn pauli_on(&self, qubit: u8) -> Pauli {
        Pauli::from_symplectic(self.x_bit(qubit), self.z >> qubit & 1 == 1)
    }

    /// Composes a sampled single-qubit error Pauli onto the string
    /// (composition is XOR of symplectic bits, up to phase).
    #[inline]
    pub fn compose(&mut self, qubit: u8, pauli: Pauli) {
        let (x, z) = pauli.symplectic();
        self.x ^= u32::from(x) << qubit;
        self.z ^= u32::from(z) << qubit;
    }

    /// Conjugates the string through a classified single-qubit Clifford on
    /// `qubit`.
    #[inline]
    pub fn conjugate_1q(&mut self, qubit: u8, action: &Clifford1Q) {
        let x = self.x >> qubit & 1 == 1;
        let z = self.z >> qubit & 1 == 1;
        let (nx, nz) = action.conjugate(x, z);
        self.x = self.x & !(1 << qubit) | u32::from(nx) << qubit;
        self.z = self.z & !(1 << qubit) | u32::from(nz) << qubit;
    }

    /// Conjugates the string through a CNOT (`control`, `target`): X copies
    /// from control to target, Z copies from target to control.
    #[inline]
    pub fn conjugate_cnot(&mut self, control: u8, target: u8) {
        self.x ^= (self.x >> control & 1) << target;
        self.z ^= (self.z >> target & 1) << control;
    }

    /// Conjugates the string through a SWAP: the two qubits' bits exchange.
    #[inline]
    pub fn conjugate_swap(&mut self, a: u8, b: u8) {
        let xa = self.x >> a & 1;
        let xb = self.x >> b & 1;
        if xa != xb {
            self.x ^= 1 << a | 1 << b;
        }
        let za = self.z >> a & 1;
        let zb = self.z >> b & 1;
        if za != zb {
            self.z ^= 1 << a | 1 << b;
        }
    }

    /// Clears the Z component on `qubit` — used after a measurement
    /// collapse, where a Z on the measured qubit degenerates to a global
    /// phase.
    #[inline]
    pub fn clear_z(&mut self, qubit: u8) {
        self.z &= !(1u32 << qubit);
    }
}

/// One canonical single-qubit Clifford: its phase-normalized matrix and its
/// symplectic action.
struct CanonicalClifford {
    matrix: Matrix2,
    action: Clifford1Q,
}

/// The 24 single-qubit Cliffords (up to global phase), generated once as
/// the closure of `{H, S}`.
fn clifford_table() -> &'static [CanonicalClifford] {
    static TABLE: OnceLock<Vec<CanonicalClifford>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let h = crate::gates::single_qubit_matrix(nisq_ir::GateKind::H);
        let s = crate::gates::single_qubit_matrix(nisq_ir::GateKind::S);
        let mut table: Vec<CanonicalClifford> = vec![CanonicalClifford {
            matrix: normalize_phase(&[Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ONE]),
            action: Clifford1Q::IDENTITY,
        }];
        // Breadth-first closure under left-multiplication by the
        // generators; the group has exactly 24 elements mod phase.
        let mut frontier = 0usize;
        while frontier < table.len() {
            let current = table[frontier].matrix;
            frontier += 1;
            for generator in [&h, &s] {
                let product = normalize_phase(&matmul(generator, &current));
                if !table
                    .iter()
                    .any(|c| matrices_equal(&c.matrix, &product, MATCH_TOLERANCE))
                {
                    let action = conjugation_action(&product)
                        .expect("products of Clifford generators are Clifford");
                    table.push(CanonicalClifford {
                        matrix: product,
                        action,
                    });
                }
            }
        }
        assert_eq!(
            table.len(),
            24,
            "the single-qubit Clifford group mod phase has 24 elements"
        );
        table
    })
}

/// Classifies a 2×2 unitary as Clifford-or-not by exact matching (up to
/// global phase, within [`MATCH_TOLERANCE`]) against the 24 canonical
/// single-qubit Cliffords. Returns the element's symplectic action on a
/// match, `None` otherwise.
pub fn classify(m: &Matrix2) -> Option<Clifford1Q> {
    let normalized = normalize_phase(m);
    clifford_table()
        .iter()
        .find(|c| matrices_equal(&c.matrix, &normalized, MATCH_TOLERANCE))
        .map(|c| c.action)
}

/// Rescales a matrix by a unit phase so its largest-magnitude entry becomes
/// real and positive — a canonical representative of the matrix's
/// up-to-global-phase class. (Every unitary row has unit norm, so the
/// largest entry's magnitude is at least `1/√2`; phase extraction is
/// well-conditioned.)
fn normalize_phase(m: &Matrix2) -> Matrix2 {
    let mut pivot = m[0];
    for entry in &m[1..] {
        if entry.norm_sqr() > pivot.norm_sqr() {
            pivot = *entry;
        }
    }
    let magnitude = pivot.norm_sqr().sqrt();
    if magnitude == 0.0 {
        return *m;
    }
    // Multiply by conj(pivot)/|pivot|: rotates pivot onto the positive
    // real axis.
    let phase = Complex::new(pivot.re / magnitude, -pivot.im / magnitude);
    [m[0] * phase, m[1] * phase, m[2] * phase, m[3] * phase]
}

fn matrices_equal(a: &Matrix2, b: &Matrix2, tol: f64) -> bool {
    a.iter()
        .zip(b.iter())
        .all(|(x, y)| (x.re - y.re).abs() <= tol && (x.im - y.im).abs() <= tol)
}

/// Row-major 2×2 product `a * b`.
fn matmul(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    [
        a[0] * b[0] + a[1] * b[2],
        a[0] * b[1] + a[1] * b[3],
        a[2] * b[0] + a[3] * b[2],
        a[2] * b[1] + a[3] * b[3],
    ]
}

/// Derives the symplectic action of a unitary by conjugating `X`, `Z` and
/// `Y` and matching the images against `±X/±Y/±Z`: `None` when any image is
/// not a signed Pauli, i.e. the matrix is not Clifford. Conjugating a
/// Hermitian Pauli by a unitary yields a Hermitian operator, so the image
/// of a Pauli under a Clifford is *exactly* `±` another Pauli — the sign is
/// well-defined, with no residual phase freedom.
fn conjugation_action(m: &Matrix2) -> Option<Clifford1Q> {
    let x = [Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO];
    let y = [
        Complex::ZERO,
        Complex::new(0.0, -1.0),
        Complex::new(0.0, 1.0),
        Complex::ZERO,
    ];
    let z = [Complex::ONE, Complex::ZERO, Complex::ZERO, -Complex::ONE];
    let dagger = |u: &Matrix2| -> Matrix2 { [u[0].conj(), u[2].conj(), u[1].conj(), u[3].conj()] };
    let md = dagger(m);
    let image = |p: &Matrix2| -> Option<((bool, bool), bool)> {
        let conj = matmul(m, &matmul(p, &md));
        signed_pauli_of(&conj)
    };
    let (x_image, x_sign) = image(&x)?;
    let (z_image, z_sign) = image(&z)?;
    let (y_image, y_sign) = image(&y)?;
    debug_assert_eq!(
        y_image,
        (x_image.0 ^ z_image.0, x_image.1 ^ z_image.1),
        "the Y image bits are the XOR of the X and Z image bits"
    );
    Some(Clifford1Q {
        x_image,
        z_image,
        x_sign,
        z_sign,
        y_sign,
    })
}

/// Matches a matrix against `±X/±Y/±Z` *exactly* (no residual phase),
/// returning the symplectic bits `(x, z)` of the match and whether the
/// matrix is the negative of that Pauli.
fn signed_pauli_of(m: &Matrix2) -> Option<((bool, bool), bool)> {
    let tol = 1e-9;
    let diag = m[1].norm_sqr() < tol && m[2].norm_sqr() < tol;
    let anti = m[0].norm_sqr() < tol && m[3].norm_sqr() < tol;
    if diag {
        // ±I or ±Z: the diagonal entries agree (I) or oppose (Z), and must
        // be real for an exact signed-Pauli match.
        if m[0].im.abs() >= tol || m[3].im.abs() >= tol {
            return None;
        }
        let sum = m[0] + m[3];
        let diff = m[0] - m[3];
        if diff.norm_sqr() < tol {
            Some(((false, false), m[0].re < 0.0))
        } else if sum.norm_sqr() < tol {
            Some(((false, true), m[0].re < 0.0))
        } else {
            None
        }
    } else if anti {
        // ±X (real off-diagonals that agree) or ±Y (imaginary off-diagonals
        // that oppose; `+Y` has `−i` in the upper-right entry).
        let sum = m[1] + m[2];
        let diff = m[1] - m[2];
        if diff.norm_sqr() < tol && m[1].im.abs() < tol {
            Some(((true, false), m[1].re < 0.0))
        } else if sum.norm_sqr() < tol && m[1].re.abs() < tol {
            Some(((true, true), m[1].im > 0.0))
        } else {
            None
        }
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::single_qubit_matrix;
    use nisq_ir::GateKind;

    fn mm(a: &Matrix2, b: &Matrix2) -> Matrix2 {
        matmul(a, b)
    }

    #[test]
    fn generated_table_has_24_elements() {
        assert_eq!(clifford_table().len(), 24);
    }

    #[test]
    fn clifford_gates_classify_with_known_actions() {
        // H: X <-> Z.
        let h = classify(&single_qubit_matrix(GateKind::H)).expect("H is Clifford");
        assert_eq!(h.x_image, (false, true));
        assert_eq!(h.z_image, (true, false));
        // S: X -> Y, Z -> Z.
        let s = classify(&single_qubit_matrix(GateKind::S)).expect("S is Clifford");
        assert_eq!(s.x_image, (true, true));
        assert_eq!(s.z_image, (false, true));
        // Paulis act trivially up to sign: identity bit action, and the two
        // anticommuting generators pick up a minus.
        for (kind, x_sign, z_sign, y_sign) in [
            (GateKind::X, false, true, true),
            (GateKind::Y, true, true, false),
            (GateKind::Z, true, false, true),
        ] {
            let p = classify(&single_qubit_matrix(kind)).expect("Paulis are Clifford");
            assert!(p.same_bits(&Clifford1Q::IDENTITY), "{kind:?}");
            assert_eq!(
                (p.x_sign, p.z_sign, p.y_sign),
                (x_sign, z_sign, y_sign),
                "{kind:?}"
            );
        }
        // Sdg: X -> Y (sign dropped), Z -> Z.
        let sdg = classify(&single_qubit_matrix(GateKind::Sdg)).expect("Sdg is Clifford");
        assert_eq!(sdg.x_image, (true, true));
        assert_eq!(sdg.z_image, (false, true));
    }

    #[test]
    fn rotations_at_clifford_angles_classify_and_others_do_not() {
        use std::f64::consts::{FRAC_PI_2, PI};
        assert!(classify(&single_qubit_matrix(GateKind::Rz(FRAC_PI_2))).is_some());
        assert!(classify(&single_qubit_matrix(GateKind::Rx(PI))).is_some());
        assert!(classify(&single_qubit_matrix(GateKind::Ry(-FRAC_PI_2))).is_some());
        assert!(classify(&single_qubit_matrix(GateKind::T)).is_none());
        assert!(classify(&single_qubit_matrix(GateKind::Tdg)).is_none());
        assert!(classify(&single_qubit_matrix(GateKind::Rz(0.3))).is_none());
        assert!(classify(&single_qubit_matrix(GateKind::Rx(1e-6))).is_none());
    }

    #[test]
    fn fused_clifford_products_still_classify() {
        let h = single_qubit_matrix(GateKind::H);
        let s = single_qubit_matrix(GateKind::S);
        let x = single_qubit_matrix(GateKind::X);
        // HSH, SHSHS, products with Paulis — all stay in the group.
        for m in [
            mm(&h, &mm(&s, &h)),
            mm(&s, &mm(&h, &mm(&s, &mm(&h, &s)))),
            mm(&x, &mm(&h, &s)),
        ] {
            assert!(classify(&m).is_some(), "fused Clifford failed to match");
        }
        // ... but one T in the product breaks membership.
        let t = single_qubit_matrix(GateKind::T);
        assert!(classify(&mm(&h, &mm(&t, &h))).is_none());
    }

    #[test]
    fn classified_action_matches_textbook_identities() {
        // HXH = Z, HZH = X, S X S† = Y, S Z S† = Z — checked through the
        // conjugate() helper on symplectic bits.
        let h = classify(&single_qubit_matrix(GateKind::H)).unwrap();
        assert_eq!(h.conjugate(true, false), (false, true)); // X -> Z
        assert_eq!(h.conjugate(false, true), (true, false)); // Z -> X
        assert_eq!(h.conjugate(true, true), (true, true)); // Y -> ±Y
        let s = classify(&single_qubit_matrix(GateKind::S)).unwrap();
        assert_eq!(s.conjugate(true, false), (true, true)); // X -> Y
        assert_eq!(s.conjugate(false, true), (false, true)); // Z -> Z
    }

    #[test]
    fn symplectic_pauli_conjugation_rules() {
        // CNOT: X on control copies to target.
        let mut p = SymplecticPauli::IDENTITY;
        p.compose(0, Pauli::X);
        p.conjugate_cnot(0, 1);
        assert_eq!(p.pauli_on(0), Pauli::X);
        assert_eq!(p.pauli_on(1), Pauli::X);
        // CNOT: Z on target copies to control.
        let mut p = SymplecticPauli::IDENTITY;
        p.compose(1, Pauli::Z);
        p.conjugate_cnot(0, 1);
        assert_eq!(p.pauli_on(0), Pauli::Z);
        assert_eq!(p.pauli_on(1), Pauli::Z);
        // SWAP exchanges wires.
        let mut p = SymplecticPauli::IDENTITY;
        p.compose(0, Pauli::Y);
        p.conjugate_swap(0, 2);
        assert_eq!(p.pauli_on(0), Pauli::I);
        assert_eq!(p.pauli_on(2), Pauli::Y);
        // Composition is the Klein four-group per qubit.
        let mut p = SymplecticPauli::IDENTITY;
        p.compose(3, Pauli::X);
        p.compose(3, Pauli::Y);
        assert_eq!(p.pauli_on(3), Pauli::Z);
        p.compose(3, Pauli::Z);
        assert!(p.is_identity());
    }

    #[test]
    fn conjugation_matches_dense_matrix_conjugation() {
        // For every table element and every Pauli, the symplectic action
        // agrees with dense conjugation U P U†.
        let paulis = [
            (Pauli::X, single_qubit_matrix(GateKind::X)),
            (Pauli::Y, single_qubit_matrix(GateKind::Y)),
            (Pauli::Z, single_qubit_matrix(GateKind::Z)),
        ];
        for element in clifford_table() {
            for (pauli, matrix) in &paulis {
                let dagger: Matrix2 = [
                    element.matrix[0].conj(),
                    element.matrix[2].conj(),
                    element.matrix[1].conj(),
                    element.matrix[3].conj(),
                ];
                let conj = matmul(&element.matrix, &matmul(matrix, &dagger));
                let (expected_bits, expected_sign) =
                    signed_pauli_of(&conj).expect("Clifford conjugate is a signed Pauli");
                let (x, z) = pauli.symplectic();
                assert_eq!(element.action.conjugate(x, z), expected_bits);
                assert_eq!(element.action.sign_flip(x, z), expected_sign);
            }
        }
    }
}
