//! The pluggable simulation-backend seam.
//!
//! A lowered [`TrialProgram`](crate::TrialProgram) is a flat op stream; how
//! those ops act on quantum state is a backend concern. [`SimBackend`]
//! captures exactly the per-op hooks the replay walkers need — fused
//! single-qubit unitaries, CNOT, relabeling SWAP, error-Pauli injection,
//! mid-circuit measurement, terminal joint sampling, and checkpoint
//! save/restore — so the same generic walk drives every state
//! representation:
//!
//! * the dense split-complex [`StateVector`](crate::StateVector) (via
//!   [`TrialScratch`](crate::TrialScratch), the default backend: any gate
//!   set, at most 24 qubits), and
//! * the bit-packed stabilizer tableau
//!   ([`TableauState`](crate::tableau::TableauState): fully-Clifford
//!   programs, hundreds of qubits).
//!
//! Backend *selection* is automatic and per program: lowering classifies
//! every fused unitary against the single-qubit Clifford group and marks
//! the program [`BackendKind::Tableau`] when the whole program is Clifford,
//! [`BackendKind::Dense`] otherwise. No public caller names a backend; the
//! simulator dispatches on the program's kind (and
//! [`EngineOptions::exact`](crate::EngineOptions::exact) pins the dense
//! bit-exact path regardless).

use crate::gates::Matrix2;
use crate::noise::Pauli;
use crate::program::KrausTable;
use rand::Rng;

/// Which simulation backend serves a lowered program's trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Dense split-complex state vector: any gate set, at most 24 qubits.
    #[default]
    Dense,
    /// Bit-packed stabilizer tableau: fully-Clifford programs only, scales
    /// to hundreds of qubits with no 2^n memory term.
    Tableau,
}

impl BackendKind {
    /// Stable lower-case name used in reports ("dense" | "tableau").
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Dense => "dense",
            BackendKind::Tableau => "tableau",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The per-op state interface a replay walk drives.
///
/// Implementations must uphold the replay contracts the tiered engine's
/// bit-exactness rests on:
///
/// * `fuse_unitary` may defer materialization arbitrarily, but every
///   observable operation (`cnot`, `measure`, `terminal_sample`) must act
///   as if all pending unitaries on the involved qubits were applied first.
/// * `swap_relabel` is the *unitary part* of a SWAP — backends realize it
///   as pure relabeling (zero state passes); sampled SWAP errors arrive
///   separately via `inject_pauli` on the relabeled wires.
/// * RNG discipline: `measure` consumes exactly the draws its outcome
///   needs, `terminal_sample` returns *ideal* outcomes only — readout-flip
///   draws stay in the walker so every backend sees the same downstream
///   stream shape.
pub trait SimBackend {
    /// Resets to the all-zeros state with an identity wire labeling.
    fn reset_state(&mut self);

    /// Composes a (possibly fused) single-qubit unitary onto `qubit`.
    fn fuse_unitary(&mut self, qubit: u8, matrix: &Matrix2);

    /// Composes a sampled single-qubit error Pauli onto `qubit`.
    fn inject_pauli(&mut self, qubit: u8, pauli: Pauli);

    /// Applies a CNOT (materializing any pending unitaries on both wires).
    fn cnot(&mut self, control: u8, target: u8);

    /// Realizes the unitary part of a SWAP by relabeling the two wires.
    fn swap_relabel(&mut self, a: u8, b: u8);

    /// Applies a general (non-Pauli) Kraus channel to `qubit`, selecting
    /// the branch with the caller's uniform `u` against the state-dependent
    /// branch probabilities. Only the dense backend can serve this —
    /// lowering forces [`BackendKind::Dense`] for any program containing
    /// one, so the tableau implementation is unreachable.
    fn apply_kraus(&mut self, qubit: u8, table: &KrausTable, u: f64);

    /// Measures `qubit` in the computational basis, collapsing the state
    /// and returning the outcome (readout flips are the walker's job).
    fn measure<R: Rng + ?Sized>(&mut self, qubit: u8, rng: &mut R) -> bool;

    /// Jointly samples the trailing run of measurements from the
    /// uncollapsed state. Bit `i` of the result is the ideal outcome of
    /// `measures[i]` (readout flips are the walker's job; `measures` holds
    /// `(qubit, clbit, p_flip)` triples in program order, at most 128).
    fn terminal_sample<R: Rng + ?Sized>(&mut self, measures: &[(u8, u8, f64)], rng: &mut R)
        -> u128;

    /// Saves the current state into `checkpoint` (same width, no
    /// allocation on the hot path).
    fn save_into(&self, checkpoint: &mut Self);

    /// Restores the state from a checkpoint previously saved with
    /// [`SimBackend::save_into`].
    fn restore_from(&mut self, checkpoint: &Self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_names_are_stable() {
        // Report JSON and the bench harness serialize these names; they are
        // part of the nisq-sweep-report/v6 schema.
        assert_eq!(BackendKind::Dense.name(), "dense");
        assert_eq!(BackendKind::Tableau.to_string(), "tableau");
        assert_eq!(BackendKind::default(), BackendKind::Dense);
    }
}
