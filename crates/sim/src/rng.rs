//! Counter-based per-trial random streams.
//!
//! Every simulated trial owns an independent, deterministic RNG stream
//! derived from `(base seed, trial index)`. The original implementation
//! seeded a full xoshiro256++ `StdRng` per trial — five SplitMix64 rounds
//! plus 32 bytes of state initialization *before the first draw* — which is
//! pure overhead for short programs that only consume a handful of draws.
//!
//! [`TrialRng`] replaces that with a SplitMix64-style counter generator:
//! the `(base seed, trial)` pair is mixed once into a 64-bit stream key,
//! and draw `n` is the SplitMix64 finalizer applied to
//! `key + (n + 1) · γ` (γ the golden-ratio increment) — i.e. exactly the
//! SplitMix64 sequence seeded with `key`, produced with zero seeding work
//! and 16 bytes of state. Streams are a pure function of
//! `(base seed, trial)`, so results remain bit-for-bit reproducible per
//! seed and invariant under how trials are distributed over threads.

use rand::RngCore;

/// The golden-ratio increment of the SplitMix64 sequence.
const GOLDEN_GAMMA: u64 = 0x9e3779b97f4a7c15;

/// The SplitMix64 finalizer: a bijective avalanche mix of 64 bits.
#[inline]
pub(crate) fn splitmix64_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A counter-based deterministic generator for one simulation trial,
/// plugging into every sampler in this crate through [`rand::RngCore`].
///
/// # Example
///
/// ```
/// use nisq_sim::TrialRng;
/// use rand::Rng;
///
/// let mut a = TrialRng::new(42, 7);
/// let mut b = TrialRng::new(42, 7);
/// assert_eq!(a.gen_range(0..100u32), b.gen_range(0..100u32));
/// let mut other_trial = TrialRng::new(42, 8);
/// let _: f64 = other_trial.gen(); // an independent stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialRng {
    key: u64,
    counter: u64,
}

impl TrialRng {
    /// Creates the stream for `(base_seed, trial)`. One mixing round
    /// decorrelates nearby seeds and trial indices into unrelated keys.
    pub fn new(base_seed: u64, trial: u32) -> Self {
        TrialRng {
            key: splitmix64_mix(base_seed ^ u64::from(trial).wrapping_mul(GOLDEN_GAMMA)),
            counter: 0,
        }
    }
}

impl RngCore for TrialRng {
    fn next_u64(&mut self) -> u64 {
        let n = self.counter;
        self.counter = n.wrapping_add(1);
        splitmix64_mix(self.key.wrapping_add(n.wrapping_mul(GOLDEN_GAMMA)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_trial_same_stream() {
        let mut a = TrialRng::new(9, 3);
        let mut b = TrialRng::new(9, 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_trials_and_seeds_differ() {
        let mut a = TrialRng::new(9, 3);
        let mut b = TrialRng::new(9, 4);
        let mut c = TrialRng::new(10, 3);
        let draws = |r: &mut TrialRng| (0..8).map(|_| r.next_u64()).collect::<Vec<_>>();
        let (da, db, dc) = (draws(&mut a), draws(&mut b), draws(&mut c));
        assert_ne!(da, db);
        assert_ne!(da, dc);
        assert_ne!(db, dc);
    }

    #[test]
    fn stream_is_the_splitmix64_sequence_of_its_key() {
        // Counter form and stateful form of SplitMix64 must agree.
        let key = splitmix64_mix(0xdeadbeef ^ 5u64.wrapping_mul(GOLDEN_GAMMA));
        let mut rng = TrialRng::new(0xdeadbeef, 5);
        let mut state = key;
        for _ in 0..32 {
            let expected = splitmix64_mix(state);
            state = state.wrapping_add(GOLDEN_GAMMA);
            assert_eq!(rng.next_u64(), expected);
        }
    }

    #[test]
    fn uniform_draws_cover_the_unit_interval() {
        let mut rng = TrialRng::new(1, 0);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
