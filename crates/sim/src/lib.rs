//! # nisq-sim — noisy simulation of NISQ program executions
//!
//! The paper measures program success rates by running 8192 trials of each
//! compiled executable on the real IBMQ16 machine. That hardware is not
//! available offline, so this crate provides the substitute (see DESIGN.md):
//! a state-vector simulator that injects errors drawn from *the same
//! calibration data the compiler adapts to* —
//!
//! * two-qubit depolarizing noise after every hardware CNOT, with the
//!   per-edge CNOT error rate,
//! * single-qubit depolarizing noise after every single-qubit gate, with the
//!   per-qubit gate error rate,
//! * classical readout bit-flips with the per-qubit readout error rate,
//! * optional dephasing proportional to gate duration and the qubit's T2
//!   (decoherence plays a secondary role for these short benchmarks, exactly
//!   as the paper observes).
//!
//! Success rate is the fraction of trials whose measured bit-string equals
//! the classically-known correct answer, matching the paper's metric.
//!
//! # Example
//!
//! ```
//! use nisq_core::{Compiler, CompilerConfig};
//! use nisq_ir::Benchmark;
//! use nisq_machine::Machine;
//! use nisq_sim::{Simulator, SimulatorConfig};
//!
//! let machine = Machine::ibmq16_on_day(3, 0);
//! let compiled = Compiler::new(&machine, CompilerConfig::r_smt_star(0.5))
//!     .compile(&Benchmark::Bv4.circuit())
//!     .unwrap();
//! let simulator = Simulator::new(&machine, SimulatorConfig::with_trials(512, 7));
//! let success = simulator.success_rate(&compiled, &Benchmark::Bv4.expected_output());
//! assert!(success > 0.2, "success rate was {success}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod clifford;
mod complex;
pub mod engine;
pub mod gates;
pub mod noise;
pub mod program;
mod result;
mod rng;
mod simulator;
mod state;
pub mod tableau;

pub use backend::{BackendKind, SimBackend};
pub use clifford::{Clifford1Q, SymplecticPauli};
pub use complex::Complex;
pub use engine::{EngineOptions, TierCounts, TieredEngine};
pub use noise::NoiseModel;
pub use program::{KrausTable, TrialEvent, TrialOp, TrialProgram, TrialScratch};
pub use result::SimulationResult;
pub use rng::TrialRng;
pub use simulator::{Simulator, SimulatorConfig};
pub use state::StateVector;
pub use tableau::TableauState;
