use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components, sufficient for state-vector
/// simulation without pulling in an external numerics crate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A real number as a complex value.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^(i * angle)`.
    pub fn from_polar_unit(angle: f64) -> Self {
        Complex {
            re: angle.cos(),
            im: angle.sin(),
        }
    }

    /// Squared modulus `|z|^2`.
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplication by a real scalar.
    pub fn scale(&self, s: f64) -> Complex {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities_hold() {
        let z = Complex::new(3.0, -2.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(Complex::I * Complex::I, Complex::real(-1.0));
        assert_eq!(-z, Complex::new(-3.0, 2.0));
        assert_eq!(z - z, Complex::ZERO);
    }

    #[test]
    fn norm_and_conjugate() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!((z * z.conj()).re, 25.0);
    }

    #[test]
    fn polar_unit_lies_on_the_circle() {
        let z = Complex::from_polar_unit(std::f64::consts::FRAC_PI_3);
        assert!((z.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_shows_sign() {
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1-1i");
        assert_eq!(Complex::new(1.0, 1.0).to_string(), "1+1i");
    }
}
