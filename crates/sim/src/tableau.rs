//! Bit-packed stabilizer-tableau backend for fully-Clifford programs.
//!
//! The dense engine pays `2^n` amplitudes per state pass, which walls off
//! exactly the wide benchmarks (BV64, BV128, deep GHZ ladders) where the
//! paper's scaling story gets interesting. Every one of those circuits is
//! Clifford end to end, so an Aaronson–Gottesman tableau simulates them in
//! `O(n)` 64-bit words per gate with no exponential term anywhere.
//!
//! Two layers live here:
//!
//! * [`TableauState`]: the state representation — a `2n × 2n` binary
//!   symplectic matrix (destabilizer rows `0..n`, stabilizer rows `n..2n`)
//!   plus a phase column, stored **column-major**: per program wire one
//!   `x` and one `z` bit-column over all `2n` rows, packed into `u64`
//!   words. Single-qubit Cliffords and CNOTs are then word-parallel column
//!   ops touching `O(n/64)` words per wire, and a relabeling SWAP is a
//!   permutation update with zero data movement. It implements
//!   [`SimBackend`], so the generic replay walker drives it unchanged.
//! * [`TableauEngine`]: the per-program trial engine. One ideal pass over
//!   the ops computes every mid-measure's deterministic outcome and reduces
//!   the terminal state to an *affine sampler* (see below); one backward
//!   pass precomputes, for every noise site, the clbit-key perturbation an
//!   `X` or `Z` injected there produces. After that, an error-free trial
//!   costs a handful of coin flips, and an error trial adds one
//!   precomputed `u128` XOR per fired Pauli component — never a state
//!   pass, and never a per-trial tableau replay unless the program has a
//!   genuinely random mid-circuit measurement (then the engine falls back
//!   to full tableau replays, which are still polynomial).
//!
//! # The affine terminal sampler
//!
//! The computational-basis support of a stabilizer state is an affine
//! subspace `s0 ⊕ span(D)` with *uniform* probability on it, where `D` is
//! the set of X-parts of the stabilizer generators. Gaussian elimination on
//! the stabilizer rows' X-parts (phase-correct row multiplication) yields
//! `k` pivot rows — the directions `D` — and `n − k` pure-Z rows, each a
//! parity constraint `v · s = r` on the support; solving the constraints
//! with free bits at zero gives `s0`. Projecting `s0` and the directions
//! through the terminal measure map onto classical bits (then reducing the
//! projected directions to a GF(2) basis, which preserves uniformity over
//! the span) turns terminal sampling into `base ⊕ (random subset of the
//! basis)` — one coin flip per basis vector.
//!
//! # Error trials as precomputed XOR masks
//!
//! Every effect a Pauli error has on the outcome key is *linear over
//! GF(2)*: symplectic conjugation through Clifford gates is linear, an `X`
//! crossing a measurement flips exactly that clbit, a `Z` crossing one
//! dies (global phase), and `P|ψ⟩` at the terminal sample merely translates
//! the support of `|ψ⟩` by `P`'s X-mask — phases never touch measurement
//! statistics. So a single backward pass over the ops suffices to tabulate,
//! per noise site and wire, the final-key image of an `X` and of a `Z`
//! injected there ([`SiteMask`]). An error trial is then the error-free
//! sample XOR the masks of whatever fired — `O(1)` per fired Pauli instead
//! of an `O(ops)` propagation walk.
//!
//! # Exactness
//!
//! The tableau backend is *statistically equivalent* to the dense engine —
//! same outcome distribution for every `(program, noise)` — but not
//! bit-identical draw-for-draw, which is why the simulator gates it behind
//! the same statistical-equivalence flag as tier 0
//! ([`EngineOptions::pauli_prop`](crate::EngineOptions)); outcomes remain a
//! pure function of `(program, seed, trial)` and thread-count invariant.

use crate::backend::{BackendKind, SimBackend};
use crate::clifford::{classify, Clifford1Q};
use crate::engine::TierCounts;
use crate::gates::Matrix2;
use crate::noise::Pauli;
use crate::program::{TrialEvent, TrialOp, TrialProgram};
use crate::rng::TrialRng;
use rand::Rng;
use rustc_hash::FxHashMap;

/// Words per wide bit-row: 256 bits cover every compact qubit index (`u8`).
const ROW_WORDS: usize = 4;

#[inline]
fn wide_get(bits: &[u64; ROW_WORDS], q: u8) -> bool {
    bits[usize::from(q >> 6)] >> (q & 63) & 1 == 1
}

#[inline]
fn wide_toggle(bits: &mut [u64; ROW_WORDS], q: u8) {
    bits[usize::from(q >> 6)] ^= 1u64 << (q & 63);
}

/// Aaronson–Gottesman stabilizer tableau with the `(x, z) = (1, 1) ≡ Y`
/// convention, stored column-major and bit-packed (see the module docs).
///
/// Rows `0..n` are destabilizers, rows `n..2n` stabilizers; each row is a
/// signed Pauli `(−1)^r · P`. Program wires map to columns through a
/// relabeling permutation exactly like the dense scratch's slot map, so
/// SWAPs are free here too.
#[derive(Debug, Clone)]
pub struct TableauState {
    /// Number of qubits (columns).
    n: usize,
    /// `u64` words per bit-column (`ceil(2n / 64)`).
    words: usize,
    /// X bit-columns, `n × words`, column `c` at `x[c*words..][..words]`;
    /// bit `r` of a column is row `r`'s X component on that wire.
    x: Vec<u64>,
    /// Z bit-columns, same layout.
    z: Vec<u64>,
    /// Phase column over all `2n` rows (bit set = the row carries `−1`).
    phase: Vec<u64>,
    /// `perm[program qubit] = column`. Identity until a SWAP relabels.
    perm: Vec<u8>,
}

/// `i^k` contribution of multiplying single-qubit Paulis `(x1, z1)` (left
/// factor) onto `(x2, z2)` — the Aaronson–Gottesman `g` function under the
/// `(1, 1) ≡ Y` convention. Returns a value in `{-1, 0, 1}`.
#[inline]
fn phase_g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
    match (x1, z1) {
        (false, false) => 0,
        (true, true) => i32::from(z2) - i32::from(x2),
        (true, false) => {
            if z2 {
                if x2 {
                    1
                } else {
                    -1
                }
            } else {
                0
            }
        }
        (false, true) => {
            if x2 {
                if z2 {
                    -1
                } else {
                    1
                }
            } else {
                0
            }
        }
    }
}

impl TableauState {
    /// A tableau for `n` qubits in the `|0…0⟩` state.
    pub fn new(n: usize) -> Self {
        assert!(n <= 255, "compact qubit indices are u8");
        let words = (2 * n).div_ceil(64).max(1);
        let mut state = TableauState {
            n,
            words,
            x: vec![0; n * words],
            z: vec![0; n * words],
            phase: vec![0; words],
            perm: (0..n).map(|q| q as u8).collect(),
        };
        state.reset();
        state
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Resets to `|0…0⟩` (destabilizer `i` = `X_i`, stabilizer `n+i` =
    /// `Z_i`, all phases `+`) with an identity wire labeling.
    pub fn reset(&mut self) {
        self.x.fill(0);
        self.z.fill(0);
        self.phase.fill(0);
        for c in 0..self.n {
            self.set_x(c, c, true);
            self.set_z(c, self.n + c, true);
            self.perm[c] = c as u8;
        }
    }

    #[inline]
    fn col(&self, qubit: u8) -> usize {
        usize::from(self.perm[usize::from(qubit)])
    }

    #[inline]
    fn get_x(&self, c: usize, row: usize) -> bool {
        self.x[c * self.words + (row >> 6)] >> (row & 63) & 1 == 1
    }

    #[inline]
    fn get_z(&self, c: usize, row: usize) -> bool {
        self.z[c * self.words + (row >> 6)] >> (row & 63) & 1 == 1
    }

    #[inline]
    fn set_x(&mut self, c: usize, row: usize, bit: bool) {
        let w = &mut self.x[c * self.words + (row >> 6)];
        *w = *w & !(1u64 << (row & 63)) | u64::from(bit) << (row & 63);
    }

    #[inline]
    fn set_z(&mut self, c: usize, row: usize, bit: bool) {
        let w = &mut self.z[c * self.words + (row >> 6)];
        *w = *w & !(1u64 << (row & 63)) | u64::from(bit) << (row & 63);
    }

    #[inline]
    fn get_phase(&self, row: usize) -> bool {
        self.phase[row >> 6] >> (row & 63) & 1 == 1
    }

    #[inline]
    fn set_phase(&mut self, row: usize, bit: bool) {
        let w = &mut self.phase[row >> 6];
        *w = *w & !(1u64 << (row & 63)) | u64::from(bit) << (row & 63);
    }

    /// Applies a classified single-qubit Clifford to `qubit` — one
    /// word-parallel pass over the wire's two bit-columns: every row's
    /// `(x, z)` pair maps through the symplectic images, and its phase
    /// flips when the action's sign table says the row's Pauli picks up a
    /// `−1`.
    pub fn apply_clifford1q(&mut self, qubit: u8, action: &Clifford1Q) {
        let c = self.col(qubit);
        let base = c * self.words;
        for k in 0..self.words {
            let xw = self.x[base + k];
            let zw = self.z[base + k];
            let mut flip = 0u64;
            if action.x_sign {
                flip ^= xw & !zw;
            }
            if action.z_sign {
                flip ^= !xw & zw;
            }
            if action.y_sign {
                flip ^= xw & zw;
            }
            self.phase[k] ^= flip;
            let nx =
                (if action.x_image.0 { xw } else { 0 }) ^ (if action.z_image.0 { zw } else { 0 });
            let nz =
                (if action.x_image.1 { xw } else { 0 }) ^ (if action.z_image.1 { zw } else { 0 });
            self.x[base + k] = nx;
            self.z[base + k] = nz;
        }
    }

    /// Applies a CNOT — the standard Aaronson–Gottesman column update with
    /// the phase term `x_c z_t (x_t ⊕ z_c ⊕ 1)`, word-parallel.
    pub fn apply_cnot(&mut self, control: u8, target: u8) {
        let cc = self.col(control) * self.words;
        let ct = self.col(target) * self.words;
        for k in 0..self.words {
            let xc = self.x[cc + k];
            let zc = self.z[cc + k];
            let xt = self.x[ct + k];
            let zt = self.z[ct + k];
            self.phase[k] ^= xc & zt & !(xt ^ zc);
            self.x[ct + k] = xt ^ xc;
            self.z[cc + k] = zc ^ zt;
        }
    }

    /// Applies a Pauli to `qubit`: a pure sign update — every row that
    /// anticommutes with it on that wire flips phase.
    pub fn apply_pauli(&mut self, qubit: u8, pauli: Pauli) {
        let c = self.col(qubit) * self.words;
        for k in 0..self.words {
            let flip = match pauli {
                Pauli::I => return,
                Pauli::X => self.z[c + k],
                Pauli::Z => self.x[c + k],
                Pauli::Y => self.x[c + k] ^ self.z[c + k],
            };
            self.phase[k] ^= flip;
        }
    }

    /// Row multiplication `row_h ← row_i · row_h` with Aaronson–Gottesman
    /// phase arithmetic (the `i^k` exponent of the product must come out
    /// real). `O(n)` column-bit extractions.
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut k = 2 * (i32::from(self.get_phase(h)) + i32::from(self.get_phase(i)));
        for c in 0..self.n {
            k += phase_g(
                self.get_x(c, i),
                self.get_z(c, i),
                self.get_x(c, h),
                self.get_z(c, h),
            );
        }
        let k = k.rem_euclid(4);
        debug_assert!(k == 0 || k == 2, "rowsum phase came out imaginary");
        self.set_phase(h, k == 2);
        for c in 0..self.n {
            let x = self.get_x(c, h) ^ self.get_x(c, i);
            let z = self.get_z(c, h) ^ self.get_z(c, i);
            self.set_x(c, h, x);
            self.set_z(c, h, z);
        }
    }

    /// First stabilizer row with an X component on column `c`, if any —
    /// present iff measuring that wire is random.
    fn stabilizer_x_row(&self, c: usize) -> Option<usize> {
        (self.n..2 * self.n).find(|&r| self.get_x(c, r))
    }

    /// The outcome of measuring `qubit` when it is deterministic (`None`
    /// when the outcome is random). Read-only: a deterministic measurement
    /// never changes the state.
    pub fn deterministic_outcome(&self, qubit: u8) -> Option<bool> {
        let c = self.col(qubit);
        if self.stabilizer_x_row(c).is_some() {
            return None;
        }
        // Accumulate the product of the stabilizer partners of every
        // destabilizer with an X component on the wire (the AG scratch-row
        // procedure); the product is ±Z on the wire and its sign is the
        // outcome.
        let mut acc_x = vec![false; self.n];
        let mut acc_z = vec![false; self.n];
        let mut k = 0i32;
        for i in 0..self.n {
            if !self.get_x(c, i) {
                continue;
            }
            let r = self.n + i;
            k += 2 * i32::from(self.get_phase(r));
            for cc in 0..self.n {
                let x1 = self.get_x(cc, r);
                let z1 = self.get_z(cc, r);
                k += phase_g(x1, z1, acc_x[cc], acc_z[cc]);
                acc_x[cc] ^= x1;
                acc_z[cc] ^= z1;
            }
        }
        let k = k.rem_euclid(4);
        debug_assert!(k == 0 || k == 2, "deterministic outcome came out imaginary");
        Some(k == 2)
    }

    /// Measures `qubit` in the computational basis, collapsing the state on
    /// the random branch (one 50/50 draw) and consuming no randomness on
    /// the deterministic branch.
    pub fn measure<R: Rng + ?Sized>(&mut self, qubit: u8, rng: &mut R) -> bool {
        let c = self.col(qubit);
        match self.stabilizer_x_row(c) {
            Some(p) => {
                // Random: multiply the anticommuting generator into every
                // other row carrying an X on the wire, then replace it by
                // ±Z with a fresh coin. `rowsum(i, p)` only touches row
                // `i`, so the in-order scan matches the precollected set.
                for i in 0..2 * self.n {
                    if i != p && self.get_x(c, i) {
                        self.rowsum(i, p);
                    }
                }
                let outcome = rng.gen_bool(0.5);
                let d = p - self.n;
                for cc in 0..self.n {
                    let x = self.get_x(cc, p);
                    let z = self.get_z(cc, p);
                    self.set_x(cc, d, x);
                    self.set_z(cc, d, z);
                    self.set_x(cc, p, false);
                    self.set_z(cc, p, false);
                }
                self.set_phase(d, self.get_phase(p));
                self.set_z(c, p, true);
                self.set_phase(p, outcome);
                outcome
            }
            None => self
                .deterministic_outcome(qubit)
                .expect("no stabilizer X component means deterministic"),
        }
    }
}

/// The stabilizer-tableau backend: drives the same generic replay walk as
/// the dense scratch. Only fully-Clifford programs ever reach it, so
/// `fuse_unitary` classifies each (already fused) matrix and applies its
/// symplectic action.
impl SimBackend for TableauState {
    fn reset_state(&mut self) {
        self.reset();
    }

    fn fuse_unitary(&mut self, qubit: u8, matrix: &Matrix2) {
        let action =
            classify(matrix).expect("the tableau backend only receives Clifford unitaries");
        self.apply_clifford1q(qubit, &action);
    }

    fn inject_pauli(&mut self, qubit: u8, pauli: Pauli) {
        self.apply_pauli(qubit, pauli);
    }

    fn cnot(&mut self, control: u8, target: u8) {
        self.apply_cnot(control, target);
    }

    fn swap_relabel(&mut self, a: u8, b: u8) {
        self.perm.swap(usize::from(a), usize::from(b));
    }

    fn apply_kraus(&mut self, _qubit: u8, _table: &crate::program::KrausTable, _u: f64) {
        unreachable!("Kraus channels force the dense backend at lowering")
    }

    fn measure<R: Rng + ?Sized>(&mut self, qubit: u8, rng: &mut R) -> bool {
        TableauState::measure(self, qubit, rng)
    }

    fn terminal_sample<R: Rng + ?Sized>(
        &mut self,
        measures: &[(u8, u8, f64)],
        rng: &mut R,
    ) -> u128 {
        // Measuring the wires one at a time is the joint sample, and the
        // state is never used afterwards, so the collapses are free.
        let mut ideal = 0u128;
        for (i, &(qubit, _, _)) in measures.iter().enumerate() {
            if TableauState::measure(self, qubit, rng) {
                ideal |= 1u128 << i;
            }
        }
        ideal
    }

    fn save_into(&self, checkpoint: &mut Self) {
        assert_eq!(self.n, checkpoint.n, "checkpoint width mismatch");
        checkpoint.x.copy_from_slice(&self.x);
        checkpoint.z.copy_from_slice(&self.z);
        checkpoint.phase.copy_from_slice(&self.phase);
        checkpoint.perm.copy_from_slice(&self.perm);
    }

    fn restore_from(&mut self, checkpoint: &Self) {
        checkpoint.save_into(self);
    }
}

/// One extracted stabilizer generator in row-major, program-qubit-indexed
/// form (bit `q` of `x`/`z` is the component on program qubit `q`), used by
/// the affine-sampler Gaussian elimination.
#[derive(Debug, Clone, Copy, Default)]
struct AffineRow {
    x: [u64; ROW_WORDS],
    z: [u64; ROW_WORDS],
    r: bool,
}

impl AffineRow {
    /// `self ← other · self` with phase arithmetic (both operands are
    /// commuting stabilizer-group elements, so the product is real).
    fn mul_by(&mut self, other: &AffineRow) {
        let mut k = 2 * (i32::from(self.r) + i32::from(other.r));
        for w in 0..ROW_WORDS {
            let mut live = other.x[w] | other.z[w];
            while live != 0 {
                let b = live.trailing_zeros();
                live &= live - 1;
                k += phase_g(
                    other.x[w] >> b & 1 == 1,
                    other.z[w] >> b & 1 == 1,
                    self.x[w] >> b & 1 == 1,
                    self.z[w] >> b & 1 == 1,
                );
            }
        }
        let k = k.rem_euclid(4);
        debug_assert!(k == 0 || k == 2, "stabilizer product came out imaginary");
        self.r = k == 2;
        for w in 0..ROW_WORDS {
            self.x[w] ^= other.x[w];
            self.z[w] ^= other.z[w];
        }
    }
}

/// One mid-program measurement of a fully-Clifford program: its outcome on
/// the ideal path is deterministic (that is what makes the fast path
/// possible), so the whole point is precomputed.
#[derive(Debug, Clone, Copy)]
struct MidMeasure {
    /// Classical bit recorded.
    clbit: u8,
    /// Readout flip probability.
    p_flip: f64,
    /// The deterministic ideal outcome.
    outcome: bool,
}

/// The precomputed affine sampler of the terminal state (module docs).
#[derive(Debug, Clone)]
struct TerminalAffine {
    /// Clbit key of the base support point `s0` (flips not applied).
    base_key: u128,
    /// Independent clbit-space direction masks: XOR-ing a uniformly random
    /// subset into `base_key` samples the ideal terminal distribution.
    directions: Vec<u128>,
    /// `(qubit, clbit)` of every folded measure, deduplicated — how an
    /// error trial's X-mask projects onto the clbit key.
    bit_map: Vec<(u8, u8)>,
    /// `(clbit, p_flip)` of every folded measure with readout noise, in
    /// program order.
    flips: Vec<(u8, f64)>,
}

/// Per-noise-site error masks (module docs, "error trials"): the clbit-key
/// perturbation caused by each single-Pauli component a site can inject.
/// One-wire sites (gate noise) use only the `a*` pair; two-wire sites
/// (CNOT noise: control/target, SWAP residuals: a/b) use both.
#[derive(Debug, Clone, Copy, Default)]
struct SiteMask {
    ax: u128,
    az: u128,
    bx: u128,
    bz: u128,
}

/// How the engine serves trials.
#[derive(Debug)]
enum Mode {
    /// Every mid-measure is deterministic (and the terminal clbit map is
    /// XOR-safe): trials are served by precomputed outcomes, the affine
    /// sampler and per-site error masks — no per-trial state at all.
    Fast {
        mids: Vec<MidMeasure>,
        terminal: Option<TerminalAffine>,
        masks: Vec<SiteMask>,
    },
    /// A mid-measure came out random (or the clbit map aliases qubits):
    /// every trial replays in full on a tableau via the generic walker.
    /// Still polynomial, just not constant-time per trial.
    PerTrialReplay,
}

/// A fully-Clifford [`TrialProgram`] analyzed for tableau execution: one
/// ideal tableau pass at construction, then near-constant work per trial.
/// The chunk interface mirrors [`TieredEngine`](crate::TieredEngine) so the
/// simulator drives either engine through the same partition.
#[derive(Debug)]
pub(crate) struct TableauEngine<'p> {
    program: &'p TrialProgram,
    mode: Mode,
}

impl<'p> TableauEngine<'p> {
    /// Analyzes `program` (which must be fully Clifford: its
    /// [`backend_kind`](TrialProgram::backend_kind) is `Tableau`).
    pub fn new(program: &'p TrialProgram) -> Self {
        let ops = program.ops();
        let terminal_op = match ops.last() {
            Some(TrialOp::TerminalSample { .. }) => ops.len() - 1,
            _ => ops.len(),
        };

        let mut tab = TableauState::new(program.num_qubits());
        let mut mids = Vec::new();
        for (i, op) in ops[..terminal_op].iter().enumerate() {
            match *op {
                TrialOp::Unitary { qubit, .. } => {
                    let action = program
                        .clifford_action(i)
                        .expect("tableau programs are fully Clifford");
                    tab.apply_clifford1q(qubit, &action);
                }
                TrialOp::Cnot { control, target } => tab.apply_cnot(control, target),
                TrialOp::Swap { a, b, .. } => tab.swap_relabel(a, b),
                TrialOp::GateNoise { .. }
                | TrialOp::CnotNoise { .. }
                | TrialOp::ChannelNoise { .. }
                | TrialOp::ChannelNoise2 { .. } => {}
                TrialOp::KrausChannel { .. } => {
                    unreachable!("Kraus channels force the dense backend at lowering")
                }
                TrialOp::Measure {
                    qubit,
                    clbit,
                    p_flip,
                } => match tab.deterministic_outcome(qubit) {
                    Some(outcome) => mids.push(MidMeasure {
                        clbit,
                        p_flip,
                        outcome,
                    }),
                    None => {
                        return TableauEngine {
                            program,
                            mode: Mode::PerTrialReplay,
                        }
                    }
                },
                TrialOp::TerminalSample { .. } => {
                    unreachable!("a terminal sample is always the last op")
                }
            }
        }

        let terminal = match ops.get(terminal_op) {
            Some(TrialOp::TerminalSample { measures }) => {
                match build_affine(&tab, measures, program.num_qubits()) {
                    Some(affine) => Some(affine),
                    // Aliased clbits (two qubits feeding one bit) make the
                    // projection non-linear; take the exact slow path.
                    None => {
                        return TableauEngine {
                            program,
                            mode: Mode::PerTrialReplay,
                        }
                    }
                }
            }
            _ => None,
        };

        let masks = build_site_masks(program, terminal.as_ref());
        TableauEngine {
            program,
            mode: Mode::Fast {
                mids,
                terminal,
                masks,
            },
        }
    }

    /// Simulates trials `[start, end)` of the stream derived from `seed`,
    /// accumulating bit-packed outcome counts and tier occupancy — the
    /// tableau counterpart of [`TieredEngine::run_chunk`](crate::TieredEngine::run_chunk).
    /// Error-free trials count as `error_free`, propagated error trials as
    /// `pauli_prop`, and slow-path replays as `full_replay`.
    pub fn run_chunk(
        &self,
        seed: u64,
        start: u32,
        end: u32,
        counts: &mut FxHashMap<u128, u32>,
        tiers: &mut TierCounts,
    ) {
        tiers.backend = BackendKind::Tableau;
        let program = self.program;
        let mut draw: Vec<TrialEvent> = Vec::with_capacity(program.noise_sites().len());
        match &self.mode {
            Mode::PerTrialReplay => {
                let mut tab = TableauState::new(program.num_qubits());
                for t in start..end {
                    let mut rng = TrialRng::new(seed, t);
                    let _ = program.pre_sample(&mut draw, &mut rng);
                    tab.reset();
                    let key = program.replay_from(&mut tab, 0, &draw, &mut rng);
                    *counts.entry(key).or_insert(0) += 1;
                    tiers.full_replay += 1;
                }
            }
            Mode::Fast {
                mids,
                terminal,
                masks,
            } => {
                for t in start..end {
                    let mut rng = TrialRng::new(seed, t);
                    let key = match program.pre_sample(&mut draw, &mut rng) {
                        None => {
                            tiers.error_free += 1;
                            self.error_free_trial(mids, terminal.as_ref(), &mut rng)
                        }
                        Some(s) => {
                            tiers.pauli_prop += 1;
                            let delta = error_delta(s as usize, &draw, masks);
                            self.error_free_trial(mids, terminal.as_ref(), &mut rng) ^ delta
                        }
                    };
                    *counts.entry(key).or_insert(0) += 1;
                }
            }
        }
    }

    /// An error-free trial: precomputed mid-measure outcomes (plus their
    /// readout-flip draws, in op order) and one affine terminal sample.
    fn error_free_trial<R: Rng + ?Sized>(
        &self,
        mids: &[MidMeasure],
        terminal: Option<&TerminalAffine>,
        rng: &mut R,
    ) -> u128 {
        let mut clbits = 0u128;
        for m in mids {
            let mut bit = m.outcome;
            if m.p_flip > 0.0 && rng.gen_bool(m.p_flip) {
                bit = !bit;
            }
            if bit {
                clbits |= 1u128 << m.clbit;
            }
        }
        if let Some(t) = terminal {
            clbits |= sample_affine(t, rng);
        }
        clbits
    }
}

/// The key perturbation of one error draw: XOR of the fired Pauli
/// components' precomputed site masks. Consumes no randomness, so an error
/// trial is draw-for-draw identical to an error-free one — `error_delta`
/// then shifts its key.
fn error_delta(first_site: usize, events: &[TrialEvent], masks: &[SiteMask]) -> u128 {
    let mut delta = 0u128;
    for (event, mask) in events[first_site..].iter().zip(&masks[first_site..]) {
        match *event {
            TrialEvent::Clean => {}
            TrialEvent::Gate(p) => {
                let (x, z) = p.symplectic();
                if x {
                    delta ^= mask.ax;
                }
                if z {
                    delta ^= mask.az;
                }
            }
            TrialEvent::Cnot(pa, pb) | TrialEvent::Swap(pa, pb) => {
                let (x, z) = pa.symplectic();
                if x {
                    delta ^= mask.ax;
                }
                if z {
                    delta ^= mask.az;
                }
                let (x, z) = pb.symplectic();
                if x {
                    delta ^= mask.bx;
                }
                if z {
                    delta ^= mask.bz;
                }
            }
        }
    }
    delta
}

/// Tabulates every noise site's [`SiteMask`] with one backward pass over
/// the ops, maintaining per wire the final-key image of an `X` / `Z`
/// inserted at the current program point (module docs, "error trials").
fn build_site_masks(program: &TrialProgram, terminal: Option<&TerminalAffine>) -> Vec<SiteMask> {
    let n = program.num_qubits();
    let mut mask_x = vec![0u128; n];
    let mut mask_z = vec![0u128; n];
    let mut masks = vec![SiteMask::default(); program.noise_sites().len()];
    let mut site = masks.len();
    for (i, op) in program.ops().iter().enumerate().rev() {
        match *op {
            TrialOp::TerminalSample { .. } => {
                let t = terminal.expect("terminal plan built from the terminal op");
                // An X on wire `q` translates the support, flipping the
                // sampled bit on q's (deduplicated) clbit; a Z is phase.
                for &(q, c) in &t.bit_map {
                    mask_x[usize::from(q)] ^= 1u128 << c;
                }
            }
            TrialOp::Measure { qubit, clbit, .. } => {
                // An X crossing the measurement flips its clbit and
                // persists onto the post-measure state; a Z dies there.
                let q = usize::from(qubit);
                mask_x[q] ^= 1u128 << clbit;
                mask_z[q] = 0;
            }
            TrialOp::Unitary { qubit, .. } => {
                let action = program
                    .clifford_action(i)
                    .expect("tableau programs are fully Clifford");
                // P before U equals (U P U†) after U; signs don't matter.
                let q = usize::from(qubit);
                let (xx, xz) = action.conjugate(true, false);
                let (zx, zz) = action.conjugate(false, true);
                let nx = (if xx { mask_x[q] } else { 0 }) ^ (if xz { mask_z[q] } else { 0 });
                let nz = (if zx { mask_x[q] } else { 0 }) ^ (if zz { mask_z[q] } else { 0 });
                mask_x[q] = nx;
                mask_z[q] = nz;
            }
            TrialOp::Cnot { control, target } => {
                // X_c ↦ X_c X_t and Z_t ↦ Z_c Z_t; X_t, Z_c are fixed.
                mask_x[usize::from(control)] ^= mask_x[usize::from(target)];
                mask_z[usize::from(target)] ^= mask_z[usize::from(control)];
            }
            TrialOp::Swap { a, b, ref noise } => {
                // Residual Paulis fire *after* the swap, so the site
                // records the post-swap masks; only then does the wire
                // relabeling move them.
                if noise.is_some() {
                    site -= 1;
                    masks[site] = SiteMask {
                        ax: mask_x[usize::from(a)],
                        az: mask_z[usize::from(a)],
                        bx: mask_x[usize::from(b)],
                        bz: mask_z[usize::from(b)],
                    };
                }
                mask_x.swap(usize::from(a), usize::from(b));
                mask_z.swap(usize::from(a), usize::from(b));
            }
            TrialOp::GateNoise { qubit, .. } | TrialOp::ChannelNoise { qubit, .. } => {
                site -= 1;
                masks[site] = SiteMask {
                    ax: mask_x[usize::from(qubit)],
                    az: mask_z[usize::from(qubit)],
                    bx: 0,
                    bz: 0,
                };
            }
            TrialOp::CnotNoise {
                control, target, ..
            } => {
                site -= 1;
                masks[site] = SiteMask {
                    ax: mask_x[usize::from(control)],
                    az: mask_z[usize::from(control)],
                    bx: mask_x[usize::from(target)],
                    bz: mask_z[usize::from(target)],
                };
            }
            TrialOp::ChannelNoise2 { a, b, .. } => {
                site -= 1;
                masks[site] = SiteMask {
                    ax: mask_x[usize::from(a)],
                    az: mask_z[usize::from(a)],
                    bx: mask_x[usize::from(b)],
                    bz: mask_z[usize::from(b)],
                };
            }
            TrialOp::KrausChannel { .. } => {
                unreachable!("Kraus channels force the dense backend at lowering")
            }
        }
    }
    debug_assert_eq!(site, 0, "every noise site visited");
    masks
}

/// Draws one terminal outcome key: `base ⊕ (random subset of the
/// direction basis)`, then the readout-flip gates in program order.
fn sample_affine<R: Rng + ?Sized>(t: &TerminalAffine, rng: &mut R) -> u128 {
    let mut key = t.base_key;
    for &d in &t.directions {
        if rng.gen_bool(0.5) {
            key ^= d;
        }
    }
    for &(clbit, p_flip) in &t.flips {
        if rng.gen_bool(p_flip) {
            key ^= 1u128 << clbit;
        }
    }
    key
}

/// Projects a program-qubit-space bit mask onto the clbit key through a
/// deduplicated `(qubit, clbit)` map.
fn project(mask: &[u64; ROW_WORDS], bit_map: &[(u8, u8)]) -> u128 {
    let mut key = 0u128;
    for &(q, c) in bit_map {
        if wide_get(mask, q) {
            key ^= 1u128 << c;
        }
    }
    key
}

/// Reduces the terminal state to the affine sampler (module docs). Returns
/// `None` when the clbit map aliases two qubits onto one bit — the XOR
/// projection would be unsound, so the engine falls back to per-trial
/// replay.
fn build_affine(
    tab: &TableauState,
    measures: &[(u8, u8, f64)],
    n: usize,
) -> Option<TerminalAffine> {
    // Deduplicate the measure map: a re-measured wire contributes one
    // projection term (XOR of a duplicate would cancel it), and two
    // *different* wires feeding one clbit break linearity entirely.
    let mut owner = [u8::MAX; 128];
    let mut bit_map: Vec<(u8, u8)> = Vec::with_capacity(measures.len());
    for &(q, c, _) in measures {
        let slot = &mut owner[usize::from(c)];
        if *slot == u8::MAX {
            *slot = q;
            bit_map.push((q, c));
        } else if *slot != q {
            return None;
        }
    }

    // Extract the stabilizer generators into row-major, program-qubit-
    // indexed form (undoing the relabeling permutation).
    let mut rows: Vec<AffineRow> = (n..2 * n)
        .map(|r| {
            let mut row = AffineRow {
                r: tab.get_phase(r),
                ..AffineRow::default()
            };
            for q in 0..n {
                let c = tab.col(q as u8);
                if tab.get_x(c, r) {
                    wide_toggle(&mut row.x, q as u8);
                }
                if tab.get_z(c, r) {
                    wide_toggle(&mut row.z, q as u8);
                }
            }
            row
        })
        .collect();

    // Gaussian elimination on the X-parts: pivot rows become the support
    // directions, the rest degenerate to pure-Z parity constraints.
    let mut pivot_rows = 0usize;
    for q in 0..n {
        let q8 = q as u8;
        let Some(j) = (pivot_rows..rows.len()).find(|&j| wide_get(&rows[j].x, q8)) else {
            continue;
        };
        rows.swap(pivot_rows, j);
        let pivot = rows[pivot_rows];
        for (k, row) in rows.iter_mut().enumerate() {
            if k != pivot_rows && wide_get(&row.x, q8) {
                row.mul_by(&pivot);
            }
        }
        pivot_rows += 1;
    }

    // Solve the pure-Z constraints `v · s = r` for a base support point,
    // free bits at zero. Run the RREF to completion *before* reading any
    // phase: a row's `r` keeps changing while later pivot columns are being
    // eliminated from it.
    let constraints = &mut rows[pivot_rows..];
    let mut pivot_col = vec![u8::MAX; constraints.len()];
    let mut crow = 0usize;
    for q in 0..n {
        let q8 = q as u8;
        let Some(j) = (crow..constraints.len()).find(|&j| wide_get(&constraints[j].z, q8)) else {
            continue;
        };
        constraints.swap(crow, j);
        let pivot_z = constraints[crow].z;
        let pivot_r = constraints[crow].r;
        for (k, row) in constraints.iter_mut().enumerate() {
            if k != crow && wide_get(&row.z, q8) {
                for (zw, &pw) in row.z.iter_mut().zip(pivot_z.iter()) {
                    *zw ^= pw;
                }
                row.r ^= pivot_r;
            }
        }
        pivot_col[crow] = q8;
        crow += 1;
    }
    let mut s0 = [0u64; ROW_WORDS];
    for (j, row) in constraints[..crow].iter().enumerate() {
        if row.r {
            wide_toggle(&mut s0, pivot_col[j]);
        }
    }
    debug_assert!(
        constraints[crow..].iter().all(|row| !row.r),
        "inconsistent stabilizer constraints"
    );

    // Project the directions onto clbit space and reduce them to an
    // independent GF(2) basis (uniform over the span is preserved for any
    // generating set, so coin-per-basis-vector sampling stays uniform).
    let mut slots = [0u128; 128];
    for row in &rows[..pivot_rows] {
        let mut d = project(&row.x, &bit_map);
        while d != 0 {
            let lead = 127 - d.leading_zeros() as usize;
            if slots[lead] == 0 {
                slots[lead] = d;
                break;
            }
            d ^= slots[lead];
        }
    }
    let directions: Vec<u128> = slots.iter().copied().filter(|&m| m != 0).collect();

    let flips = measures
        .iter()
        .filter(|&&(_, _, p_flip)| p_flip > 0.0)
        .map(|&(_, clbit, p_flip)| (clbit, p_flip))
        .collect();

    Some(TerminalAffine {
        base_key: project(&s0, &bit_map),
        directions,
        bit_map,
        flips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::single_qubit_matrix;
    use nisq_ir::GateKind;

    fn action_of(kind: GateKind) -> Clifford1Q {
        classify(&single_qubit_matrix(kind)).expect("Clifford gate")
    }

    #[test]
    fn fresh_state_measures_all_zeros_deterministically() {
        let tab = TableauState::new(5);
        for q in 0..5 {
            assert_eq!(tab.deterministic_outcome(q), Some(false));
        }
    }

    #[test]
    fn x_flips_a_deterministic_outcome() {
        let mut tab = TableauState::new(3);
        tab.apply_clifford1q(1, &action_of(GateKind::X));
        assert_eq!(tab.deterministic_outcome(0), Some(false));
        assert_eq!(tab.deterministic_outcome(1), Some(true));
        assert_eq!(tab.deterministic_outcome(2), Some(false));
    }

    #[test]
    fn hadamard_makes_the_outcome_random_and_collapse_sticks() {
        let mut tab = TableauState::new(2);
        tab.apply_clifford1q(0, &action_of(GateKind::H));
        assert_eq!(tab.deterministic_outcome(0), None);
        let mut rng = TrialRng::new(7, 0);
        let outcome = tab.measure(0, &mut rng);
        // After the collapse the wire is classical again.
        assert_eq!(tab.deterministic_outcome(0), Some(outcome));
    }

    #[test]
    fn ghz_outcomes_are_perfectly_correlated() {
        // H(0); CNOT(0,1); CNOT(1,2): terminal outcomes are 000 or 111.
        for trial in 0..32 {
            let mut tab = TableauState::new(3);
            tab.apply_clifford1q(0, &action_of(GateKind::H));
            tab.apply_cnot(0, 1);
            tab.apply_cnot(1, 2);
            let mut rng = TrialRng::new(11, trial);
            let measures = [(0u8, 0u8, 0.0), (1, 1, 0.0), (2, 2, 0.0)];
            let ideal = SimBackend::terminal_sample(&mut tab, &measures, &mut rng);
            assert!(ideal == 0 || ideal == 0b111, "got {ideal:b}");
        }
    }

    #[test]
    fn s_gate_phase_tracking_matches_y_convention() {
        // S X S† = Y, S Y S† = −X: prepare |+⟩, apply S twice (= Z), and
        // the wire must measure deterministically in X-basis terms — here
        // verified through the stabilizer phases: Z|+⟩ = |−⟩, so H then Z
        // then H equals X, flipping the outcome.
        let mut tab = TableauState::new(1);
        let h = action_of(GateKind::H);
        let s = action_of(GateKind::S);
        tab.apply_clifford1q(0, &h);
        tab.apply_clifford1q(0, &s);
        tab.apply_clifford1q(0, &s);
        tab.apply_clifford1q(0, &h);
        assert_eq!(tab.deterministic_outcome(0), Some(true));
    }

    #[test]
    fn pauli_injection_flips_support() {
        let mut tab = TableauState::new(2);
        tab.apply_pauli(0, Pauli::X);
        assert_eq!(tab.deterministic_outcome(0), Some(true));
        tab.apply_pauli(0, Pauli::Y);
        assert_eq!(tab.deterministic_outcome(0), Some(false));
        // Z never moves the support.
        tab.apply_pauli(1, Pauli::Z);
        assert_eq!(tab.deterministic_outcome(1), Some(false));
    }

    #[test]
    fn relabeling_swap_moves_the_wire() {
        let mut tab = TableauState::new(2);
        tab.apply_clifford1q(0, &action_of(GateKind::X));
        tab.swap_relabel(0, 1);
        assert_eq!(tab.deterministic_outcome(0), Some(false));
        assert_eq!(tab.deterministic_outcome(1), Some(true));
    }

    #[test]
    fn checkpoint_roundtrip_preserves_state() {
        let mut tab = TableauState::new(4);
        tab.apply_clifford1q(0, &action_of(GateKind::H));
        tab.apply_cnot(0, 2);
        tab.swap_relabel(1, 3);
        let mut saved = TableauState::new(4);
        tab.save_into(&mut saved);
        let mut rng = TrialRng::new(3, 1);
        let outcome = tab.measure(0, &mut rng);
        assert_eq!(tab.deterministic_outcome(2), Some(outcome));
        tab.restore_from(&saved);
        assert_eq!(tab.deterministic_outcome(2), None);
    }

    #[test]
    fn tableau_scales_past_the_dense_wall() {
        // 132 qubits — far beyond any 2^n representation. A GHZ ladder
        // across all wires still samples in microseconds.
        let n = 132;
        let mut tab = TableauState::new(n);
        tab.apply_clifford1q(0, &classify(&single_qubit_matrix(GateKind::H)).unwrap());
        for q in 0..(n - 1) as u8 {
            tab.apply_cnot(q, q + 1);
        }
        // Classical keys cap at 128 bits; measure a 120-wire subset.
        let measures: Vec<(u8, u8, f64)> = (0..120u8).map(|q| (q, q, 0.0)).collect();
        let mut rng = TrialRng::new(5, 0);
        let ideal = SimBackend::terminal_sample(&mut tab, &measures, &mut rng);
        let all_ones = (1u128 << 120) - 1;
        assert!(ideal == 0 || ideal == all_ones, "got {ideal:b}");
    }
}
