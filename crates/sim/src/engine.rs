//! The four-tier trial engine.
//!
//! At the paper's calibration-derived error rates, most trials sample *no*
//! error anywhere — yet a naive simulator still pays a full state-vector
//! evolution per trial. The engine classifies every trial by its
//! pre-sampled error pattern ([`TrialProgram::pre_sample`]) before touching
//! any state, then serves it from the cheapest tier:
//!
//! * **Tier 1 — error-free**: the trial's terminal outcome is drawn from a
//!   precomputed CDF over the *ideal* final state (one shared ideal
//!   evolution per program); per trial the cost is the error draws, the
//!   mid-measure Bernoullis against precomputed probabilities, one uniform
//!   draw binary-searched into the CDF, and the readout-flip draws.
//!   Aggregated over a batch this is exactly a multinomial sample of the
//!   ideal outcome distribution, yet it remains bit-identical to replaying
//!   each trial because the CDF is built by the same canonical traversal
//!   the replay's terminal sampler uses.
//! * **Tier 0 — Pauli propagation**: when every unitary from the trial's
//!   first error site to the end of the program is Clifford (always true
//!   for the BV family, the paper's headline benchmarks), the error Pauli
//!   conjugates *symplectically* through the suffix — O(gates) XORs on a
//!   bit-packed tableau, zero state passes — and lands on the ideal
//!   terminal CDF as a basis-index XOR. See *exactness* below: tier 0 is
//!   statistically equivalent to the numeric replay, not bit-identical.
//! * **Tier 2 — checkpointed**: a trial whose first error fires at op `k`
//!   (before the Clifford suffix) resumes from a shared ideal-prefix
//!   snapshot advanced lazily to `k` (trials are processed in first-error
//!   order, so the walker only ever moves forward), replaying just the
//!   suffix. A worker-local **single-error suffix memo** (below) lets
//!   repeated single-error trials share one suffix evolution.
//! * **Tier 3 — full replay**: trials whose first error fires before any
//!   prefix exists (op 0) replay from scratch — the old cost, now paid
//!   only by the trials that need it.
//!
//! # Exactness: what is bit-exact and what is statistical
//!
//! Tiers 1–3 are **bit-identical** to the single-trial reference path
//! ([`TrialProgram::run_trial`]): same draws, same FP operations, same
//! outcomes. Tier 0 is deliberately *not*: it consumes the same number of
//! RNG draws per trial but maps them through the ideal distribution plus a
//! Pauli twist instead of through the numerically-perturbed state, so
//! individual outcomes can differ from the reference at FP decision
//! boundaries while the sampled *distribution* is equal (a Pauli string
//! applied to a pure state permutes basis probabilities by an X-mask and
//! phases — it never changes their values). Disable it via
//! [`EngineOptions::pauli_prop`] to recover bit-exactness everywhere; the
//! test suite pins tier 0 to the numeric reference with a total-variation
//! bound instead.
//!
//! # Mid-circuit measurement: the dominant-outcome path
//!
//! A mid-circuit measurement injects per-trial randomness into the state
//! itself, so no single shared prefix can cross it. The engine walks the
//! *dominant-outcome* path instead: at each measure point it precomputes
//! the outcome probability on the shared path, keeps a fallback checkpoint
//! of the pre-measure state, collapses onto the likelier outcome, and
//! continues. A trial draws its measure outcomes against the precomputed
//! probabilities (the exact draws a replay would make); as long as it
//! stays on the dominant path it keeps riding the shared states, and the
//! moment it diverges it falls back to the checkpoint before that measure
//! and replays the rest. Tier-0 trials cross measure points symplectically:
//! an X component on the measured qubit flips the outcome probability to
//! `1 - p1` and the recorded bit, the Z component degenerates to a global
//! phase at the collapse, and a drawn outcome whose *ideal* counterpart
//! leaves the dominant path falls back to the checkpoint with the
//! propagated Pauli fused on top.
//!
//! # The single-error suffix memo
//!
//! Below an expected error count of ~1 (`survival > e^{-1}`), most error
//! trials sample exactly **one** error, and two trials with the same
//! `(site, event)` share a fully deterministic evolution up to the first
//! post-error measurement. The engine keeps a small per-chunk LRU keyed
//! `(site, event)`: on a miss it advances the suffix once and caches the
//! pre-measure checkpoint (or the terminal CDF when the suffix is
//! measurement-free — then a hit does *zero* state work); on a hit the
//! cached evolution substitutes for the replay. Memoized trials are
//! bit-identical to cold ones: the shared segment consumes no RNG draws,
//! and the cached state is the same state the cold replay would have
//! reached. The memo is cleared at every chunk boundary so its hit/miss
//! counters — and everything else — stay independent of how chunks are
//! scheduled onto worker threads.
//!
//! Determinism: every stochastic draw of a trial comes from its own
//! counter-based [`TrialRng`] stream in a fixed order (error pattern
//! first, then measurement/readout draws in replay order), so outcomes are
//! a pure function of `(program, seed, trial)` — independent of tier
//! assignment, batch partitioning and thread count.

use crate::backend::BackendKind;
use crate::clifford::SymplecticPauli;
use crate::program::{TrialEvent, TrialOp, TrialProgram, TrialScratch};
use crate::rng::TrialRng;
use rand::Rng;
use rustc_hash::FxHashMap;
use std::cell::RefCell;

/// Tuning knobs of the [`TieredEngine`], carried on
/// [`SimulatorConfig`](crate::SimulatorConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Serve error trials whose suffix is all-Clifford by symplectic Pauli
    /// propagation (tier 0). Statistically equivalent to the numeric
    /// replay but not bit-identical; turn off to make every tier bit-exact
    /// against [`TrialProgram::run_trial`].
    pub pauli_prop: bool,
    /// Memoize single-error suffix evolutions within a chunk (exact; see
    /// the module docs). Self-gates on the program's error rate.
    pub suffix_memo: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            pauli_prop: true,
            suffix_memo: true,
        }
    }
}

impl EngineOptions {
    /// Every tier bit-exact against the reference replay: Pauli
    /// propagation off, memoization on (it is exact).
    pub fn exact() -> Self {
        EngineOptions {
            pauli_prop: false,
            suffix_memo: true,
        }
    }
}

/// How many trials of a batch each tier served, plus the suffix-memo hit
/// counters. The four tier fields partition the batch's trial count;
/// `memo_hits + memo_misses` counts the subset of checkpointed/full-replay
/// trials that went through the single-error memo. Merging counts across
/// batches is plain addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierCounts {
    /// Which backend served the batch. Batches are merged per program, and
    /// a program has exactly one backend, so merging keeps the tag as-is.
    pub backend: BackendKind,
    /// Tier-1 trials: no error anywhere and every mid-measure on the
    /// dominant path; outcome drawn from the ideal terminal distribution
    /// with no state work at all.
    pub error_free: u64,
    /// Tier-0 trials: error Pauli conjugated symplectically through an
    /// all-Clifford suffix onto the ideal terminal distribution — no state
    /// work, a few hundred XORs.
    pub pauli_prop: u64,
    /// Tier-2 trials: resumed from a shared checkpoint (first-error prefix,
    /// a mid-measure divergence fallback, or a memoized suffix).
    pub checkpointed: u64,
    /// Tier-3 trials: replayed from the initial state.
    pub full_replay: u64,
    /// Single-error trials served from the suffix memo.
    pub memo_hits: u64,
    /// Single-error trials that built (or rebuilt) a memo entry.
    pub memo_misses: u64,
}

impl TierCounts {
    /// Total trials across every tier (the memo counters overlap the tier
    /// partition and are not added again).
    pub fn total(&self) -> u64 {
        self.error_free + self.pauli_prop + self.checkpointed + self.full_replay
    }

    /// Accumulates another batch's counts. An empty accumulator adopts the
    /// other side's backend tag (batches are merged per program, so every
    /// non-empty operand carries the same tag).
    pub fn merge(&mut self, other: &TierCounts) {
        if self.total() == 0 {
            self.backend = other.backend;
        }
        self.error_free += other.error_free;
        self.pauli_prop += other.pauli_prop;
        self.checkpointed += other.checkpointed;
        self.full_replay += other.full_replay;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
    }
}

/// One entry of the terminal CDF: cumulative probability up to and
/// including a run of canonical basis states that share a packed clbit key
/// (runs sharing a key necessarily agree on every measured qubit's bit, so
/// `basis` — the first state of the run — stands in for all of them under
/// a tier-0 X-mask XOR).
#[derive(Debug, Clone, Copy)]
struct CdfEntry {
    cum: f64,
    key: u128,
    basis: u32,
}

/// How tier 1 (and tier 0) resolve the terminal op of an on-dominant-path
/// trial.
#[derive(Debug, Clone)]
enum TerminalPlan {
    /// The program ends in one [`TrialOp::TerminalSample`]: sample the
    /// precomputed CDF, then draw the readout flips in measure order.
    Sample {
        cdf: Vec<CdfEntry>,
        /// `(qubit, clbit)` of every folded measure, in program order —
        /// how tier 0 maps an X-shifted basis index back to a clbit key.
        bit_map: Vec<(u8, u8)>,
        /// `(clbit, p_flip)` of every folded measure with a non-zero flip
        /// probability, in program order.
        flips: Vec<(u8, f64)>,
    },
    /// No terminal sample: every classical bit was produced by the measure
    /// ladder (or the program measures nothing).
    None,
}

/// One mid-program measure point on the shared dominant path.
#[derive(Debug, Clone, Copy)]
struct MeasurePoint {
    /// Op index of the [`TrialOp::Measure`].
    op: u32,
    /// Program qubit measured.
    qubit: u8,
    /// Classical bit recorded.
    clbit: u8,
    /// Readout flip probability.
    p_flip: f64,
    /// Probability of outcome 1 on the dominant path (clamped to `[0, 1]`
    /// exactly as [`crate::StateVector::measure`] does).
    p1: f64,
    /// The dominant outcome the shared path collapses onto.
    dominant: bool,
}

/// Result of drawing a trial's measure outcomes along the dominant path.
struct MeasureWalk {
    /// Clbits recorded by the walked measures (post-flip).
    clbits: u128,
    /// First measure whose outcome left the dominant path, with the drawn
    /// (pre-flip) outcome.
    diverged: Option<(usize, bool)>,
}

/// How a tier-0 propagation resolved.
enum Tier0 {
    /// The trial rode the dominant path to the end; its full clbit key.
    Served(u128),
    /// A measure draw's ideal counterpart left the dominant path: fall
    /// back to the checkpoint before measure `measure_k`, collapsed onto
    /// `ideal_outcome`, with `pauli` fused on top; clbits recorded so far
    /// and the index of the first unconsumed error event come along.
    Diverged {
        measure_k: usize,
        ideal_outcome: bool,
        clbits: u128,
        pauli: SymplecticPauli,
        site_next: usize,
    },
}

/// A [`TrialProgram`] analyzed for tiered execution: the dominant-path
/// measure ladder with fallback checkpoints, the shared terminal plan, the
/// tier-0 eligibility boundary and the noise-site geometry. Build once per
/// program via [`TieredEngine::new`] (or [`TieredEngine::with_options`]),
/// then run batches through [`TieredEngine::run_chunk`].
#[derive(Debug)]
pub struct TieredEngine<'p> {
    program: &'p TrialProgram,
    /// Mid-program measure points, in op order.
    measures: Vec<MeasurePoint>,
    /// The pre-measure state of each measure point (measured qubit
    /// flushed): the fallback checkpoint when a trial's outcome diverges
    /// from the dominant path.
    checkpoints: Vec<TrialScratch>,
    /// Op index of the trailing [`TrialOp::TerminalSample`], or `ops.len()`
    /// when there is none.
    terminal_op: usize,
    terminal: TerminalPlan,
    /// Smallest op index from which error trials are served by tier-0
    /// Pauli propagation; `usize::MAX` when tier 0 is disabled (by option,
    /// or because the terminal clbit map is not X-mask safe).
    pauli_prop_from: usize,
    /// Whether the single-error suffix memo is active for this program
    /// (option on, error mass below the λ≈1 worthwhileness bound, and a
    /// suffix worth caching).
    memo_enabled: bool,
}

impl<'p> TieredEngine<'p> {
    /// Analyzes `program` with default [`EngineOptions`]: walks the shared
    /// dominant path once (collapsing every mid-measure onto its likelier
    /// outcome, snapshotting fallback checkpoints) and precomputes the
    /// shared terminal plan from the path's final state.
    pub fn new(program: &'p TrialProgram) -> Self {
        Self::with_options(program, EngineOptions::default())
    }

    /// Like [`TieredEngine::new`] with explicit engine options.
    pub fn with_options(program: &'p TrialProgram, options: EngineOptions) -> Self {
        let ops = program.ops();
        let terminal_op = match ops.last() {
            Some(TrialOp::TerminalSample { .. }) => ops.len() - 1,
            _ => ops.len(),
        };

        // A program with general Kraus channels has no shared ideal path:
        // every channel application is state-dependent, so there is no
        // dominant-path walk, no checkpoints, no terminal CDF and no
        // tier-0 propagation — every trial replays in full (tier 3).
        if program.has_kraus() {
            return TieredEngine {
                program,
                measures: Vec::new(),
                checkpoints: Vec::new(),
                terminal_op,
                terminal: TerminalPlan::None,
                pauli_prop_from: usize::MAX,
                memo_enabled: false,
            };
        }

        let mut walker = program.make_scratch();
        walker.reset();
        let mut measures = Vec::new();
        let mut checkpoints = Vec::new();
        let mut pos = 0usize;
        for (i, op) in ops[..terminal_op].iter().enumerate() {
            let &TrialOp::Measure {
                qubit,
                clbit,
                p_flip,
            } = op
            else {
                continue;
            };
            program.advance_ideal(&mut walker, pos, i);
            let p1 = walker.flush_and_p1(qubit).clamp(0.0, 1.0);
            // Snapshot before the collapse: the fallback for trials whose
            // drawn outcome leaves the dominant path.
            checkpoints.push(walker.clone());
            let dominant = p1 >= 0.5;
            walker.collapse_measured(qubit, dominant, p1);
            measures.push(MeasurePoint {
                op: i as u32,
                qubit,
                clbit,
                p_flip,
                p1,
                dominant,
            });
            pos = i + 1;
        }
        program.advance_ideal(&mut walker, pos, terminal_op);

        let terminal = match ops.get(terminal_op) {
            Some(TrialOp::TerminalSample { measures }) => {
                // Mirror the replay exactly: flush the measured qubits,
                // then accumulate probabilities in canonical order. Runs of
                // adjacent entries sharing a key merge (the scan outcome is
                // unchanged), which collapses classical-output programs to
                // a single entry.
                let mut scratch = walker;
                scratch.flush_terminal(measures);
                let cdf = build_terminal_cdf(&scratch, measures);
                let bit_map = measures.iter().map(|&(q, c, _)| (q, c)).collect();
                let flips = measures
                    .iter()
                    .filter(|&&(_, _, p_flip)| p_flip > 0.0)
                    .map(|&(_, clbit, p_flip)| (clbit, p_flip))
                    .collect();
                TerminalPlan::Sample {
                    cdf,
                    bit_map,
                    flips,
                }
            }
            _ => TerminalPlan::None,
        };

        // Tier 0 twists the terminal sample by XOR-ing the Pauli's X mask
        // into the sampled basis index, which is sound only when the clbit
        // key is a bijective image of the measured qubits' bits: every
        // clbit must be owned by a single qubit. (Lowered programs always
        // satisfy this; the guard keeps exotic hand-built programs exact.)
        let xor_safe = match ops.get(terminal_op) {
            Some(TrialOp::TerminalSample { measures }) => {
                let mut owner = [u8::MAX; 128];
                measures.iter().all(|&(q, c, _)| {
                    let slot = &mut owner[usize::from(c)];
                    if *slot == u8::MAX {
                        *slot = q;
                        true
                    } else {
                        *slot == q
                    }
                })
            }
            _ => true,
        };
        let pauli_prop_from = if options.pauli_prop && xor_safe {
            program.clifford_suffix_from()
        } else {
            usize::MAX
        };

        // The memo pays while single-error trials dominate error trials —
        // λ below about 1, i.e. survival above e^{-1} — and only when a
        // suffix replay is expensive enough that sharing one beats the
        // per-trial lookup/clone overhead: below ~2^10 amplitudes the
        // replay is already cheaper than the bookkeeping (measured on the
        // tracked small benchmarks), so small-state programs skip it.
        let memo_enabled = options.suffix_memo
            && program.survival_probability() > (-1.0f64).exp()
            && program.num_qubits() >= MEMO_MIN_QUBITS
            && !program.noise_sites().is_empty()
            && (!measures.is_empty() || matches!(terminal, TerminalPlan::Sample { .. }));

        TieredEngine {
            program,
            measures,
            checkpoints,
            terminal_op,
            terminal,
            pauli_prop_from,
            memo_enabled,
        }
    }

    /// Number of noise sites at ops before `op` — the offset into a
    /// trial's event list where a replay starting at `op` begins consuming.
    fn site_index_at(&self, op: usize) -> usize {
        self.program
            .noise_sites()
            .partition_point(|&site| (site as usize) < op)
    }

    /// Draws a trial's outcomes for every measure point before `limit_op`,
    /// exactly as a replay would (Bernoulli on the dominant-path
    /// probability, then the readout flip), stopping at the first outcome
    /// that leaves the dominant path.
    fn walk_measures<R: Rng + ?Sized>(&self, limit_op: usize, rng: &mut R) -> MeasureWalk {
        let mut clbits = 0u128;
        for (k, m) in self.measures.iter().enumerate() {
            if m.op as usize >= limit_op {
                break;
            }
            let outcome = rng.gen_bool(m.p1);
            let mut bit = outcome;
            if m.p_flip > 0.0 && rng.gen_bool(m.p_flip) {
                bit = !bit;
            }
            if bit {
                clbits |= 1u128 << m.clbit;
            }
            if outcome != m.dominant {
                return MeasureWalk {
                    clbits,
                    diverged: Some((k, outcome)),
                };
            }
        }
        MeasureWalk {
            clbits,
            diverged: None,
        }
    }

    /// Resolves the terminal op for an on-dominant-path, error-free trial,
    /// consuming exactly the draws a full replay's terminal op would.
    fn sample_terminal<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        match &self.terminal {
            TerminalPlan::Sample { cdf, flips, .. } => {
                let mut key = cdf[sample_cdf_index(cdf, rng)].key;
                for &(clbit, p_flip) in flips {
                    if rng.gen_bool(p_flip) {
                        key ^= 1u128 << clbit;
                    }
                }
                key
            }
            TerminalPlan::None => 0,
        }
    }

    /// Conjugates a tier-0 trial's error Pauli through
    /// `ops[resume_op..]`, resolving measure points against the dominant
    /// path and the terminal op against the ideal CDF shifted by the
    /// Pauli's X mask. Consumes the same number of RNG draws a replay
    /// would over the same range. `events` is the trial's full event list;
    /// `first_site` is the index of the event at `resume_op`.
    fn propagate_pauli<R: Rng + ?Sized>(
        &self,
        resume_op: usize,
        first_site: usize,
        events: &[TrialEvent],
        mut clbits: u128,
        rng: &mut R,
    ) -> Tier0 {
        let program = self.program;
        let mut pauli = SymplecticPauli::IDENTITY;
        let mut site = first_site;
        let mut measure_k = self
            .measures
            .partition_point(|m| (m.op as usize) < resume_op);
        for (offset, op) in program.ops()[resume_op..].iter().enumerate() {
            match *op {
                TrialOp::Unitary { qubit, .. } => {
                    let action = program
                        .clifford_action(resume_op + offset)
                        .expect("ops past the suffix boundary are Clifford");
                    pauli.conjugate_1q(qubit, &action);
                }
                TrialOp::Cnot { control, target } => pauli.conjugate_cnot(control, target),
                TrialOp::Swap { a, b, ref noise } => {
                    pauli.conjugate_swap(a, b);
                    if noise.is_some() {
                        if let TrialEvent::Swap(ra, rb) = events[site] {
                            pauli.compose(a, ra);
                            pauli.compose(b, rb);
                        }
                        site += 1;
                    }
                }
                TrialOp::GateNoise { qubit, .. } | TrialOp::ChannelNoise { qubit, .. } => {
                    if let TrialEvent::Gate(p) = events[site] {
                        pauli.compose(qubit, p);
                    }
                    site += 1;
                }
                TrialOp::CnotNoise {
                    control, target, ..
                } => {
                    if let TrialEvent::Cnot(pc, pt) = events[site] {
                        pauli.compose(control, pc);
                        pauli.compose(target, pt);
                    }
                    site += 1;
                }
                TrialOp::ChannelNoise2 { a, b, .. } => {
                    if let TrialEvent::Cnot(pa, pb) = events[site] {
                        pauli.compose(a, pa);
                        pauli.compose(b, pb);
                    }
                    site += 1;
                }
                TrialOp::KrausChannel { .. } => {
                    unreachable!("Kraus programs never reach tier-0 propagation")
                }
                TrialOp::Measure {
                    qubit,
                    clbit,
                    p_flip,
                } => {
                    let m = &self.measures[measure_k];
                    debug_assert_eq!(m.op as usize, resume_op + offset);
                    // An X component on the measured qubit exchanges the
                    // outcome probabilities; the draw below is the trial's
                    // own measurement randomness against the perturbed
                    // distribution.
                    let flipped = pauli.x_bit(qubit);
                    let p_eff = if flipped { 1.0 - m.p1 } else { m.p1 };
                    let outcome = rng.gen_bool(p_eff);
                    let mut bit = outcome;
                    if p_flip > 0.0 && rng.gen_bool(p_flip) {
                        bit = !bit;
                    }
                    if bit {
                        clbits |= 1u128 << clbit;
                    }
                    // After the collapse a Z on the measured qubit is a
                    // global phase; the X component survives as the
                    // relation between the trial's outcome and the ideal
                    // path's.
                    pauli.clear_z(qubit);
                    let ideal_outcome = outcome ^ flipped;
                    if ideal_outcome != m.dominant {
                        return Tier0::Diverged {
                            measure_k,
                            ideal_outcome,
                            clbits,
                            pauli,
                            site_next: site,
                        };
                    }
                    measure_k += 1;
                }
                TrialOp::TerminalSample { .. } => {
                    let TerminalPlan::Sample {
                        ref cdf,
                        ref bit_map,
                        ref flips,
                    } = self.terminal
                    else {
                        unreachable!("terminal plan built from the terminal op");
                    };
                    // Sample the ideal distribution, then twist by the X
                    // mask: P_perturbed(c) = P_ideal(c ^ xmask), so the
                    // shifted sample has exactly the perturbed
                    // distribution (Z components only touch phases).
                    let basis = cdf[sample_cdf_index(cdf, rng)].basis ^ pauli.x;
                    let mut key = 0u128;
                    for &(qubit, clbit) in bit_map {
                        if basis >> qubit & 1 == 1 {
                            key |= 1u128 << clbit;
                        }
                    }
                    for &(clbit, p_flip) in flips {
                        if rng.gen_bool(p_flip) {
                            key ^= 1u128 << clbit;
                        }
                    }
                    clbits |= key;
                }
            }
        }
        Tier0::Served(clbits)
    }

    /// Restores `trial` to the divergence fallback: the checkpoint before
    /// measure `k`, collapsed onto the drawn off-dominant `outcome`.
    fn restore_diverged(&self, trial: &mut TrialScratch, k: usize, outcome: bool) {
        let m = &self.measures[k];
        trial.copy_from(&self.checkpoints[k]);
        trial.collapse_measured(m.qubit, outcome, m.p1);
    }

    /// Whether site `s` is the trial's only error — the memo key condition
    /// (`events[..s]` is error-free by `pre_sample`'s contract).
    fn single_error(events: &[TrialEvent], s: usize) -> bool {
        events[s + 1..].iter().all(|e| !e.is_error())
    }

    /// Simulates trials `[start, end)` of the stream derived from `seed`,
    /// accumulating bit-packed outcome counts into `counts` and tier
    /// occupancy into `tiers`. `scratch` provides every buffer the batch
    /// needs; it is reused across calls without reallocation.
    ///
    /// With Pauli propagation disabled, outcomes are bit-identical to
    /// running [`TrialProgram::run_trial`] per trial, for any chunking;
    /// with it enabled, tier-0-served trials are statistically equivalent
    /// instead (see the module docs). Either way the outcome of a trial is
    /// a pure function of `(program, seed, trial index)`.
    pub fn run_chunk(
        &self,
        seed: u64,
        start: u32,
        end: u32,
        scratch: &mut EngineScratch,
        counts: &mut FxHashMap<u128, u32>,
        tiers: &mut TierCounts,
    ) {
        let program = self.program;
        let sites = program.noise_sites();
        tiers.backend = BackendKind::Dense;
        scratch.prepare(program);
        let EngineScratch {
            trial,
            prefix,
            draw,
            arena,
            queue,
            memo,
        } = scratch;
        let trial = trial.as_mut().expect("prepared above");
        let prefix = prefix.as_mut().expect("prepared above");

        // Kraus programs have no shared structure to exploit (every
        // channel application depends on the trial's own state), so every
        // trial is a tier-3 full replay: pre-sample the Pauli-channel
        // pattern, then walk the whole program.
        if program.has_kraus() {
            for t in start..end {
                let mut rng = TrialRng::new(seed, t);
                let _ = program.pre_sample(draw, &mut rng);
                trial.reset();
                let key = program.replay_from(trial, 0, draw, &mut rng);
                *counts.entry(key).or_insert(0) += 1;
                tiers.full_replay += 1;
            }
            return;
        }

        // Phase 1: pre-sample every trial's error pattern (no state work).
        // Error-free trials resolve immediately — through the tier-1 plan
        // when their measure draws stay on the dominant path, from a
        // divergence checkpoint otherwise — and Clifford-suffix error
        // trials resolve through tier-0 Pauli propagation. Trials with
        // errors before the suffix boundary queue for checkpointed replay,
        // carrying their events and RNG position.
        for t in start..end {
            let mut rng = TrialRng::new(seed, t);
            match program.pre_sample(draw, &mut rng) {
                None => {
                    let walk = self.walk_measures(self.terminal_op, &mut rng);
                    match walk.diverged {
                        None => {
                            let key = walk.clbits | self.sample_terminal(&mut rng);
                            *counts.entry(key).or_insert(0) += 1;
                            tiers.error_free += 1;
                        }
                        Some((k, outcome)) => {
                            self.restore_diverged(trial, k, outcome);
                            let resume = self.measures[k].op as usize + 1;
                            let key = walk.clbits
                                | program.replay_from(
                                    trial,
                                    resume,
                                    &draw[self.site_index_at(resume)..],
                                    &mut rng,
                                );
                            *counts.entry(key).or_insert(0) += 1;
                            tiers.checkpointed += 1;
                        }
                    }
                }
                Some(s) => {
                    let resume_op = sites[s as usize] as usize;
                    if resume_op >= self.pauli_prop_from {
                        // Tier 0: the whole suffix is Clifford. Walk the
                        // pre-error measures like any other trial, then
                        // push the error through symplectically.
                        let walk = self.walk_measures(resume_op, &mut rng);
                        let key = match walk.diverged {
                            Some((k, outcome)) => {
                                // Diverged before the error even fired:
                                // the ordinary (exact) checkpoint fallback.
                                self.restore_diverged(trial, k, outcome);
                                let resume = self.measures[k].op as usize + 1;
                                tiers.checkpointed += 1;
                                walk.clbits
                                    | program.replay_from(
                                        trial,
                                        resume,
                                        &draw[self.site_index_at(resume)..],
                                        &mut rng,
                                    )
                            }
                            None => match self.propagate_pauli(
                                resume_op,
                                s as usize,
                                draw,
                                walk.clbits,
                                &mut rng,
                            ) {
                                Tier0::Served(key) => {
                                    tiers.pauli_prop += 1;
                                    key
                                }
                                Tier0::Diverged {
                                    measure_k,
                                    ideal_outcome,
                                    clbits,
                                    pauli,
                                    site_next,
                                } => {
                                    // The ideal outcome left the dominant
                                    // path: restore the pre-measure
                                    // checkpoint, collapse onto the ideal
                                    // outcome and materialize the
                                    // propagated Pauli, then replay the
                                    // rest numerically.
                                    let m = &self.measures[measure_k];
                                    trial.copy_from(&self.checkpoints[measure_k]);
                                    trial.collapse_measured(m.qubit, ideal_outcome, m.p1);
                                    trial.fuse_symplectic(&pauli);
                                    tiers.checkpointed += 1;
                                    clbits
                                        | program.replay_from(
                                            trial,
                                            m.op as usize + 1,
                                            &draw[site_next..],
                                            &mut rng,
                                        )
                                }
                            },
                        };
                        *counts.entry(key).or_insert(0) += 1;
                    } else {
                        let events_start = arena.len();
                        arena.extend_from_slice(draw);
                        queue.push(PendingTrial {
                            resume_op: resume_op as u32,
                            events_start: events_start as u32,
                            rng,
                        });
                    }
                }
            }
        }

        // Phase 2: replay the queued trials in first-error order, advancing
        // the shared dominant-path walker monotonically (collapsing each
        // crossed measure onto its dominant outcome) so each program op is
        // evolved at most once per chunk regardless of how many trials
        // resume behind it.
        queue.sort_by_key(|t| t.resume_op);
        prefix.reset();
        let mut prefix_pos = 0usize;
        let mut prefix_measure = 0usize;
        for pending in queue.drain(..) {
            let resume_op = pending.resume_op as usize;
            while prefix_measure < self.measures.len()
                && (self.measures[prefix_measure].op as usize) < resume_op
            {
                let m = &self.measures[prefix_measure];
                program.advance_ideal(prefix, prefix_pos, m.op as usize);
                prefix.flush(m.qubit);
                prefix.collapse_measured(m.qubit, m.dominant, m.p1);
                prefix_pos = m.op as usize + 1;
                prefix_measure += 1;
            }
            if resume_op > prefix_pos {
                program.advance_ideal(prefix, prefix_pos, resume_op);
                prefix_pos = resume_op;
            }

            let mut rng = pending.rng;
            // One full event list per queued trial (one entry per noise
            // site) lives at the trial's arena offset.
            let events_start = pending.events_start as usize;
            let events = &arena[events_start..events_start + sites.len()];
            // The trial's own draws for the measures the walker crossed.
            let walk = self.walk_measures(resume_op, &mut rng);
            let key = match walk.diverged {
                None => {
                    let s = self.site_index_at(resume_op);
                    if self.memo_enabled && Self::single_error(events, s) {
                        walk.clbits
                            | self.run_memoized(
                                s, resume_op, events, trial, prefix, memo, tiers, &mut rng,
                            )
                    } else {
                        trial.copy_from(prefix);
                        walk.clbits | program.replay_from(trial, resume_op, &events[s..], &mut rng)
                    }
                }
                Some((k, outcome)) => {
                    self.restore_diverged(trial, k, outcome);
                    let resume = self.measures[k].op as usize + 1;
                    walk.clbits
                        | program.replay_from(
                            trial,
                            resume,
                            &events[self.site_index_at(resume)..],
                            &mut rng,
                        )
                }
            };
            *counts.entry(key).or_insert(0) += 1;
            if resume_op > 0 || walk.diverged.is_some() {
                tiers.checkpointed += 1;
            } else {
                tiers.full_replay += 1;
            }
        }
        arena.clear();
    }

    /// Serves an on-dominant-path single-error trial through the suffix
    /// memo: the deterministic segment from the error site to the first
    /// post-error measurement (or the terminal CDF when there is none) is
    /// computed once per `(site, event)` and reused. Bit-identical to the
    /// cold replay — the shared segment consumes no RNG draws and the
    /// cached state is exactly the state the replay would have reached.
    #[allow(clippy::too_many_arguments)]
    fn run_memoized<R: Rng + ?Sized>(
        &self,
        s: usize,
        resume_op: usize,
        events: &[TrialEvent],
        trial: &mut TrialScratch,
        prefix: &TrialScratch,
        memo: &mut SuffixMemo,
        tiers: &mut TierCounts,
        rng: &mut R,
    ) -> u128 {
        let program = self.program;
        let event = events[s];
        if let Some(entry) = memo.get(s as u32, event) {
            tiers.memo_hits += 1;
            return match entry {
                MemoEntry::Terminal(cdf) => self.sample_memo_terminal(cdf, rng),
                MemoEntry::Checkpoint {
                    scratch,
                    resume_op: stop,
                } => {
                    let stop = *stop as usize;
                    trial.copy_from(scratch);
                    program.replay_from(trial, stop, &events[self.site_index_at(stop)..], rng)
                }
            };
        }
        tiers.memo_misses += 1;
        // The first post-error measure bounds the deterministic segment.
        let next_measure = self
            .measures
            .partition_point(|m| (m.op as usize) < resume_op);
        trial.copy_from(prefix);
        match (next_measure < self.measures.len(), &self.terminal) {
            (true, _) => {
                let stop = self.measures[next_measure].op as usize;
                program.advance_noisy(trial, resume_op, stop, &events[s..]);
                memo.insert(
                    s as u32,
                    event,
                    MemoEntry::Checkpoint {
                        scratch: trial.clone(),
                        resume_op: stop as u32,
                    },
                );
                program.replay_from(trial, stop, &events[self.site_index_at(stop)..], rng)
            }
            (false, TerminalPlan::Sample { .. }) => {
                program.advance_noisy(trial, resume_op, self.terminal_op, &events[s..]);
                let Some(TrialOp::TerminalSample { measures }) =
                    program.ops().get(self.terminal_op)
                else {
                    unreachable!("terminal plan built from the terminal op");
                };
                trial.flush_terminal(measures);
                let cdf = build_terminal_cdf(trial, measures);
                let key = self.sample_memo_terminal(&cdf, rng);
                memo.insert(s as u32, event, MemoEntry::Terminal(cdf));
                key
            }
            (false, TerminalPlan::None) => {
                // Measurement-free suffix with no terminal sample: nothing
                // left can touch a clbit (memo_enabled guards this arm out,
                // but stay correct regardless).
                0
            }
        }
    }

    /// Samples a memoized perturbed terminal CDF, consuming exactly the
    /// draws the cold replay's terminal op would (one uniform, then the
    /// shared readout-flip gates).
    fn sample_memo_terminal<R: Rng + ?Sized>(&self, cdf: &[CdfEntry], rng: &mut R) -> u128 {
        let mut key = cdf[sample_cdf_index(cdf, rng)].key;
        if let TerminalPlan::Sample { flips, .. } = &self.terminal {
            for &(clbit, p_flip) in flips {
                if rng.gen_bool(p_flip) {
                    key ^= 1u128 << clbit;
                }
            }
        }
        key
    }
}

/// Binary-searches a terminal CDF with one uniform draw — identical to the
/// replay's linear scan, including the trailing-remainder fallback.
fn sample_cdf_index<R: Rng + ?Sized>(cdf: &[CdfEntry], rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    cdf.partition_point(|e| e.cum <= u).min(cdf.len() - 1)
}

/// Accumulates the canonical-order terminal CDF of a scratch whose measured
/// qubits are already flushed — the exact probability sequence the replay's
/// terminal sampler scans, with runs of adjacent states sharing a clbit key
/// merged (the scan outcome is unchanged).
fn build_terminal_cdf(scratch: &TrialScratch, measures: &[(u8, u8, f64)]) -> Vec<CdfEntry> {
    let mut cdf: Vec<CdfEntry> = Vec::new();
    let mut cum = 0.0;
    scratch
        .state()
        .for_each_canonical_probability(scratch.perm(), |c, p| {
            cum += p;
            let mut key = 0u128;
            for &(qubit, clbit, _) in measures {
                if c >> qubit & 1 == 1 {
                    key |= 1u128 << clbit;
                }
            }
            match cdf.last_mut() {
                Some(last) if last.key == key => last.cum = cum,
                _ => cdf.push(CdfEntry {
                    cum,
                    key,
                    basis: c as u32,
                }),
            }
        });
    cdf
}

/// A queued tier-2/3 trial: where its replay resumes, its pre-drawn events
/// (an offset into the chunk's event arena), and its RNG positioned after
/// the pre-sampling draws.
#[derive(Debug)]
struct PendingTrial {
    resume_op: u32,
    events_start: u32,
    rng: TrialRng,
}

/// The single-error suffix memo: a tiny LRU keyed `(site, event)`, cleared
/// at every chunk boundary so hit patterns are a pure function of the
/// chunk's trial range (thread-schedule independent). Entries are either a
/// perturbed terminal CDF (measurement-free suffix — hits do zero state
/// work) or the pre-measure checkpoint of the deterministic suffix prefix.
#[derive(Debug, Default)]
struct SuffixMemo {
    slots: Vec<MemoSlot>,
    tick: u64,
}

/// Bounds the per-worker memory of the memo (a checkpoint entry holds a
/// full state clone; eight 16-qubit entries are ~8 MiB).
const MEMO_CAPACITY: usize = 8;

/// Programs narrower than this skip the memo: their suffix replays cost
/// less than the memo's per-trial bookkeeping.
const MEMO_MIN_QUBITS: usize = 10;

#[derive(Debug)]
struct MemoSlot {
    site: u32,
    event: TrialEvent,
    last_used: u64,
    entry: MemoEntry,
}

#[derive(Debug)]
enum MemoEntry {
    Terminal(Vec<CdfEntry>),
    Checkpoint {
        scratch: TrialScratch,
        resume_op: u32,
    },
}

impl SuffixMemo {
    fn clear(&mut self) {
        self.slots.clear();
        self.tick = 0;
    }

    fn get(&mut self, site: u32, event: TrialEvent) -> Option<&MemoEntry> {
        self.tick += 1;
        let tick = self.tick;
        self.slots
            .iter_mut()
            .find(|slot| slot.site == site && slot.event == event)
            .map(|slot| {
                slot.last_used = tick;
                &slot.entry
            })
    }

    fn insert(&mut self, site: u32, event: TrialEvent, entry: MemoEntry) {
        self.tick += 1;
        let slot = MemoSlot {
            site,
            event,
            last_used: self.tick,
            entry,
        };
        if self.slots.len() < MEMO_CAPACITY {
            self.slots.push(slot);
        } else if let Some(lru) = self.slots.iter_mut().min_by_key(|s| s.last_used) {
            *lru = slot;
        }
    }
}

/// Every reusable buffer a batch needs: the replay scratch, the shared
/// dominant-path walker, the pre-sample draw buffer, the event arena, the
/// pending-trial queue and the suffix memo. Acquired from the worker-local
/// pool via [`with_engine_scratch`], so consecutive chunks — and
/// consecutive programs of any width — reuse one allocation per worker.
#[derive(Debug, Default)]
pub struct EngineScratch {
    trial: Option<TrialScratch>,
    prefix: Option<TrialScratch>,
    draw: Vec<TrialEvent>,
    arena: Vec<TrialEvent>,
    queue: Vec<PendingTrial>,
    memo: SuffixMemo,
}

impl EngineScratch {
    fn prepare(&mut self, program: &TrialProgram) {
        let n = program.num_qubits();
        for slot in [&mut self.trial, &mut self.prefix] {
            match slot {
                Some(s) => s.ensure(n),
                None => *slot = Some(program.make_scratch()),
            }
        }
        self.draw.clear();
        self.arena.clear();
        self.queue.clear();
        self.memo.clear();
    }
}

thread_local! {
    /// Worker-local engine scratch, shared across chunks, runs and
    /// programs: the "reuse scratch and checkpoint buffers instead of
    /// per-chunk reallocation" half of the engine's memory story.
    static ENGINE_SCRATCH: RefCell<EngineScratch> = RefCell::new(EngineScratch::default());
}

/// Runs `f` with the calling worker's reusable [`EngineScratch`].
pub fn with_engine_scratch<R>(f: impl FnOnce(&mut EngineScratch) -> R) -> R {
    ENGINE_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}
