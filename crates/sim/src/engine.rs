//! The three-tier trial engine.
//!
//! At the paper's calibration-derived error rates, most trials sample *no*
//! error anywhere — yet a naive simulator still pays a full state-vector
//! evolution per trial. The engine classifies every trial by its
//! pre-sampled error pattern ([`TrialProgram::pre_sample`]) before touching
//! any state, then serves it from the cheapest tier that preserves
//! bit-exact equivalence with the single-trial reference path
//! ([`TrialProgram::run_trial`]):
//!
//! * **Tier 1 — error-free**: the trial's terminal outcome is drawn from a
//!   precomputed CDF over the *ideal* final state (one shared ideal
//!   evolution per program); per trial the cost is the error draws, the
//!   mid-measure Bernoullis against precomputed probabilities, one uniform
//!   draw binary-searched into the CDF, and the readout-flip draws.
//!   Aggregated over a batch this is exactly a multinomial sample of the
//!   ideal outcome distribution, yet it remains bit-identical to replaying
//!   each trial because the CDF is built by the same canonical traversal
//!   the replay's terminal sampler uses.
//! * **Tier 2 — checkpointed**: a trial whose first error fires at op `k`
//!   resumes from a shared ideal-prefix snapshot advanced lazily to `k`
//!   (trials are processed in first-error order, so the walker only ever
//!   moves forward), replaying just the suffix.
//! * **Tier 3 — full replay**: trials whose first error fires before any
//!   prefix exists (op 0) replay from scratch — the old cost, now paid
//!   only by the trials that need it.
//!
//! # Mid-circuit measurement: the dominant-outcome path
//!
//! A mid-circuit measurement injects per-trial randomness into the state
//! itself, so no single shared prefix can cross it. The engine walks the
//! *dominant-outcome* path instead: at each measure point it precomputes
//! the outcome probability on the shared path, keeps a fallback checkpoint
//! of the pre-measure state, collapses onto the likelier outcome, and
//! continues. A trial draws its measure outcomes against the precomputed
//! probabilities (the exact draws a replay would make); as long as it
//! stays on the dominant path it keeps riding the shared states, and the
//! moment it diverges it falls back to the checkpoint before that measure
//! and replays the rest. For the near-deterministic measurements of
//! classical-output circuits the divergence probability is per-trial
//! noise-floor small, so checkpoint sharing survives swap-back executables
//! that interleave measurements with routing.
//!
//! Determinism: every stochastic draw of a trial comes from its own
//! counter-based [`TrialRng`] stream in a fixed order (error pattern
//! first, then measurement/readout draws in replay order), so outcomes are
//! a pure function of `(program, seed, trial)` — independent of tier
//! assignment, batch partitioning and thread count.

use crate::program::{TrialEvent, TrialOp, TrialProgram, TrialScratch};
use crate::rng::TrialRng;
use rand::Rng;
use rustc_hash::FxHashMap;
use std::cell::RefCell;

/// How many trials of a batch each tier served. Tier totals sum to the
/// batch's trial count; merging counts across batches is plain addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierCounts {
    /// Tier-1 trials: no error anywhere and every mid-measure on the
    /// dominant path; outcome drawn from the ideal terminal distribution
    /// with no state work at all.
    pub error_free: u64,
    /// Tier-2 trials: resumed from a shared checkpoint (first-error prefix
    /// or a mid-measure divergence fallback).
    pub checkpointed: u64,
    /// Tier-3 trials: replayed from the initial state.
    pub full_replay: u64,
}

impl TierCounts {
    /// Total trials across every tier.
    pub fn total(&self) -> u64 {
        self.error_free + self.checkpointed + self.full_replay
    }

    /// Accumulates another batch's counts.
    pub fn merge(&mut self, other: &TierCounts) {
        self.error_free += other.error_free;
        self.checkpointed += other.checkpointed;
        self.full_replay += other.full_replay;
    }
}

/// One entry of the tier-1 terminal CDF: cumulative probability up to and
/// including a run of canonical basis states that share a packed clbit key.
#[derive(Debug, Clone, Copy)]
struct CdfEntry {
    cum: f64,
    key: u64,
}

/// How tier 1 resolves the terminal op of an on-dominant-path, error-free
/// trial.
#[derive(Debug, Clone)]
enum TerminalPlan {
    /// The program ends in one [`TrialOp::TerminalSample`]: sample the
    /// precomputed CDF, then draw the readout flips in measure order.
    Sample {
        cdf: Vec<CdfEntry>,
        /// `(clbit, p_flip)` of every folded measure with a non-zero flip
        /// probability, in program order.
        flips: Vec<(u8, f64)>,
    },
    /// No terminal sample: every classical bit was produced by the measure
    /// ladder (or the program measures nothing).
    None,
}

/// One mid-program measure point on the shared dominant path.
#[derive(Debug, Clone, Copy)]
struct MeasurePoint {
    /// Op index of the [`TrialOp::Measure`].
    op: u32,
    /// Program qubit measured.
    qubit: u8,
    /// Classical bit recorded.
    clbit: u8,
    /// Readout flip probability.
    p_flip: f64,
    /// Probability of outcome 1 on the dominant path (clamped to `[0, 1]`
    /// exactly as [`crate::StateVector::measure`] does).
    p1: f64,
    /// The dominant outcome the shared path collapses onto.
    dominant: bool,
}

/// Result of drawing a trial's measure outcomes along the dominant path.
struct MeasureWalk {
    /// Clbits recorded by the walked measures (post-flip).
    clbits: u64,
    /// First measure whose outcome left the dominant path, with the drawn
    /// (pre-flip) outcome.
    diverged: Option<(usize, bool)>,
}

/// A [`TrialProgram`] analyzed for tiered execution: the dominant-path
/// measure ladder with fallback checkpoints, the tier-1 terminal plan, and
/// the noise-site geometry. Build once per program via
/// [`TieredEngine::new`], then run batches through
/// [`TieredEngine::run_chunk`].
#[derive(Debug)]
pub struct TieredEngine<'p> {
    program: &'p TrialProgram,
    /// Mid-program measure points, in op order.
    measures: Vec<MeasurePoint>,
    /// The pre-measure state of each measure point (measured qubit
    /// flushed): the fallback checkpoint when a trial's outcome diverges
    /// from the dominant path.
    checkpoints: Vec<TrialScratch>,
    /// Op index of the trailing [`TrialOp::TerminalSample`], or `ops.len()`
    /// when there is none.
    terminal_op: usize,
    terminal: TerminalPlan,
}

impl<'p> TieredEngine<'p> {
    /// Analyzes `program`: walks the shared dominant path once (collapsing
    /// every mid-measure onto its likelier outcome, snapshotting fallback
    /// checkpoints) and precomputes the tier-1 terminal plan from the
    /// path's final state.
    pub fn new(program: &'p TrialProgram) -> Self {
        let ops = program.ops();
        let terminal_op = match ops.last() {
            Some(TrialOp::TerminalSample { .. }) => ops.len() - 1,
            _ => ops.len(),
        };

        let mut walker = program.make_scratch();
        walker.reset();
        let mut measures = Vec::new();
        let mut checkpoints = Vec::new();
        let mut pos = 0usize;
        for (i, op) in ops[..terminal_op].iter().enumerate() {
            let &TrialOp::Measure {
                qubit,
                clbit,
                p_flip,
            } = op
            else {
                continue;
            };
            program.advance_ideal(&mut walker, pos, i);
            let p1 = walker.flush_and_p1(qubit).clamp(0.0, 1.0);
            // Snapshot before the collapse: the fallback for trials whose
            // drawn outcome leaves the dominant path.
            checkpoints.push(walker.clone());
            let dominant = p1 >= 0.5;
            walker.collapse_measured(qubit, dominant, p1);
            measures.push(MeasurePoint {
                op: i as u32,
                qubit,
                clbit,
                p_flip,
                p1,
                dominant,
            });
            pos = i + 1;
        }
        program.advance_ideal(&mut walker, pos, terminal_op);

        let terminal = match ops.get(terminal_op) {
            Some(TrialOp::TerminalSample { measures }) => {
                // Mirror the replay exactly: flush the measured qubits,
                // then accumulate probabilities in canonical order. Runs of
                // adjacent entries sharing a key merge (the scan outcome is
                // unchanged), which collapses classical-output programs to
                // a single entry.
                let mut scratch = walker;
                for &(qubit, _, _) in measures {
                    scratch.flush(qubit);
                }
                let mut cdf: Vec<CdfEntry> = Vec::new();
                let mut cum = 0.0;
                scratch
                    .state()
                    .for_each_canonical_probability(scratch.perm(), |c, p| {
                        cum += p;
                        let mut key = 0u64;
                        for &(qubit, clbit, _) in measures {
                            if c >> qubit & 1 == 1 {
                                key |= 1u64 << clbit;
                            }
                        }
                        match cdf.last_mut() {
                            Some(last) if last.key == key => last.cum = cum,
                            _ => cdf.push(CdfEntry { cum, key }),
                        }
                    });
                let flips = measures
                    .iter()
                    .filter(|&&(_, _, p_flip)| p_flip > 0.0)
                    .map(|&(_, clbit, p_flip)| (clbit, p_flip))
                    .collect();
                TerminalPlan::Sample { cdf, flips }
            }
            _ => TerminalPlan::None,
        };

        TieredEngine {
            program,
            measures,
            checkpoints,
            terminal_op,
            terminal,
        }
    }

    /// Number of noise sites at ops before `op` — the offset into a
    /// trial's event list where a replay starting at `op` begins consuming.
    fn site_index_at(&self, op: usize) -> usize {
        self.program
            .noise_sites()
            .partition_point(|&site| (site as usize) < op)
    }

    /// Draws a trial's outcomes for every measure point before `limit_op`,
    /// exactly as a replay would (Bernoulli on the dominant-path
    /// probability, then the readout flip), stopping at the first outcome
    /// that leaves the dominant path.
    fn walk_measures<R: Rng + ?Sized>(&self, limit_op: usize, rng: &mut R) -> MeasureWalk {
        let mut clbits = 0u64;
        for (k, m) in self.measures.iter().enumerate() {
            if m.op as usize >= limit_op {
                break;
            }
            let outcome = rng.gen_bool(m.p1);
            let mut bit = outcome;
            if m.p_flip > 0.0 && rng.gen_bool(m.p_flip) {
                bit = !bit;
            }
            if bit {
                clbits |= 1u64 << m.clbit;
            }
            if outcome != m.dominant {
                return MeasureWalk {
                    clbits,
                    diverged: Some((k, outcome)),
                };
            }
        }
        MeasureWalk {
            clbits,
            diverged: None,
        }
    }

    /// Resolves the terminal op for an on-dominant-path, error-free trial,
    /// consuming exactly the draws a full replay's terminal op would.
    fn sample_terminal<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match &self.terminal {
            TerminalPlan::Sample { cdf, flips } => {
                let u: f64 = rng.gen();
                // First entry with cum > u — identical to the replay's
                // linear scan, including the trailing-remainder fallback.
                let idx = cdf.partition_point(|e| e.cum <= u).min(cdf.len() - 1);
                let mut key = cdf[idx].key;
                for &(clbit, p_flip) in flips {
                    if rng.gen_bool(p_flip) {
                        key ^= 1u64 << clbit;
                    }
                }
                key
            }
            TerminalPlan::None => 0,
        }
    }

    /// Restores `trial` to the divergence fallback: the checkpoint before
    /// measure `k`, collapsed onto the drawn off-dominant `outcome`.
    fn restore_diverged(&self, trial: &mut TrialScratch, k: usize, outcome: bool) {
        let m = &self.measures[k];
        trial.copy_from(&self.checkpoints[k]);
        trial.collapse_measured(m.qubit, outcome, m.p1);
    }

    /// Simulates trials `[start, end)` of the stream derived from `seed`,
    /// accumulating bit-packed outcome counts into `counts` and tier
    /// occupancy into `tiers`. `scratch` provides every buffer the batch
    /// needs; it is reused across calls without reallocation.
    ///
    /// Outcomes are bit-identical to running [`TrialProgram::run_trial`]
    /// per trial, for any chunking.
    pub fn run_chunk(
        &self,
        seed: u64,
        start: u32,
        end: u32,
        scratch: &mut EngineScratch,
        counts: &mut FxHashMap<u64, u32>,
        tiers: &mut TierCounts,
    ) {
        let program = self.program;
        let sites = program.noise_sites();
        scratch.prepare(program);
        let EngineScratch {
            trial,
            prefix,
            draw,
            arena,
            queue,
        } = scratch;
        let trial = trial.as_mut().expect("prepared above");
        let prefix = prefix.as_mut().expect("prepared above");

        // Phase 1: pre-sample every trial's error pattern (no state work).
        // Error-free trials resolve immediately — through the tier-1 plan
        // when their measure draws stay on the dominant path, from a
        // divergence checkpoint otherwise. Trials with errors queue for
        // checkpointed replay, carrying their events and RNG position.
        for t in start..end {
            let mut rng = TrialRng::new(seed, t);
            match program.pre_sample(draw, &mut rng) {
                None => {
                    let walk = self.walk_measures(self.terminal_op, &mut rng);
                    match walk.diverged {
                        None => {
                            let key = walk.clbits | self.sample_terminal(&mut rng);
                            *counts.entry(key).or_insert(0) += 1;
                            tiers.error_free += 1;
                        }
                        Some((k, outcome)) => {
                            self.restore_diverged(trial, k, outcome);
                            let resume = self.measures[k].op as usize + 1;
                            let key = walk.clbits
                                | program.replay_from(
                                    trial,
                                    resume,
                                    &draw[self.site_index_at(resume)..],
                                    &mut rng,
                                );
                            *counts.entry(key).or_insert(0) += 1;
                            tiers.checkpointed += 1;
                        }
                    }
                }
                Some(s) => {
                    let events_start = arena.len();
                    arena.extend_from_slice(draw);
                    queue.push(PendingTrial {
                        resume_op: sites[s as usize],
                        events_start: events_start as u32,
                        rng,
                    });
                }
            }
        }

        // Phase 2: replay the queued trials in first-error order, advancing
        // the shared dominant-path walker monotonically (collapsing each
        // crossed measure onto its dominant outcome) so each program op is
        // evolved at most once per chunk regardless of how many trials
        // resume behind it.
        queue.sort_by_key(|t| t.resume_op);
        prefix.reset();
        let mut prefix_pos = 0usize;
        let mut prefix_measure = 0usize;
        for pending in queue.drain(..) {
            let resume_op = pending.resume_op as usize;
            while prefix_measure < self.measures.len()
                && (self.measures[prefix_measure].op as usize) < resume_op
            {
                let m = &self.measures[prefix_measure];
                program.advance_ideal(prefix, prefix_pos, m.op as usize);
                prefix.flush(m.qubit);
                prefix.collapse_measured(m.qubit, m.dominant, m.p1);
                prefix_pos = m.op as usize + 1;
                prefix_measure += 1;
            }
            if resume_op > prefix_pos {
                program.advance_ideal(prefix, prefix_pos, resume_op);
                prefix_pos = resume_op;
            }

            let mut rng = pending.rng;
            let events = &arena[pending.events_start as usize..];
            // The trial's own draws for the measures the walker crossed.
            let walk = self.walk_measures(resume_op, &mut rng);
            let key = match walk.diverged {
                None => {
                    trial.copy_from(prefix);
                    walk.clbits
                        | program.replay_from(
                            trial,
                            resume_op,
                            &events[self.site_index_at(resume_op)..],
                            &mut rng,
                        )
                }
                Some((k, outcome)) => {
                    self.restore_diverged(trial, k, outcome);
                    let resume = self.measures[k].op as usize + 1;
                    walk.clbits
                        | program.replay_from(
                            trial,
                            resume,
                            &events[self.site_index_at(resume)..],
                            &mut rng,
                        )
                }
            };
            *counts.entry(key).or_insert(0) += 1;
            if resume_op > 0 || walk.diverged.is_some() {
                tiers.checkpointed += 1;
            } else {
                tiers.full_replay += 1;
            }
        }
        arena.clear();
    }
}

/// A queued tier-2/3 trial: where its replay resumes, its pre-drawn events
/// (an offset into the chunk's event arena), and its RNG positioned after
/// the pre-sampling draws.
#[derive(Debug)]
struct PendingTrial {
    resume_op: u32,
    events_start: u32,
    rng: TrialRng,
}

/// Every reusable buffer a batch needs: the replay scratch, the shared
/// dominant-path walker, the pre-sample draw buffer, the event arena and
/// the pending-trial queue. Acquired from the worker-local pool via
/// [`with_engine_scratch`], so consecutive chunks — and consecutive
/// programs of any width — reuse one allocation per worker.
#[derive(Debug, Default)]
pub struct EngineScratch {
    trial: Option<TrialScratch>,
    prefix: Option<TrialScratch>,
    draw: Vec<TrialEvent>,
    arena: Vec<TrialEvent>,
    queue: Vec<PendingTrial>,
}

impl EngineScratch {
    fn prepare(&mut self, program: &TrialProgram) {
        let n = program.num_qubits();
        for slot in [&mut self.trial, &mut self.prefix] {
            match slot {
                Some(s) => s.ensure(n),
                None => *slot = Some(program.make_scratch()),
            }
        }
        self.draw.clear();
        self.arena.clear();
        self.queue.clear();
    }
}

thread_local! {
    /// Worker-local engine scratch, shared across chunks, runs and
    /// programs: the "reuse scratch and checkpoint buffers instead of
    /// per-chunk reallocation" half of the engine's memory story.
    static ENGINE_SCRATCH: RefCell<EngineScratch> = RefCell::new(EngineScratch::default());
}

/// Runs `f` with the calling worker's reusable [`EngineScratch`].
pub fn with_engine_scratch<R>(f: impl FnOnce(&mut EngineScratch) -> R) -> R {
    ENGINE_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}
