use crate::calibration::Calibration;
use crate::error::MachineError;
use crate::generator::CalibrationGenerator;
use crate::reliability::ReliabilityModel;
use crate::topology::{Topology, TopologySpec};
use std::fmt;

/// A target machine: a topology plus the calibration snapshot the compiler
/// adapts to, bundled with the derived reliability model.
///
/// # Example
///
/// ```
/// use nisq_machine::Machine;
///
/// let machine = Machine::ibmq16_on_day(42, 0);
/// assert_eq!(machine.topology().num_qubits(), 16);
/// assert!(machine.calibration().mean_cnot_error() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    name: String,
    topology: Topology,
    calibration: Calibration,
    reliability: ReliabilityModel,
}

impl Machine {
    /// Creates a machine from a topology and calibration snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the calibration does not cover the topology; use
    /// [`Machine::try_new`] to handle that case as an error.
    pub fn new(
        name: impl Into<String>,
        topology: impl Into<Topology>,
        calibration: Calibration,
    ) -> Self {
        Machine::try_new(name, topology, calibration).expect("calibration must cover the topology")
    }

    /// Creates a machine, validating that the calibration covers the
    /// topology.
    ///
    /// # Errors
    ///
    /// Returns an error if the calibration and topology disagree.
    pub fn try_new(
        name: impl Into<String>,
        topology: impl Into<Topology>,
        calibration: Calibration,
    ) -> Result<Self, MachineError> {
        let topology = topology.into();
        if !topology.is_connected() {
            return Err(MachineError::DisconnectedTopology {
                reachable: topology.connected_count(),
                total: topology.num_qubits(),
            });
        }
        calibration.validate(&topology)?;
        let reliability = ReliabilityModel::new(&topology, &calibration);
        Ok(Machine {
            name: name.into(),
            topology,
            calibration,
            reliability,
        })
    }

    /// Convenience constructor: the IBMQ16 layout with a synthetic
    /// calibration snapshot for the given seed and day.
    pub fn ibmq16_on_day(seed: u64, day: usize) -> Self {
        Machine::from_spec(TopologySpec::Ibmq16, seed, day)
    }

    /// Builds a machine for **any** topology spec with a synthetic
    /// calibration snapshot for the given seed and day — the entry point
    /// for multi-backend scenarios (grids, rings, heavy-hex lattices).
    ///
    /// # Example
    ///
    /// ```
    /// use nisq_machine::{Machine, TopologySpec};
    ///
    /// let ring = Machine::from_spec(TopologySpec::Ring { n: 12 }, 7, 0);
    /// assert_eq!(ring.num_qubits(), 12);
    /// assert_eq!(ring.name(), "ring-12");
    /// ```
    pub fn from_spec(spec: TopologySpec, seed: u64, day: usize) -> Self {
        let topology = spec.build();
        let calibration = CalibrationGenerator::new(topology.clone(), seed).day(day);
        Machine::new(spec.name(), topology, calibration)
    }

    /// Like [`Machine::from_spec`], but validating the spec first so
    /// degenerate parameters (a `ring-2`, a `grid-0x5`) surface as a typed
    /// error instead of a panic — the entry point for untrusted input (the
    /// CLI, the serve daemon).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::DegenerateTopology`] for invalid spec
    /// parameters, or any error [`Machine::try_new`] reports.
    pub fn try_from_spec(spec: TopologySpec, seed: u64, day: usize) -> Result<Self, MachineError> {
        spec.validate()?;
        let topology = spec.build();
        let calibration = CalibrationGenerator::new(topology.clone(), seed).day(day);
        Machine::try_new(spec.name(), topology, calibration)
    }

    /// Machine name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A deterministic 64-bit fingerprint of this machine snapshot: the
    /// coupling graph plus the full calibration data. Two `Machine` values
    /// built from the same spec, seed and day fingerprint identically, and
    /// any change to topology or calibration changes the fingerprint — the
    /// "machine-day" component of compile-cache keys.
    pub fn fingerprint(&self) -> u64 {
        self.topology
            .fingerprint()
            .rotate_left(17)
            .wrapping_mul(0x9e3779b97f4a7c15)
            ^ self.calibration.fingerprint()
    }

    /// The hardware topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The calibration snapshot.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The derived reliability/duration model.
    pub fn reliability(&self) -> &ReliabilityModel {
        &self.reliability
    }

    /// Number of hardware qubits.
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, day {})",
            self.name, self.topology, self.calibration.day
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibmq16_machine_builds() {
        let m = Machine::ibmq16_on_day(0, 0);
        assert_eq!(m.num_qubits(), 16);
        assert_eq!(m.name(), "IBMQ16");
        assert!(m.to_string().contains("8x2 grid"));
    }

    #[test]
    fn try_new_rejects_mismatched_calibration() {
        let small = Topology::grid(2, 2);
        let cal = CalibrationGenerator::new(Topology::ibmq16(), 0).day(0);
        assert!(Machine::try_new("bad", small, cal).is_err());
    }

    #[test]
    fn from_spec_builds_non_grid_machines() {
        for spec in [
            TopologySpec::Ring { n: 10 },
            TopologySpec::HeavyHex { rows: 2, cols: 5 },
            TopologySpec::Grid { mx: 4, my: 4 },
        ] {
            let m = Machine::from_spec(spec, 3, 1);
            assert_eq!(m.num_qubits(), spec.build().num_qubits());
            assert_eq!(m.calibration().day, 1);
            assert!(m.calibration().mean_cnot_error() > 0.0);
        }
    }

    #[test]
    fn reliability_model_matches_calibration() {
        let m = Machine::ibmq16_on_day(9, 2);
        assert_eq!(m.reliability().calibration(), m.calibration());
    }

    #[test]
    fn try_from_spec_rejects_degenerate_specs() {
        for spec in [
            TopologySpec::Ring { n: 2 },
            TopologySpec::Grid { mx: 0, my: 5 },
            TopologySpec::Grid { mx: 4, my: 0 },
            TopologySpec::HeavyHex { rows: 1, cols: 9 },
            TopologySpec::HeavyHex { rows: 3, cols: 2 },
        ] {
            assert!(
                matches!(
                    Machine::try_from_spec(spec, 1, 0),
                    Err(MachineError::DegenerateTopology { .. })
                ),
                "{spec:?} should be rejected"
            );
        }
        assert!(Machine::try_from_spec(TopologySpec::Ring { n: 3 }, 1, 0).is_ok());
    }

    #[test]
    fn try_new_rejects_degenerate_calibration_values() {
        let base = Machine::ibmq16_on_day(7, 0);
        let topology = base.topology().clone();
        let edge = {
            let (a, b) = topology.edges()[0];
            crate::calibration::EdgeId::new(a, b)
        };
        type Poison = Box<dyn Fn(&mut Calibration)>;
        let cases: Vec<(&str, Poison)> = vec![
            (
                "nan cnot",
                Box::new(move |c| {
                    c.cnot_error.insert(edge, f64::NAN);
                }),
            ),
            (
                "zero-reliability cnot",
                Box::new(move |c| {
                    c.cnot_error.insert(edge, 1.0);
                }),
            ),
            (
                "cnot above 1",
                Box::new(move |c| {
                    c.cnot_error.insert(edge, 1.5);
                }),
            ),
            ("negative readout", Box::new(|c| c.readout_error[3] = -0.01)),
            ("readout of 1", Box::new(|c| c.readout_error[3] = 1.0)),
            (
                "nan single-qubit",
                Box::new(|c| c.single_qubit_error[0] = f64::NAN),
            ),
            ("zero t2", Box::new(|c| c.t2_us[5] = 0.0)),
            ("infinite t2", Box::new(|c| c.t2_us[5] = f64::INFINITY)),
            ("zero timeslot", Box::new(|c| c.timeslot_ns = 0.0)),
        ];
        for (what, poison) in cases {
            let mut cal = base.calibration().clone();
            poison(&mut cal);
            let err = Machine::try_new("bad", topology.clone(), cal)
                .expect_err(&format!("{what} should be rejected"));
            assert!(
                matches!(err, MachineError::InvalidCalibration { .. }),
                "{what}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn try_new_rejects_disconnected_topologies() {
        // Two disjoint 2-qubit chains: qubits {0,1} and {2,3}.
        let topology = Topology::custom_for_tests(
            TopologySpec::Grid { mx: 2, my: 2 },
            4,
            vec![
                (crate::HwQubit(0), crate::HwQubit(1)),
                (crate::HwQubit(2), crate::HwQubit(3)),
            ],
        );
        assert!(!topology.is_connected());
        let cal = CalibrationGenerator::new(topology.clone(), 0).day(0);
        let err = Machine::try_new("split", topology, cal).unwrap_err();
        assert!(matches!(
            err,
            MachineError::DisconnectedTopology {
                reachable: 2,
                total: 4
            }
        ));
    }
}
