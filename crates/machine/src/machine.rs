use crate::calibration::Calibration;
use crate::error::MachineError;
use crate::generator::CalibrationGenerator;
use crate::reliability::ReliabilityModel;
use crate::topology::{Topology, TopologySpec};
use std::fmt;

/// A target machine: a topology plus the calibration snapshot the compiler
/// adapts to, bundled with the derived reliability model.
///
/// # Example
///
/// ```
/// use nisq_machine::Machine;
///
/// let machine = Machine::ibmq16_on_day(42, 0);
/// assert_eq!(machine.topology().num_qubits(), 16);
/// assert!(machine.calibration().mean_cnot_error() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    name: String,
    topology: Topology,
    calibration: Calibration,
    reliability: ReliabilityModel,
}

impl Machine {
    /// Creates a machine from a topology and calibration snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the calibration does not cover the topology; use
    /// [`Machine::try_new`] to handle that case as an error.
    pub fn new(
        name: impl Into<String>,
        topology: impl Into<Topology>,
        calibration: Calibration,
    ) -> Self {
        Machine::try_new(name, topology, calibration).expect("calibration must cover the topology")
    }

    /// Creates a machine, validating that the calibration covers the
    /// topology.
    ///
    /// # Errors
    ///
    /// Returns an error if the calibration and topology disagree.
    pub fn try_new(
        name: impl Into<String>,
        topology: impl Into<Topology>,
        calibration: Calibration,
    ) -> Result<Self, MachineError> {
        let topology = topology.into();
        calibration.validate(&topology)?;
        let reliability = ReliabilityModel::new(&topology, &calibration);
        Ok(Machine {
            name: name.into(),
            topology,
            calibration,
            reliability,
        })
    }

    /// Convenience constructor: the IBMQ16 layout with a synthetic
    /// calibration snapshot for the given seed and day.
    pub fn ibmq16_on_day(seed: u64, day: usize) -> Self {
        Machine::from_spec(TopologySpec::Ibmq16, seed, day)
    }

    /// Builds a machine for **any** topology spec with a synthetic
    /// calibration snapshot for the given seed and day — the entry point
    /// for multi-backend scenarios (grids, rings, heavy-hex lattices).
    ///
    /// # Example
    ///
    /// ```
    /// use nisq_machine::{Machine, TopologySpec};
    ///
    /// let ring = Machine::from_spec(TopologySpec::Ring { n: 12 }, 7, 0);
    /// assert_eq!(ring.num_qubits(), 12);
    /// assert_eq!(ring.name(), "ring-12");
    /// ```
    pub fn from_spec(spec: TopologySpec, seed: u64, day: usize) -> Self {
        let topology = spec.build();
        let calibration = CalibrationGenerator::new(topology.clone(), seed).day(day);
        Machine::new(spec.name(), topology, calibration)
    }

    /// Machine name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A deterministic 64-bit fingerprint of this machine snapshot: the
    /// coupling graph plus the full calibration data. Two `Machine` values
    /// built from the same spec, seed and day fingerprint identically, and
    /// any change to topology or calibration changes the fingerprint — the
    /// "machine-day" component of compile-cache keys.
    pub fn fingerprint(&self) -> u64 {
        self.topology
            .fingerprint()
            .rotate_left(17)
            .wrapping_mul(0x9e3779b97f4a7c15)
            ^ self.calibration.fingerprint()
    }

    /// The hardware topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The calibration snapshot.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The derived reliability/duration model.
    pub fn reliability(&self) -> &ReliabilityModel {
        &self.reliability
    }

    /// Number of hardware qubits.
    pub fn num_qubits(&self) -> usize {
        self.topology.num_qubits()
    }
}

impl fmt::Display for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, day {})",
            self.name, self.topology, self.calibration.day
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibmq16_machine_builds() {
        let m = Machine::ibmq16_on_day(0, 0);
        assert_eq!(m.num_qubits(), 16);
        assert_eq!(m.name(), "IBMQ16");
        assert!(m.to_string().contains("8x2 grid"));
    }

    #[test]
    fn try_new_rejects_mismatched_calibration() {
        let small = Topology::grid(2, 2);
        let cal = CalibrationGenerator::new(Topology::ibmq16(), 0).day(0);
        assert!(Machine::try_new("bad", small, cal).is_err());
    }

    #[test]
    fn from_spec_builds_non_grid_machines() {
        for spec in [
            TopologySpec::Ring { n: 10 },
            TopologySpec::HeavyHex { rows: 2, cols: 5 },
            TopologySpec::Grid { mx: 4, my: 4 },
        ] {
            let m = Machine::from_spec(spec, 3, 1);
            assert_eq!(m.num_qubits(), spec.build().num_qubits());
            assert_eq!(m.calibration().day, 1);
            assert!(m.calibration().mean_cnot_error() > 0.0);
        }
    }

    #[test]
    fn reliability_model_matches_calibration() {
        let m = Machine::ibmq16_on_day(9, 2);
        assert_eq!(m.reliability().calibration(), m.calibration());
    }
}
