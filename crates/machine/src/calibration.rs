use crate::error::MachineError;
use crate::topology::{HwQubit, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of an undirected hardware edge (nearest-neighbour qubit pair),
/// stored with the smaller index first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub usize, pub usize);

impl EdgeId {
    /// Creates a canonical edge id regardless of argument order.
    pub fn new(a: HwQubit, b: HwQubit) -> Self {
        if a.0 <= b.0 {
            EdgeId(a.0, b.0)
        } else {
            EdgeId(b.0, a.0)
        }
    }

    /// The two endpoints of the edge.
    pub fn endpoints(&self) -> (HwQubit, HwQubit) {
        (HwQubit(self.0), HwQubit(self.1))
    }
}

/// Gate durations in hardware timeslots (80 ns on IBMQ16).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateDurations {
    /// Duration of every single-qubit gate, in timeslots.
    pub single_qubit_slots: u32,
    /// Duration of a readout operation, in timeslots.
    pub readout_slots: u32,
    /// Per-edge CNOT duration, in timeslots.
    pub cnot_slots: BTreeMap<EdgeId, u32>,
}

impl GateDurations {
    /// CNOT duration on `edge` in timeslots.
    ///
    /// # Errors
    ///
    /// Returns an error if the edge has no calibration entry.
    pub fn cnot(&self, edge: EdgeId) -> Result<u32, MachineError> {
        self.cnot_slots
            .get(&edge)
            .copied()
            .ok_or(MachineError::MissingEdgeCalibration {
                a: edge.0,
                b: edge.1,
            })
    }

    /// Duration of a SWAP on `edge`: three back-to-back CNOTs.
    ///
    /// # Errors
    ///
    /// Returns an error if the edge has no calibration entry.
    pub fn swap(&self, edge: EdgeId) -> Result<u32, MachineError> {
        Ok(self.cnot(edge)? * 3)
    }
}

/// Pre-resolved parameters of one calibrated edge, returned by
/// [`Calibration::edge_params`] so hot consumers (the simulator's trial
/// program lowering) resolve error rate and duration in a single call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeParams {
    /// CNOT error rate on the edge.
    pub cnot_error: f64,
    /// CNOT duration on the edge, in timeslots; `None` when the snapshot
    /// has an error entry but no duration entry for the edge (possible for
    /// hand-built snapshots, whose fields are public).
    pub cnot_slots: Option<u32>,
}

/// One machine calibration snapshot: the data IBM publishes daily and the
/// compiler adapts to (Section 2 of the paper).
///
/// All error quantities are stored as *error rates* in `[0, 1)`;
/// reliabilities are `1 - error`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Day index (0-based) this snapshot corresponds to.
    pub day: usize,
    /// Per-qubit relaxation time T1, in microseconds.
    pub t1_us: Vec<f64>,
    /// Per-qubit coherence time T2, in microseconds.
    pub t2_us: Vec<f64>,
    /// Per-qubit readout (measurement) error rate.
    pub readout_error: Vec<f64>,
    /// Per-qubit single-qubit gate error rate.
    pub single_qubit_error: Vec<f64>,
    /// Per-edge CNOT error rate.
    pub cnot_error: BTreeMap<EdgeId, f64>,
    /// Gate durations in timeslots.
    pub durations: GateDurations,
    /// Timeslot length in nanoseconds.
    pub timeslot_ns: f64,
}

impl Calibration {
    /// Number of hardware qubits this snapshot covers.
    pub fn num_qubits(&self) -> usize {
        self.t2_us.len()
    }

    /// A deterministic 64-bit content fingerprint of this snapshot: the day
    /// index plus every error rate, coherence time and duration (floats by
    /// their IEEE-754 bits). Two snapshots with identical data fingerprint
    /// identically regardless of how they were generated, which is what
    /// identifies a "machine day" for compile caching.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = rustc_hash::FxHasher::default();
        self.day.hash(&mut h);
        for table in [
            &self.t1_us,
            &self.t2_us,
            &self.readout_error,
            &self.single_qubit_error,
        ] {
            for v in table.iter() {
                h.write_u64(v.to_bits());
            }
        }
        for (edge, rate) in &self.cnot_error {
            edge.hash(&mut h);
            h.write_u64(rate.to_bits());
        }
        self.durations.single_qubit_slots.hash(&mut h);
        self.durations.readout_slots.hash(&mut h);
        for (edge, slots) in &self.durations.cnot_slots {
            edge.hash(&mut h);
            slots.hash(&mut h);
        }
        h.write_u64(self.timeslot_ns.to_bits());
        h.finish()
    }

    /// Validates that the snapshot covers exactly the given topology and
    /// carries no degenerate data.
    ///
    /// Coverage: every qubit has per-qubit tables, every topology edge has
    /// a CNOT error rate and duration. Sanity: error rates (readout,
    /// single-qubit, CNOT) must be finite and in `[0, 1)` — an error rate
    /// of 1.0 is a zero-reliability element that silently zeroes or NaNs
    /// every downstream success estimate — and coherence times and the
    /// timeslot length must be positive and finite (a `t2_us` of zero
    /// turns [`Calibration::dephasing_probability`] into `NaN`).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::CalibrationSizeMismatch`],
    /// [`MachineError::MissingEdgeCalibration`] or
    /// [`MachineError::InvalidCalibration`] describing the first problem.
    pub fn validate(&self, topology: &Topology) -> Result<(), MachineError> {
        if self.num_qubits() != topology.num_qubits() {
            return Err(MachineError::CalibrationSizeMismatch {
                topology_qubits: topology.num_qubits(),
                calibration_qubits: self.num_qubits(),
            });
        }
        let invalid = |field: &'static str, element: String, value: f64| {
            Err(MachineError::InvalidCalibration {
                field,
                element,
                value: format!("{value}"),
            })
        };
        if !(self.timeslot_ns.is_finite() && self.timeslot_ns > 0.0) {
            return invalid("timeslot_ns", "-".to_string(), self.timeslot_ns);
        }
        let n = self.num_qubits();
        for (field, table) in [("t1_us", &self.t1_us), ("t2_us", &self.t2_us)] {
            if table.len() != n {
                return Err(MachineError::CalibrationSizeMismatch {
                    topology_qubits: n,
                    calibration_qubits: table.len(),
                });
            }
            for (q, &v) in table.iter().enumerate() {
                if !(v.is_finite() && v > 0.0) {
                    return invalid(field, q.to_string(), v);
                }
            }
        }
        for (field, table) in [
            ("readout_error", &self.readout_error),
            ("single_qubit_error", &self.single_qubit_error),
        ] {
            if table.len() != n {
                return Err(MachineError::CalibrationSizeMismatch {
                    topology_qubits: n,
                    calibration_qubits: table.len(),
                });
            }
            for (q, &v) in table.iter().enumerate() {
                if !(v.is_finite() && (0.0..1.0).contains(&v)) {
                    return invalid(field, q.to_string(), v);
                }
            }
        }
        for (&edge, &rate) in &self.cnot_error {
            if !(rate.is_finite() && (0.0..1.0).contains(&rate)) {
                return invalid("cnot_error", format!("{}-{}", edge.0, edge.1), rate);
            }
        }
        for &(a, b) in topology.edges() {
            let edge = EdgeId::new(a, b);
            if !self.cnot_error.contains_key(&edge) {
                return Err(MachineError::MissingEdgeCalibration {
                    a: edge.0,
                    b: edge.1,
                });
            }
            self.durations.cnot(edge)?;
        }
        Ok(())
    }

    /// Readout error rate of a hardware qubit.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is outside the calibration data.
    pub fn readout_error(&self, q: HwQubit) -> f64 {
        self.readout_error[q.0]
    }

    /// Readout reliability (`1 - error`) of a hardware qubit.
    pub fn readout_reliability(&self, q: HwQubit) -> f64 {
        1.0 - self.readout_error(q)
    }

    /// Single-qubit gate error rate of a hardware qubit.
    pub fn single_qubit_error(&self, q: HwQubit) -> f64 {
        self.single_qubit_error[q.0]
    }

    /// T2 coherence time of a hardware qubit, in microseconds.
    pub fn t2_us(&self, q: HwQubit) -> f64 {
        self.t2_us[q.0]
    }

    /// T2 coherence time of a hardware qubit, in hardware timeslots.
    pub fn t2_slots(&self, q: HwQubit) -> u32 {
        (self.t2_us(q) * 1000.0 / self.timeslot_ns).floor() as u32
    }

    /// CNOT error rate on the edge between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns an error if there is no calibration entry for the pair (for
    /// example because they are not adjacent).
    pub fn cnot_error(&self, a: HwQubit, b: HwQubit) -> Result<f64, MachineError> {
        let edge = EdgeId::new(a, b);
        self.cnot_error
            .get(&edge)
            .copied()
            .ok_or(MachineError::MissingEdgeCalibration {
                a: edge.0,
                b: edge.1,
            })
    }

    /// CNOT reliability (`1 - error`) on the edge between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns an error if there is no calibration entry for the pair.
    pub fn cnot_reliability(&self, a: HwQubit, b: HwQubit) -> Result<f64, MachineError> {
        Ok(1.0 - self.cnot_error(a, b)?)
    }

    /// Reliability of a SWAP between adjacent qubits `a` and `b`: three
    /// CNOTs back to back.
    ///
    /// # Errors
    ///
    /// Returns an error if there is no calibration entry for the pair.
    pub fn swap_reliability(&self, a: HwQubit, b: HwQubit) -> Result<f64, MachineError> {
        Ok(self.cnot_reliability(a, b)?.powi(3))
    }

    /// Error rate and duration of the edge between `a` and `b` in one call,
    /// or `None` when the pair has no CNOT error entry (non-adjacent
    /// qubits). A missing duration entry does not discard the error rate —
    /// it surfaces as `cnot_slots: None` for the caller to default. The
    /// lookup-free per-qubit quantities are already index-addressed
    /// (`readout_error`, `single_qubit_error`, `t2_us`); this is the
    /// per-edge counterpart used by simulator program lowering.
    pub fn edge_params(&self, a: HwQubit, b: HwQubit) -> Option<EdgeParams> {
        let edge = EdgeId::new(a, b);
        let cnot_error = *self.cnot_error.get(&edge)?;
        Some(EdgeParams {
            cnot_error,
            cnot_slots: self.durations.cnot_slots.get(&edge).copied(),
        })
    }

    /// Probability that `q` dephases (acquires a Z error) while idling or
    /// operating for `duration_slots` timeslots: `(1 - exp(-t / T2)) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is outside the calibration data.
    pub fn dephasing_probability(&self, q: HwQubit, duration_slots: u32) -> f64 {
        let t_ns = f64::from(duration_slots) * self.timeslot_ns;
        let t2_ns = self.t2_us(q) * 1000.0;
        (0.5 * (1.0 - (-t_ns / t2_ns).exp())).clamp(0.0, 1.0)
    }

    /// Average CNOT error rate across all calibrated edges.
    pub fn mean_cnot_error(&self) -> f64 {
        if self.cnot_error.is_empty() {
            return 0.0;
        }
        self.cnot_error.values().sum::<f64>() / self.cnot_error.len() as f64
    }

    /// Average readout error rate across all qubits.
    pub fn mean_readout_error(&self) -> f64 {
        if self.readout_error.is_empty() {
            return 0.0;
        }
        self.readout_error.iter().sum::<f64>() / self.readout_error.len() as f64
    }

    /// Average T2 across all qubits, in microseconds.
    pub fn mean_t2_us(&self) -> f64 {
        if self.t2_us.is_empty() {
            return 0.0;
        }
        self.t2_us.iter().sum::<f64>() / self.t2_us.len() as f64
    }

    /// The smallest T2 across all qubits, in timeslots — the bound the
    /// paper compares schedule lengths against.
    pub fn worst_t2_slots(&self) -> u32 {
        (0..self.num_qubits())
            .map(|q| self.t2_slots(HwQubit(q)))
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CalibrationGenerator;

    fn sample() -> (Topology, Calibration) {
        let t = Topology::ibmq16();
        let c = CalibrationGenerator::new(t.clone(), 1).day(0);
        (t, c)
    }

    #[test]
    fn edge_id_is_canonical() {
        assert_eq!(EdgeId::new(HwQubit(5), HwQubit(2)), EdgeId(2, 5));
        assert_eq!(EdgeId::new(HwQubit(2), HwQubit(5)), EdgeId(2, 5));
        assert_eq!(EdgeId(2, 5).endpoints(), (HwQubit(2), HwQubit(5)));
    }

    #[test]
    fn generated_calibration_validates() {
        let (t, c) = sample();
        assert!(c.validate(&t).is_ok());
        assert_eq!(c.num_qubits(), 16);
    }

    #[test]
    fn validate_rejects_wrong_size() {
        let (_, c) = sample();
        let small = Topology::grid(2, 2);
        assert!(matches!(
            c.validate(&small),
            Err(MachineError::CalibrationSizeMismatch { .. })
        ));
    }

    #[test]
    fn reliability_is_one_minus_error() {
        let (t, c) = sample();
        let (a, b) = t.edges()[0];
        let err = c.cnot_error(a, b).unwrap();
        let rel = c.cnot_reliability(a, b).unwrap();
        assert!((err + rel - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_reliability_is_cnot_cubed() {
        let (t, c) = sample();
        let (a, b) = t.edges()[0];
        let rel = c.cnot_reliability(a, b).unwrap();
        assert!((c.swap_reliability(a, b).unwrap() - rel.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn missing_edge_is_an_error() {
        let (_, c) = sample();
        // Qubits 0 and 2 are not adjacent on IBMQ16.
        assert!(matches!(
            c.cnot_error(HwQubit(0), HwQubit(2)),
            Err(MachineError::MissingEdgeCalibration { .. })
        ));
    }

    #[test]
    fn edge_params_matches_individual_accessors() {
        let (t, c) = sample();
        let (a, b) = t.edges()[0];
        let params = c.edge_params(a, b).unwrap();
        assert_eq!(params.cnot_error, c.cnot_error(a, b).unwrap());
        assert_eq!(
            params.cnot_slots,
            Some(c.durations.cnot(EdgeId::new(a, b)).unwrap())
        );
        // Non-adjacent qubits have no entry.
        assert_eq!(c.edge_params(HwQubit(0), HwQubit(2)), None);
        // A snapshot with an error entry but no duration entry keeps the
        // error rate and surfaces the missing duration as None.
        let mut partial = c.clone();
        let edge = EdgeId::new(a, b);
        partial.durations.cnot_slots.remove(&edge);
        let params = partial.edge_params(a, b).unwrap();
        assert_eq!(params.cnot_error, c.cnot_error(a, b).unwrap());
        assert_eq!(params.cnot_slots, None);
    }

    #[test]
    fn dephasing_probability_grows_with_duration() {
        let (_, c) = sample();
        let q = HwQubit(0);
        assert_eq!(c.dephasing_probability(q, 0), 0.0);
        let short = c.dephasing_probability(q, 1);
        let long = c.dephasing_probability(q, 500);
        assert!(short > 0.0 && short < long && long < 0.5);
    }

    #[test]
    fn t2_slots_uses_timeslot_length() {
        let (_, c) = sample();
        let q = HwQubit(0);
        let expected = (c.t2_us(q) * 1000.0 / c.timeslot_ns).floor() as u32;
        assert_eq!(c.t2_slots(q), expected);
        assert!(c.worst_t2_slots() <= c.t2_slots(q));
    }
}
