use std::error::Error;
use std::fmt;

/// Errors produced by the hardware model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MachineError {
    /// A hardware qubit index was outside the topology.
    QubitOutOfRange {
        /// Offending hardware qubit index.
        qubit: usize,
        /// Number of hardware qubits in the topology.
        num_qubits: usize,
    },
    /// A CNOT was requested between qubits that are not adjacent in the
    /// topology.
    NotAdjacent {
        /// First hardware qubit.
        a: usize,
        /// Second hardware qubit.
        b: usize,
    },
    /// Calibration data was requested for an edge that has no entry.
    MissingEdgeCalibration {
        /// First hardware qubit.
        a: usize,
        /// Second hardware qubit.
        b: usize,
    },
    /// The calibration data and topology disagree on machine size.
    CalibrationSizeMismatch {
        /// Number of qubits in the topology.
        topology_qubits: usize,
        /// Number of qubits covered by the calibration data.
        calibration_qubits: usize,
    },
    /// A grid-only operation (one-bend paths, rectangle reservation) was
    /// requested on a topology without a 2-D grid layout.
    NotAGrid {
        /// Display name of the offending topology.
        topology: String,
    },
    /// A calibration snapshot carried a degenerate value — NaN, infinite,
    /// an error rate at or above 1.0 (a zero-reliability element), or a
    /// non-positive coherence time / timeslot length — that would surface
    /// downstream as silent NaN success rates instead of a diagnosis.
    InvalidCalibration {
        /// Which table the value came from (`"cnot_error"`, `"t2_us"`, ...).
        field: &'static str,
        /// Human-readable location of the value (qubit index or edge).
        element: String,
        /// The offending value, formatted (NaN prints as `NaN`).
        value: String,
    },
    /// A topology spec described a degenerate machine (zero-sized grid,
    /// ring below 3 qubits, heavy-hex lattice below 2x3).
    DegenerateTopology {
        /// Display name of the offending spec.
        topology: String,
        /// Why it is degenerate.
        reason: &'static str,
    },
    /// The coupling graph is not connected: some qubit pairs have no
    /// routing path at all, so placement and routing cannot succeed.
    DisconnectedTopology {
        /// Qubits reachable from qubit 0.
        reachable: usize,
        /// Total qubits in the topology.
        total: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "hardware qubit {qubit} out of range for machine with {num_qubits} qubits"
            ),
            MachineError::NotAdjacent { a, b } => {
                write!(f, "hardware qubits {a} and {b} are not adjacent")
            }
            MachineError::MissingEdgeCalibration { a, b } => {
                write!(f, "no calibration data for edge ({a}, {b})")
            }
            MachineError::CalibrationSizeMismatch {
                topology_qubits,
                calibration_qubits,
            } => write!(
                f,
                "calibration covers {calibration_qubits} qubits but topology has {topology_qubits}"
            ),
            MachineError::NotAGrid { topology } => {
                write!(f, "topology {topology} has no 2-D grid layout")
            }
            MachineError::InvalidCalibration {
                field,
                element,
                value,
            } => write!(
                f,
                "degenerate calibration value {field}[{element}] = {value}"
            ),
            MachineError::DegenerateTopology { topology, reason } => {
                write!(f, "degenerate topology {topology}: {reason}")
            }
            MachineError::DisconnectedTopology { reachable, total } => write!(
                f,
                "coupling graph is disconnected: only {reachable} of {total} qubits reachable from qubit 0"
            ),
        }
    }
}

impl Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_contain_indices() {
        let e = MachineError::NotAdjacent { a: 3, b: 9 };
        assert!(e.to_string().contains('3') && e.to_string().contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MachineError>();
    }
}
