use crate::calibration::Calibration;
use crate::error::MachineError;
use crate::topology::{HwQubit, Topology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A most-reliable route between two hardware qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct PathInfo {
    /// Qubits along the route, including both endpoints.
    pub path: Vec<HwQubit>,
    /// Sum of `-ln(CNOT reliability)` over the route's edges (lower is
    /// better). Zero for a path from a qubit to itself.
    pub cost: f64,
}

impl PathInfo {
    /// Number of hops (edges) along the path.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

/// Pre-computed reliability and duration matrices for one machine
/// calibration snapshot.
///
/// This is the quantitative core the mapping algorithms share:
///
/// * most-reliable paths between every pair of hardware qubits (Dijkstra
///   over `-log` CNOT reliabilities, as in Section 5 of the paper),
/// * the reliability of performing a program CNOT between two hardware
///   locations, either along the best path or along one of the two one-bend
///   paths (the paper's `EC` matrix, Constraint 11),
/// * the CNOT duration matrix `Δ` (Constraint 5), including the swaps needed
///   to bring the qubits together and back.
///
/// # Example
///
/// ```
/// use nisq_machine::{CalibrationGenerator, HwQubit, ReliabilityModel, Topology};
///
/// let topology = Topology::ibmq16();
/// let calibration = CalibrationGenerator::new(topology.clone(), 0).day(0);
/// let model = ReliabilityModel::new(&topology, &calibration);
/// let direct = model.best_path_cnot_reliability(HwQubit(0), HwQubit(1));
/// let far = model.best_path_cnot_reliability(HwQubit(0), HwQubit(15));
/// assert!(direct > far, "distant CNOTs need swaps and are less reliable");
/// ```
#[derive(Debug, Clone)]
pub struct ReliabilityModel {
    topology: Topology,
    calibration: Calibration,
    /// `paths[a][b]`: most reliable swap path from `a` to `b` (every hop
    /// weighted as one CNOT; the argmin is the same as weighting every hop
    /// as a 3-CNOT SWAP, so this is the optimal full-swap route).
    paths: Vec<Vec<PathInfo>>,
    /// `cnot_routes[a][b]`: most reliable *CNOT route* from `a` to `b`:
    /// intermediate hops are 3-CNOT SWAPs, the final hop is the CNOT itself.
    /// Because the final hop is weighted differently, this can differ from
    /// `paths[a][b]`.
    cnot_routes: Vec<Vec<PathInfo>>,
}

impl ReliabilityModel {
    /// Builds the model for a topology and calibration snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the calibration does not cover the topology; call
    /// [`Calibration::validate`] first to handle that case as an error.
    pub fn new(topology: &Topology, calibration: &Calibration) -> Self {
        calibration
            .validate(topology)
            .expect("calibration must cover the topology");
        let n = topology.num_qubits();
        let mut paths = Vec::with_capacity(n);
        let mut cnot_routes = Vec::with_capacity(n);
        for source in 0..n {
            paths.push(Self::dijkstra(topology, calibration, HwQubit(source)));
            cnot_routes.push(Self::cnot_route_search(
                topology,
                calibration,
                HwQubit(source),
            ));
        }
        ReliabilityModel {
            topology: topology.clone(),
            calibration: calibration.clone(),
            paths,
            cnot_routes,
        }
    }

    /// The topology the model was built for.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The calibration snapshot the model was built from.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    fn edge_weight(calibration: &Calibration, a: HwQubit, b: HwQubit) -> f64 {
        let rel = calibration
            .cnot_reliability(a, b)
            .expect("adjacent edges always have calibration data");
        -rel.max(1e-9).ln()
    }

    /// Single-source Dijkstra over `hop_scale * -ln(CNOT reliability)` edge
    /// weights, returning the distance and predecessor arrays.
    fn dijkstra_costs(
        topology: &Topology,
        calibration: &Calibration,
        source: HwQubit,
        hop_scale: f64,
    ) -> (Vec<f64>, Vec<Option<usize>>) {
        #[derive(PartialEq)]
        struct Entry {
            cost: f64,
            qubit: usize,
        }
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on cost.
                other
                    .cost
                    .partial_cmp(&self.cost)
                    .unwrap_or(Ordering::Equal)
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = topology.num_qubits();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<usize>> = vec![None; n];
        dist[source.0] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(Entry {
            cost: 0.0,
            qubit: source.0,
        });
        while let Some(Entry { cost, qubit }) = heap.pop() {
            if cost > dist[qubit] {
                continue;
            }
            for &nb in topology.neighbors(HwQubit(qubit)) {
                let w = hop_scale * Self::edge_weight(calibration, HwQubit(qubit), nb);
                let next = cost + w;
                if next < dist[nb.0] {
                    dist[nb.0] = next;
                    prev[nb.0] = Some(qubit);
                    heap.push(Entry {
                        cost: next,
                        qubit: nb.0,
                    });
                }
            }
        }
        (dist, prev)
    }

    fn walk_back(prev: &[Option<usize>], source: HwQubit, target: usize) -> Vec<HwQubit> {
        let mut path = Vec::new();
        let mut cur = Some(target);
        while let Some(q) = cur {
            path.push(HwQubit(q));
            if q == source.0 {
                break;
            }
            cur = prev[q];
        }
        path.reverse();
        path
    }

    fn dijkstra(topology: &Topology, calibration: &Calibration, source: HwQubit) -> Vec<PathInfo> {
        let n = topology.num_qubits();
        let (dist, prev) = Self::dijkstra_costs(topology, calibration, source, 1.0);
        (0..n)
            .map(|target| PathInfo {
                path: Self::walk_back(&prev, source, target),
                cost: dist[target],
            })
            .collect()
    }

    /// Most reliable *CNOT routes* from `source`: intermediate hops cost a
    /// full 3-CNOT SWAP, the final hop only the CNOT itself. The swap chain
    /// is searched with swap-cubed edge weights, then each target's route is
    /// the best choice of "swap to a neighbour `nb` of the target, CNOT on
    /// the `nb`–target edge" — including the degenerate chain `nb = source`,
    /// so a direct edge is always a candidate.
    fn cnot_route_search(
        topology: &Topology,
        calibration: &Calibration,
        source: HwQubit,
    ) -> Vec<PathInfo> {
        let n = topology.num_qubits();
        let (swap_dist, swap_prev) = Self::dijkstra_costs(topology, calibration, source, 3.0);
        (0..n)
            .map(|target| {
                if target == source.0 {
                    return PathInfo {
                        path: vec![source],
                        cost: 0.0,
                    };
                }
                let mut best: Option<(f64, Vec<HwQubit>)> = None;
                for &nb in topology.neighbors(HwQubit(target)) {
                    if swap_dist[nb.0].is_infinite() {
                        continue;
                    }
                    let cost =
                        swap_dist[nb.0] + Self::edge_weight(calibration, nb, HwQubit(target));
                    if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                        let chain = Self::walk_back(&swap_prev, source, nb.0);
                        // A strictly better chain never passes through the
                        // target (its predecessor on that chain would be a
                        // cheaper candidate), but guard against float ties.
                        if chain.contains(&HwQubit(target)) {
                            continue;
                        }
                        best = Some((cost, chain));
                    }
                }
                match best {
                    Some((cost, mut path)) => {
                        path.push(HwQubit(target));
                        PathInfo { path, cost }
                    }
                    // Disconnected target (cannot happen on the built-in
                    // topologies, all of which are connected).
                    None => PathInfo {
                        path: Self::walk_back(&swap_prev, source, target),
                        cost: f64::INFINITY,
                    },
                }
            })
            .collect()
    }

    /// The most reliable path from `a` to `b` (Dijkstra over `-log` CNOT
    /// reliability edge weights). This is the optimal route when *every*
    /// hop costs the same (e.g. a full swap chain); see
    /// [`ReliabilityModel::best_cnot_route`] for the route a program CNOT
    /// should take.
    pub fn best_path(&self, a: HwQubit, b: HwQubit) -> &PathInfo {
        &self.paths[a.0][b.0]
    }

    /// The most reliable route for a program CNOT from `a` to `b`: SWAPs
    /// (three CNOTs, i.e. swap-cubed edge weights) on every hop except the
    /// last, then the hardware CNOT on the final edge. Its `cost` is the
    /// summed `-ln` reliability of exactly that operation sequence, so
    /// `exp(-cost)` is the route's CNOT reliability.
    pub fn best_cnot_route(&self, a: HwQubit, b: HwQubit) -> &PathInfo {
        &self.cnot_routes[a.0][b.0]
    }

    /// Reliability of the most reliable *swap route* between `a` and `b`
    /// assuming every hop is a full SWAP (three CNOTs). Equals 1 for a
    /// qubit with itself.
    pub fn best_path_swap_reliability(&self, a: HwQubit, b: HwQubit) -> f64 {
        (-3.0 * self.best_path(a, b).cost).exp()
    }

    /// Reliability of performing a program CNOT between hardware locations
    /// `a` and `b` using the most reliable route: SWAPs along every hop
    /// except the last, then the hardware CNOT on the final edge. The route
    /// is searched with swap-cubed intermediate edge weights and a
    /// single-CNOT final hop, so it is optimal for exactly that cost model
    /// (for adjacent pairs the direct edge is always a candidate and is
    /// therefore never beaten).
    pub fn best_path_cnot_reliability(&self, a: HwQubit, b: HwQubit) -> f64 {
        if a == b {
            return 1.0;
        }
        Self::route_cnot_reliability(&self.calibration, &self.best_cnot_route(a, b).path)
    }

    fn route_cnot_reliability(calibration: &Calibration, path: &[HwQubit]) -> f64 {
        debug_assert!(path.len() >= 2);
        let mut rel = 1.0;
        for (i, pair) in path.windows(2).enumerate() {
            let edge_rel = calibration
                .cnot_reliability(pair[0], pair[1])
                .expect("path edges are adjacent");
            if i + 2 == path.len() {
                // Final hop: the CNOT itself.
                rel *= edge_rel;
            } else {
                // Intermediate hop: a SWAP (three CNOTs).
                rel *= edge_rel.powi(3);
            }
        }
        rel
    }

    fn require_grid(&self) -> Result<&crate::topology::GridTopology, MachineError> {
        self.topology
            .as_grid()
            .ok_or_else(|| MachineError::NotAGrid {
                topology: self.topology.to_string(),
            })
    }

    /// Reliability of a program CNOT between `control` and `target` routed
    /// along the one-bend path through `junction` (the paper's `EC` matrix,
    /// Constraint 11). `junction` must be one of the two corners returned by
    /// [`crate::GridTopology::junctions`].
    ///
    /// # Errors
    ///
    /// Returns an error if control and target are the same qubit, or the
    /// topology has no grid layout (one-bend paths are a grid concept).
    pub fn one_bend_cnot_reliability(
        &self,
        control: HwQubit,
        target: HwQubit,
        junction: HwQubit,
    ) -> Result<f64, MachineError> {
        if control == target {
            return Err(MachineError::NotAdjacent {
                a: control.0,
                b: target.0,
            });
        }
        let path = self
            .require_grid()?
            .one_bend_path(control, target, junction);
        Ok(Self::route_cnot_reliability(&self.calibration, &path))
    }

    /// The better of the two one-bend options for a CNOT between `control`
    /// and `target`: returns `(junction, reliability)`.
    ///
    /// # Errors
    ///
    /// Returns an error if control and target are the same qubit, or the
    /// topology has no grid layout.
    pub fn best_one_bend(
        &self,
        control: HwQubit,
        target: HwQubit,
    ) -> Result<(HwQubit, f64), MachineError> {
        let (j1, j2) = self.require_grid()?.junctions(control, target);
        let r1 = self.one_bend_cnot_reliability(control, target, j1)?;
        let r2 = self.one_bend_cnot_reliability(control, target, j2)?;
        Ok(if r1 >= r2 { (j1, r1) } else { (j2, r2) })
    }

    /// Duration, in timeslots, of a program CNOT between hardware locations
    /// `a` and `b` routed along `path`, following the paper's model: swaps
    /// to bring the qubits adjacent, the CNOT, and swaps to return them
    /// (`2 * (hops - 1) * tau_swap + tau_cnot`), using per-edge durations.
    fn route_cnot_duration(&self, path: &[HwQubit]) -> u32 {
        debug_assert!(path.len() >= 2);
        let mut total = 0u32;
        for (i, pair) in path.windows(2).enumerate() {
            let edge = crate::calibration::EdgeId::new(pair[0], pair[1]);
            let cnot = self
                .calibration
                .durations
                .cnot(edge)
                .expect("path edges have durations");
            if i + 2 == path.len() {
                total += cnot;
            } else {
                // Swap out and back: 2 * 3 CNOTs.
                total += 6 * cnot;
            }
        }
        total
    }

    /// Duration of a CNOT between `a` and `b` along the most reliable CNOT
    /// route, in timeslots (the calibration-aware `Δ` matrix of
    /// Constraint 5).
    pub fn best_path_cnot_duration(&self, a: HwQubit, b: HwQubit) -> u32 {
        if a == b {
            return 0;
        }
        self.route_cnot_duration(&self.best_cnot_route(a, b).path)
    }

    /// Duration of a CNOT between `control` and `target` along the one-bend
    /// path through `junction`, in timeslots.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no grid layout (one-bend paths are a grid
    /// concept; check [`Topology::as_grid`] first).
    pub fn one_bend_cnot_duration(
        &self,
        control: HwQubit,
        target: HwQubit,
        junction: HwQubit,
    ) -> u32 {
        if control == target {
            return 0;
        }
        let path = self
            .topology
            .as_grid()
            .expect("one-bend durations require a grid topology")
            .one_bend_path(control, target, junction);
        self.route_cnot_duration(&path)
    }

    /// Duration of a CNOT between two locations assuming every hardware CNOT
    /// takes the same `uniform_cnot_slots` (the calibration-unaware model
    /// used by the paper's T-SMT variant).
    pub fn uniform_cnot_duration(&self, a: HwQubit, b: HwQubit, uniform_cnot_slots: u32) -> u32 {
        if a == b {
            return 0;
        }
        let dist = self.topology.distance(a, b) as u32;
        2 * (dist - 1) * 3 * uniform_cnot_slots + uniform_cnot_slots
    }

    /// Readout reliability of a hardware qubit.
    pub fn readout_reliability(&self, q: HwQubit) -> f64 {
        self.calibration.readout_reliability(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CalibrationGenerator;

    fn model() -> ReliabilityModel {
        let t = Topology::ibmq16();
        let c = CalibrationGenerator::new(t.clone(), 3).day(0);
        ReliabilityModel::new(&t, &c)
    }

    #[test]
    fn best_path_endpoints_are_correct() {
        let m = model();
        let p = m.best_path(HwQubit(0), HwQubit(11));
        assert_eq!(p.path.first(), Some(&HwQubit(0)));
        assert_eq!(p.path.last(), Some(&HwQubit(11)));
        for pair in p.path.windows(2) {
            assert!(m.topology().adjacent(pair[0], pair[1]));
        }
    }

    #[test]
    fn self_path_has_zero_cost() {
        let m = model();
        let p = m.best_path(HwQubit(5), HwQubit(5));
        assert_eq!(p.hops(), 0);
        assert_eq!(p.cost, 0.0);
        assert_eq!(m.best_path_cnot_reliability(HwQubit(5), HwQubit(5)), 1.0);
    }

    #[test]
    fn adjacent_cnot_reliability_matches_calibration() {
        let m = model();
        let direct = m.best_path_cnot_reliability(HwQubit(0), HwQubit(1));
        let cal = m
            .calibration()
            .cnot_reliability(HwQubit(0), HwQubit(1))
            .unwrap();
        // The best path between adjacent qubits is usually the direct edge;
        // it can only be better than or equal to the direct reliability.
        assert!(direct >= cal - 1e-12);
    }

    #[test]
    fn reliability_decreases_with_distance_on_average() {
        let m = model();
        let near = m.best_path_cnot_reliability(HwQubit(0), HwQubit(1));
        let far = m.best_path_cnot_reliability(HwQubit(0), HwQubit(15));
        assert!(near > far);
    }

    #[test]
    fn path_cost_is_symmetric() {
        let m = model();
        for a in 0..16 {
            for b in 0..16 {
                let ab = m.best_path(HwQubit(a), HwQubit(b)).cost;
                let ba = m.best_path(HwQubit(b), HwQubit(a)).cost;
                assert!((ab - ba).abs() < 1e-9, "asymmetric cost {a}->{b}");
            }
        }
    }

    #[test]
    fn best_one_bend_picks_the_better_junction() {
        let m = model();
        for a in 0..16usize {
            for b in 0..16usize {
                if a == b {
                    continue;
                }
                let (ja, jb) = m
                    .topology()
                    .as_grid()
                    .unwrap()
                    .junctions(HwQubit(a), HwQubit(b));
                let r1 = m
                    .one_bend_cnot_reliability(HwQubit(a), HwQubit(b), ja)
                    .unwrap();
                let r2 = m
                    .one_bend_cnot_reliability(HwQubit(a), HwQubit(b), jb)
                    .unwrap();
                let (_, best) = m.best_one_bend(HwQubit(a), HwQubit(b)).unwrap();
                assert!((best - r1.max(r2)).abs() < 1e-12);
                assert!(best > 0.0 && best <= 1.0);
            }
        }
    }

    #[test]
    fn best_path_swap_route_is_optimal_among_one_bend_routes() {
        // The Dijkstra paths minimise the summed -log CNOT reliability, so a
        // swap-only route along them is at least as reliable as a swap-only
        // route along either one-bend path.
        let m = model();
        for a in 0..16usize {
            for b in 0..16usize {
                if a == b {
                    continue;
                }
                let best = m.best_path_swap_reliability(HwQubit(a), HwQubit(b));
                let (ja, jb) = m
                    .topology()
                    .as_grid()
                    .unwrap()
                    .junctions(HwQubit(a), HwQubit(b));
                for j in [ja, jb] {
                    let path =
                        m.topology()
                            .as_grid()
                            .unwrap()
                            .one_bend_path(HwQubit(a), HwQubit(b), j);
                    let mut rel = 1.0;
                    for pair in path.windows(2) {
                        rel *= m
                            .calibration()
                            .cnot_reliability(pair[0], pair[1])
                            .unwrap()
                            .powi(3);
                    }
                    assert!(best >= rel - 1e-12, "{a}->{b} best {best} < one-bend {rel}");
                }
            }
        }
    }

    #[test]
    fn cnot_route_is_valid_and_matches_its_cost() {
        let m = model();
        for a in 0..16usize {
            for b in 0..16usize {
                let route = m.best_cnot_route(HwQubit(a), HwQubit(b));
                assert_eq!(route.path.first(), Some(&HwQubit(a)));
                assert_eq!(route.path.last(), Some(&HwQubit(b)));
                for pair in route.path.windows(2) {
                    assert!(m.topology().adjacent(pair[0], pair[1]));
                }
                let rel = m.best_path_cnot_reliability(HwQubit(a), HwQubit(b));
                assert!(
                    ((-route.cost).exp() - rel).abs() < 1e-12,
                    "{a}->{b}: cost {} vs reliability {rel}",
                    route.cost
                );
            }
        }
    }

    #[test]
    fn cnot_route_never_loses_to_swap_path_or_direct_edge() {
        // The corrected search (swap-cubed intermediate weights, single
        // final hop) must weakly beat both strategies the old code used:
        // executing the CNOT along the swap-optimal path, and the direct
        // edge for adjacent pairs.
        let t = Topology::ibmq16();
        for day in 0..4 {
            let c = CalibrationGenerator::new(t.clone(), 3).day(day);
            let m = ReliabilityModel::new(&t, &c);
            for a in 0..16usize {
                for b in 0..16usize {
                    if a == b {
                        continue;
                    }
                    let fixed = m.best_path_cnot_reliability(HwQubit(a), HwQubit(b));
                    let legacy = ReliabilityModel::route_cnot_reliability(
                        m.calibration(),
                        &m.best_path(HwQubit(a), HwQubit(b)).path,
                    );
                    assert!(
                        fixed >= legacy - 1e-12,
                        "day {day} {a}->{b}: corrected {fixed} < legacy {legacy}"
                    );
                    if let Ok(direct) = c.cnot_reliability(HwQubit(a), HwQubit(b)) {
                        assert!(fixed >= direct - 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn one_bend_rejects_equal_qubits() {
        let m = model();
        assert!(m.best_one_bend(HwQubit(3), HwQubit(3)).is_err());
    }

    #[test]
    fn adjacent_duration_is_single_cnot() {
        let m = model();
        let edge = crate::calibration::EdgeId::new(HwQubit(0), HwQubit(1));
        let cnot = m.calibration().durations.cnot(edge).unwrap();
        // For adjacent qubits the best path may detour only if it were more
        // reliable, but duration along the direct one-bend path equals the
        // CNOT duration.
        assert_eq!(
            m.one_bend_cnot_duration(HwQubit(0), HwQubit(1), HwQubit(1)),
            cnot
        );
    }

    #[test]
    fn uniform_duration_matches_paper_formula() {
        let m = model();
        // distance 3 => 2*(3-1) swaps of 3 CNOTs each, plus the CNOT.
        let d = m.uniform_cnot_duration(HwQubit(0), HwQubit(3), 4);
        assert_eq!(d, 2 * 2 * 3 * 4 + 4);
        assert_eq!(m.uniform_cnot_duration(HwQubit(0), HwQubit(0), 4), 0);
    }

    #[test]
    fn farther_pairs_take_longer() {
        let m = model();
        let near = m.best_path_cnot_duration(HwQubit(0), HwQubit(1));
        let far = m.best_path_cnot_duration(HwQubit(0), HwQubit(15));
        assert!(far > near);
    }
}
