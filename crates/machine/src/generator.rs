//! Synthetic calibration generation.
//!
//! The paper drives its compiler with IBM's daily calibration logs. Those
//! logs are not available offline, so this module generates statistically
//! matched snapshots: the published averages (T2 ≈ 70 µs, CNOT error ≈ 0.04,
//! readout error ≈ 0.07, single-qubit error ≈ 0.002), their spatial spread
//! across qubits/edges (up to ~9× for T2 and CNOT error, ~6× for readout)
//! and day-to-day drift (Figure 1), including the occasional very unreliable
//! edge visible in Figure 1b.
//!
//! Each hardware element gets a persistent "quality" factor (so good qubits
//! stay good across days, as on the real machine) multiplied by a daily
//! fluctuation, both derived deterministically from the generator seed.

use crate::calibration::{Calibration, EdgeId, GateDurations};
use crate::topology::Topology;
use crate::TIMESLOT_NS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Target statistics for generated calibration data. The defaults are the
/// IBMQ16 values reported in Section 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationStatistics {
    /// Mean qubit coherence time T2 in microseconds.
    pub mean_t2_us: f64,
    /// Mean CNOT gate error rate.
    pub mean_cnot_error: f64,
    /// Mean readout error rate.
    pub mean_readout_error: f64,
    /// Mean single-qubit gate error rate.
    pub mean_single_qubit_error: f64,
    /// Baseline CNOT duration in timeslots (durations vary ~1.8x per edge).
    pub base_cnot_slots: f64,
    /// Probability that an edge has an outlier "bad day" with a very high
    /// CNOT error rate (the spikes of Figure 1b).
    pub bad_edge_probability: f64,
}

impl Default for CalibrationStatistics {
    fn default() -> Self {
        CalibrationStatistics {
            mean_t2_us: 70.0,
            mean_cnot_error: 0.04,
            mean_readout_error: 0.07,
            mean_single_qubit_error: 0.002,
            base_cnot_slots: 4.4,
            bad_edge_probability: 0.04,
        }
    }
}

/// Deterministic generator of daily [`Calibration`] snapshots for a given
/// topology and seed. Works for **any** [`Topology`] (grids, rings,
/// heavy-hex lattices): the statistics are per-qubit and per-edge, so the
/// coupling graph alone determines the snapshot's shape.
///
/// # Example
///
/// ```
/// use nisq_machine::{CalibrationGenerator, Topology};
///
/// let generator = CalibrationGenerator::new(Topology::ibmq16(), 7);
/// let monday = generator.day(0);
/// let tuesday = generator.day(1);
/// assert_ne!(monday, tuesday);
/// // Calling again for the same day gives the identical snapshot.
/// assert_eq!(monday, generator.day(0));
///
/// // Any topology works, e.g. a 12-qubit ring:
/// let ring = CalibrationGenerator::new(Topology::ring(12), 7).day(0);
/// assert_eq!(ring.num_qubits(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct CalibrationGenerator {
    topology: Topology,
    seed: u64,
    stats: CalibrationStatistics,
}

/// Domain separators for the per-element random streams.
const STREAM_SPATIAL: u64 = 0x51;
const STREAM_TEMPORAL: u64 = 0x7e;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn mix(seed: u64, stream: u64, day: u64, element: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(seed ^ stream) ^ day.wrapping_mul(0x9e37)) ^ element)
}

/// Samples a log-normal factor with median 1 and the given log-space sigma,
/// clamped to `[lo, hi]`.
fn lognormal_factor(rng: &mut StdRng, sigma: f64, lo: f64, hi: f64) -> f64 {
    // Box-Muller transform from two uniforms.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * normal).exp().clamp(lo, hi)
}

impl CalibrationGenerator {
    /// Creates a generator with the paper's default statistics.
    pub fn new(topology: impl Into<Topology>, seed: u64) -> Self {
        CalibrationGenerator {
            topology: topology.into(),
            seed,
            stats: CalibrationStatistics::default(),
        }
    }

    /// Creates a generator with custom target statistics.
    pub fn with_statistics(
        topology: impl Into<Topology>,
        seed: u64,
        stats: CalibrationStatistics,
    ) -> Self {
        CalibrationGenerator {
            topology: topology.into(),
            seed,
            stats,
        }
    }

    /// The topology this generator produces calibrations for.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The target statistics.
    pub fn statistics(&self) -> &CalibrationStatistics {
        &self.stats
    }

    fn spatial_rng(&self, element: u64) -> StdRng {
        StdRng::seed_from_u64(mix(self.seed, STREAM_SPATIAL, 0, element))
    }

    fn temporal_rng(&self, day: usize, element: u64) -> StdRng {
        StdRng::seed_from_u64(mix(self.seed, STREAM_TEMPORAL, day as u64, element))
    }

    /// Generates the calibration snapshot for a given day index.
    pub fn day(&self, day: usize) -> Calibration {
        let n = self.topology.num_qubits();
        let mut t1_us = Vec::with_capacity(n);
        let mut t2_us = Vec::with_capacity(n);
        let mut readout_error = Vec::with_capacity(n);
        let mut single_qubit_error = Vec::with_capacity(n);

        for q in 0..n {
            let mut spatial = self.spatial_rng(q as u64);
            let mut temporal = self.temporal_rng(day, q as u64);

            // T2: persistent quality times daily drift, clamped to the range
            // observed in Figure 1a (roughly 15-130 us).
            let t2 = (self.stats.mean_t2_us
                * lognormal_factor(&mut spatial, 0.45, 0.3, 1.7)
                * lognormal_factor(&mut temporal, 0.25, 0.55, 1.7))
            .clamp(14.0, 135.0);
            t2_us.push(t2);
            // T1 is loosely correlated with T2 and not used by the mapper;
            // keep it in the snapshot for completeness.
            t1_us.push(t2 * spatial.gen_range(0.9..1.6));

            let ro = (self.stats.mean_readout_error
                * lognormal_factor(&mut spatial, 0.40, 0.3, 2.6)
                * lognormal_factor(&mut temporal, 0.25, 0.55, 1.8))
            .clamp(0.015, 0.35);
            readout_error.push(ro);

            let sq = (self.stats.mean_single_qubit_error
                * lognormal_factor(&mut spatial, 0.30, 0.4, 2.0)
                * lognormal_factor(&mut temporal, 0.20, 0.6, 1.6))
            .clamp(5e-4, 1e-2);
            single_qubit_error.push(sq);
        }

        let mut cnot_error = BTreeMap::new();
        let mut cnot_slots = BTreeMap::new();
        for (i, &(a, b)) in self.topology.edges().iter().enumerate() {
            let edge = EdgeId::new(a, b);
            let element = 1_000 + i as u64;
            let mut spatial = self.spatial_rng(element);
            let mut temporal = self.temporal_rng(day, element);

            let mut err = self.stats.mean_cnot_error
                * lognormal_factor(&mut spatial, 0.50, 0.28, 2.6)
                * lognormal_factor(&mut temporal, 0.30, 0.5, 2.0);
            // Occasional very unreliable edge (Figure 1b shows spikes with
            // error rates of 0.15-0.35).
            if temporal.gen_bool(self.stats.bad_edge_probability) {
                err *= temporal.gen_range(3.0..6.0);
            }
            cnot_error.insert(edge, err.clamp(0.008, 0.35));

            // CNOT durations vary ~1.8x across edges but are stable in time.
            let slots = (self.stats.base_cnot_slots * spatial.gen_range(0.72..1.32)).round() as u32;
            cnot_slots.insert(edge, slots.max(2));
        }

        Calibration {
            day,
            t1_us,
            t2_us,
            readout_error,
            single_qubit_error,
            cnot_error,
            durations: GateDurations {
                single_qubit_slots: 1,
                readout_slots: 4,
                cnot_slots,
            },
            timeslot_ns: TIMESLOT_NS,
        }
    }

    /// Generates the first `n` daily snapshots.
    pub fn days(&self, n: usize) -> Vec<Calibration> {
        (0..n).map(|d| self.day(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator() -> CalibrationGenerator {
        CalibrationGenerator::new(Topology::ibmq16(), 2024)
    }

    #[test]
    fn snapshots_are_deterministic() {
        let g = generator();
        assert_eq!(g.day(3), g.day(3));
        assert_eq!(g.days(2), g.days(2));
    }

    #[test]
    fn different_days_differ() {
        let g = generator();
        assert_ne!(g.day(0), g.day(1));
    }

    #[test]
    fn different_seeds_differ() {
        let t = Topology::ibmq16();
        let a = CalibrationGenerator::new(t.clone(), 1).day(0);
        let b = CalibrationGenerator::new(t, 2).day(0);
        assert_ne!(a, b);
    }

    #[test]
    fn snapshot_validates_against_topology() {
        let g = generator();
        let c = g.day(0);
        assert!(c.validate(g.topology()).is_ok());
    }

    #[test]
    fn long_run_averages_match_paper_statistics() {
        let g = generator();
        let days = g.days(30);
        let mean_t2: f64 = days.iter().map(|c| c.mean_t2_us()).sum::<f64>() / 30.0;
        let mean_cnot: f64 = days.iter().map(|c| c.mean_cnot_error()).sum::<f64>() / 30.0;
        let mean_ro: f64 = days.iter().map(|c| c.mean_readout_error()).sum::<f64>() / 30.0;
        assert!((50.0..95.0).contains(&mean_t2), "mean T2 was {mean_t2}");
        assert!(
            (0.025..0.065).contains(&mean_cnot),
            "mean CNOT error was {mean_cnot}"
        );
        assert!(
            (0.045..0.105).contains(&mean_ro),
            "mean readout error was {mean_ro}"
        );
    }

    #[test]
    fn spatial_and_temporal_variation_is_large() {
        let g = generator();
        let days = g.days(30);
        let mut min_cnot = f64::INFINITY;
        let mut max_cnot: f64 = 0.0;
        let mut min_t2 = f64::INFINITY;
        let mut max_t2: f64 = 0.0;
        for c in &days {
            for &e in c.cnot_error.values() {
                min_cnot = min_cnot.min(e);
                max_cnot = max_cnot.max(e);
            }
            for &t in &c.t2_us {
                min_t2 = min_t2.min(t);
                max_t2 = max_t2.max(t);
            }
        }
        // The paper reports up to 9x variation for both quantities.
        assert!(
            max_cnot / min_cnot > 3.0,
            "cnot ratio {}",
            max_cnot / min_cnot
        );
        assert!(max_t2 / min_t2 > 3.0, "t2 ratio {}", max_t2 / min_t2);
    }

    #[test]
    fn qubit_quality_persists_across_days() {
        // Spatial factors are persistent: the best qubit on day 0 should
        // still be above-average on day 1 most of the time. We check a rank
        // correlation proxy: the qubit with max T2 on day 0 stays in the top
        // half on day 1.
        let g = generator();
        let d0 = g.day(0);
        let d1 = g.day(1);
        let best0 = (0..16)
            .max_by(|&a, &b| d0.t2_us[a].partial_cmp(&d0.t2_us[b]).unwrap())
            .unwrap();
        let mut ranked: Vec<usize> = (0..16).collect();
        ranked.sort_by(|&a, &b| d1.t2_us[b].partial_cmp(&d1.t2_us[a]).unwrap());
        let rank = ranked.iter().position(|&q| q == best0).unwrap();
        assert!(rank < 8, "best qubit fell to rank {rank}");
    }

    #[test]
    fn cnot_durations_vary_across_edges_but_not_days() {
        let g = generator();
        let d0 = g.day(0);
        let d5 = g.day(5);
        assert_eq!(d0.durations.cnot_slots, d5.durations.cnot_slots);
        let min = d0.durations.cnot_slots.values().min().unwrap();
        let max = d0.durations.cnot_slots.values().max().unwrap();
        assert!(max > min, "expected some variation in CNOT durations");
    }

    #[test]
    fn coherence_window_fits_nisq_benchmarks() {
        // The paper notes the worst qubit still has > 300 timeslots of
        // coherence, comfortably above benchmark durations (~150 slots).
        let g = generator();
        for c in g.days(10) {
            assert!(c.worst_t2_slots() > 150, "worst T2 {}", c.worst_t2_slots());
        }
    }

    #[test]
    fn error_rates_stay_in_unit_interval() {
        let g = generator();
        for c in g.days(20) {
            for &e in c.cnot_error.values() {
                assert!(e > 0.0 && e < 0.5);
            }
            for &e in &c.readout_error {
                assert!(e > 0.0 && e < 0.5);
            }
            for &e in &c.single_qubit_error {
                assert!(e > 0.0 && e < 0.05);
            }
        }
    }
}
