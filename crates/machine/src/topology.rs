use crate::error::MachineError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a *hardware* qubit (a physical location on the device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HwQubit(pub usize);

impl fmt::Display for HwQubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

impl From<usize> for HwQubit {
    fn from(value: usize) -> Self {
        HwQubit(value)
    }
}

/// A 2-D grid of hardware qubits with nearest-neighbour CNOT connectivity,
/// the machine model the paper assumes (Section 4.1).
///
/// Qubit `i` sits at column `x = i % mx` and row `y = i / mx`; two qubits
/// may run a hardware CNOT only if they are adjacent horizontally or
/// vertically.
///
/// # Example
///
/// ```
/// use nisq_machine::{GridTopology, HwQubit};
///
/// let t = GridTopology::ibmq16();
/// assert_eq!(t.num_qubits(), 16);
/// assert!(t.adjacent(HwQubit(0), HwQubit(1)));
/// assert!(t.adjacent(HwQubit(0), HwQubit(8)));
/// assert!(!t.adjacent(HwQubit(0), HwQubit(2)));
/// assert_eq!(t.distance(HwQubit(0), HwQubit(15)), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridTopology {
    mx: usize,
    my: usize,
}

impl GridTopology {
    /// Creates an `mx` columns by `my` rows grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(mx: usize, my: usize) -> Self {
        assert!(mx > 0 && my > 0, "grid dimensions must be positive");
        GridTopology { mx, my }
    }

    /// The 16-qubit IBMQ16 Rueschlikon layout: two rows of eight qubits.
    pub fn ibmq16() -> Self {
        GridTopology::new(8, 2)
    }

    /// A square grid with `side * side` qubits, used for the scalability
    /// studies on larger synthetic machines.
    pub fn square(side: usize) -> Self {
        GridTopology::new(side, side)
    }

    /// Smallest grid that holds at least `n` qubits while staying close to
    /// square (used when sweeping machine sizes in the scalability study).
    pub fn at_least(n: usize) -> Self {
        assert!(n > 0, "machine must have at least one qubit");
        let side = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(side);
        GridTopology::new(side, rows.max(1))
    }

    /// Number of columns.
    pub fn mx(&self) -> usize {
        self.mx
    }

    /// Number of rows.
    pub fn my(&self) -> usize {
        self.my
    }

    /// Total number of hardware qubits.
    pub fn num_qubits(&self) -> usize {
        self.mx * self.my
    }

    /// Column/row coordinates of a hardware qubit.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is outside the grid; use [`GridTopology::contains`]
    /// to check first.
    pub fn coords(&self, q: HwQubit) -> (usize, usize) {
        assert!(self.contains(q), "{q} outside {self}");
        (q.0 % self.mx, q.0 / self.mx)
    }

    /// Hardware qubit at the given column/row.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn at(&self, x: usize, y: usize) -> HwQubit {
        assert!(x < self.mx && y < self.my, "({x},{y}) outside {self}");
        HwQubit(y * self.mx + x)
    }

    /// Whether the qubit index is inside the grid.
    pub fn contains(&self, q: HwQubit) -> bool {
        q.0 < self.num_qubits()
    }

    /// Validates that a qubit is inside the grid.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::QubitOutOfRange`] when it is not.
    pub fn check(&self, q: HwQubit) -> Result<(), MachineError> {
        if self.contains(q) {
            Ok(())
        } else {
            Err(MachineError::QubitOutOfRange {
                qubit: q.0,
                num_qubits: self.num_qubits(),
            })
        }
    }

    /// Manhattan distance between two hardware qubits (the `L1` norm used in
    /// the paper's CNOT duration model).
    pub fn distance(&self, a: HwQubit, b: HwQubit) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Whether a hardware CNOT may be applied directly between `a` and `b`.
    pub fn adjacent(&self, a: HwQubit, b: HwQubit) -> bool {
        self.contains(a) && self.contains(b) && a != b && self.distance(a, b) == 1
    }

    /// All undirected nearest-neighbour edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(HwQubit, HwQubit)> {
        let mut out = Vec::new();
        for y in 0..self.my {
            for x in 0..self.mx {
                let q = self.at(x, y);
                if x + 1 < self.mx {
                    out.push((q, self.at(x + 1, y)));
                }
                if y + 1 < self.my {
                    out.push((q, self.at(x, y + 1)));
                }
            }
        }
        out
    }

    /// Nearest neighbours of `q`.
    pub fn neighbors(&self, q: HwQubit) -> Vec<HwQubit> {
        let (x, y) = self.coords(q);
        let mut out = Vec::new();
        if x > 0 {
            out.push(self.at(x - 1, y));
        }
        if x + 1 < self.mx {
            out.push(self.at(x + 1, y));
        }
        if y > 0 {
            out.push(self.at(x, y - 1));
        }
        if y + 1 < self.my {
            out.push(self.at(x, y + 1));
        }
        out
    }

    /// All hardware qubits in index order.
    pub fn qubits(&self) -> impl Iterator<Item = HwQubit> {
        (0..self.num_qubits()).map(HwQubit)
    }

    /// The two one-bend-path junction corners for a control/target pair, in
    /// the order (corner sharing the control's row, corner sharing the
    /// control's column). For qubits in the same row or column both
    /// junctions coincide with the straight-line path.
    pub fn junctions(&self, control: HwQubit, target: HwQubit) -> (HwQubit, HwQubit) {
        let (cx, cy) = self.coords(control);
        let (tx, ty) = self.coords(target);
        (self.at(tx, cy), self.at(cx, ty))
    }

    /// The one-bend path from `from` to `to` through `junction`, as the
    /// full sequence of hardware qubits including both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `junction` does not share a row or column with both
    /// endpoints (i.e. it is not one of the two corners returned by
    /// [`GridTopology::junctions`]).
    pub fn one_bend_path(&self, from: HwQubit, to: HwQubit, junction: HwQubit) -> Vec<HwQubit> {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        let (jx, jy) = self.coords(junction);
        assert!(
            (jx == fx || jy == fy) && (jx == tx || jy == ty),
            "junction {junction} is not a corner of the bounding rectangle of {from} and {to}"
        );
        let mut path = vec![from];
        let push_line = |path: &mut Vec<HwQubit>, x0: usize, y0: usize, x1: usize, y1: usize| {
            // Walk one axis at a time; exactly one of the axes differs.
            if x0 == x1 {
                let range: Vec<usize> = if y0 <= y1 {
                    (y0..=y1).collect()
                } else {
                    (y1..=y0).rev().collect()
                };
                for y in range.into_iter().skip(1) {
                    path.push(self.at(x0, y));
                }
            } else {
                let range: Vec<usize> = if x0 <= x1 {
                    (x0..=x1).collect()
                } else {
                    (x1..=x0).rev().collect()
                };
                for x in range.into_iter().skip(1) {
                    path.push(self.at(x, y0));
                }
            }
        };
        if (jx, jy) != (fx, fy) {
            push_line(&mut path, fx, fy, jx, jy);
        }
        if (jx, jy) != (tx, ty) {
            push_line(&mut path, jx, jy, tx, ty);
        }
        path
    }

    /// The bounding rectangle of two qubits as
    /// `((min_x, min_y), (max_x, max_y))`, used by the rectangle-reservation
    /// routing policy.
    pub fn bounding_rectangle(&self, a: HwQubit, b: HwQubit) -> ((usize, usize), (usize, usize)) {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ((ax.min(bx), ay.min(by)), (ax.max(bx), ay.max(by)))
    }

    /// Whether two axis-aligned rectangles (given as min/max corners)
    /// overlap, the spatial test of routing Constraint 7.
    pub fn rectangles_overlap(
        r1: ((usize, usize), (usize, usize)),
        r2: ((usize, usize), (usize, usize)),
    ) -> bool {
        let ((l1x, l1y), (r1x, r1y)) = r1;
        let ((l2x, l2y), (r2x, r2y)) = r2;
        !(l1x > r2x || r1x < l2x || l1y > r2y || r1y < l2y)
    }
}

impl fmt::Display for GridTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} grid", self.mx, self.my)
    }
}

/// A machine topology family plus its parameters — the pluggable
/// description a [`Topology`] (and from there a whole machine) is built
/// from.
///
/// The paper evaluates one hard-coded device (IBMQ16); the spec opens the
/// same compiler to arbitrary grids, rings and heavy-hex-style lattices so
/// scaling and architecture studies do not need code changes.
///
/// # Example
///
/// ```
/// use nisq_machine::TopologySpec;
///
/// let ring = TopologySpec::Ring { n: 12 }.build();
/// assert_eq!(ring.num_qubits(), 12);
/// assert_eq!(ring.edges().len(), 12);
/// assert!(ring.as_grid().is_none(), "rings have no 2-D grid layout");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TopologySpec {
    /// The 16-qubit IBMQ16 Rueschlikon device (an 8x2 grid), the machine
    /// the paper evaluates on.
    Ibmq16,
    /// An `mx` columns by `my` rows nearest-neighbour grid.
    Grid {
        /// Number of columns.
        mx: usize,
        /// Number of rows.
        my: usize,
    },
    /// A cycle of `n` qubits, each coupled to its two ring neighbours.
    Ring {
        /// Number of qubits (at least 3).
        n: usize,
    },
    /// A heavy-hex-style lattice: `rows` horizontal chains of `cols`
    /// qubits, with consecutive chains linked through dedicated bridge
    /// qubits at every fourth column (offset alternating by row, as on
    /// IBM's heavy-hex devices).
    HeavyHex {
        /// Number of horizontal chains (at least 2).
        rows: usize,
        /// Qubits per chain (at least 3).
        cols: usize,
    },
}

impl TopologySpec {
    /// Builds the concrete [`Topology`] this spec describes.
    pub fn build(self) -> Topology {
        Topology::from_spec(self)
    }

    /// Checks the spec parameters without building anything.
    ///
    /// [`TopologySpec::build`] panics on degenerate parameters; callers
    /// handling untrusted input (the CLI, the serve daemon) call this first
    /// and surface the typed error instead.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::DegenerateTopology`] for zero-sized grids,
    /// rings below 3 qubits, or heavy-hex lattices below 2 rows x 3 columns.
    pub fn validate(&self) -> Result<(), MachineError> {
        let fail = |reason: &'static str| {
            Err(MachineError::DegenerateTopology {
                topology: self.name(),
                reason,
            })
        };
        match *self {
            TopologySpec::Ibmq16 => Ok(()),
            TopologySpec::Grid { mx, my } => {
                if mx == 0 || my == 0 {
                    return fail("grid dimensions must be positive");
                }
                Ok(())
            }
            TopologySpec::Ring { n } => {
                if n < 3 {
                    return fail("a ring needs at least 3 qubits");
                }
                Ok(())
            }
            TopologySpec::HeavyHex { rows, cols } => {
                if rows < 2 || cols < 3 {
                    return fail("a heavy-hex lattice needs at least 2 rows of 3 columns");
                }
                Ok(())
            }
        }
    }

    /// The number of hardware qubits the built topology would have, computed
    /// without building it (building allocates an `n x n` distance matrix,
    /// which admission control must be able to refuse *before* paying for).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::DegenerateTopology`] when the spec does not
    /// validate.
    pub fn qubit_count(&self) -> Result<usize, MachineError> {
        self.validate()?;
        Ok(match *self {
            TopologySpec::Ibmq16 => 16,
            TopologySpec::Grid { mx, my } => mx.saturating_mul(my),
            TopologySpec::Ring { n } => n,
            TopologySpec::HeavyHex { rows, cols } => {
                // Chain qubits plus one bridge per selected column between
                // consecutive rows (mirrors the construction in
                // `Topology::from_spec`).
                let mut bridges = 0usize;
                for r in 0..rows - 1 {
                    let offset = if r % 2 == 0 { 0 } else { 2 };
                    let cols_hit = (0..cols).filter(|c| c % 4 == offset).count();
                    bridges += cols_hit.max(1);
                }
                rows.saturating_mul(cols).saturating_add(bridges)
            }
        })
    }

    /// Short machine-style name ("IBMQ16", "grid-4x4", "ring-12",
    /// "heavy-hex-2x7").
    pub fn name(&self) -> String {
        match self {
            TopologySpec::Ibmq16 => "IBMQ16".to_string(),
            TopologySpec::Grid { mx, my } => format!("grid-{mx}x{my}"),
            TopologySpec::Ring { n } => format!("ring-{n}"),
            TopologySpec::HeavyHex { rows, cols } => format!("heavy-hex-{rows}x{cols}"),
        }
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySpec::Ibmq16 => f.write_str("IBMQ16 (8x2 grid)"),
            TopologySpec::Grid { mx, my } => write!(f, "{mx}x{my} grid"),
            TopologySpec::Ring { n } => write!(f, "{n}-qubit ring"),
            TopologySpec::HeavyHex { rows, cols } => write!(f, "heavy-hex {rows}x{cols}"),
        }
    }
}

/// A concrete machine topology: an undirected coupling graph over hardware
/// qubits, with precomputed adjacency and all-pairs BFS distances, plus the
/// 2-D grid layout when the spec is grid-shaped (which unlocks the paper's
/// one-bend-path and rectangle-reservation routing).
///
/// Built from a [`TopologySpec`]; grid-shaped topologies behave exactly
/// like the original [`GridTopology`] (same edge enumeration order, same
/// neighbour order, Manhattan distances), so swapping the machine model
/// from "hard-coded IBMQ16" to "any spec" changes nothing for existing
/// grid machines.
///
/// # Example
///
/// ```
/// use nisq_machine::{HwQubit, Topology, TopologySpec};
///
/// let t = Topology::ibmq16();
/// assert_eq!(t.num_qubits(), 16);
/// assert!(t.adjacent(HwQubit(0), HwQubit(8)));
/// assert!(t.as_grid().is_some());
///
/// let hex = TopologySpec::HeavyHex { rows: 2, cols: 5 }.build();
/// assert!(hex.as_grid().is_none());
/// assert!(hex.num_qubits() > 10, "chains plus bridge qubits");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    spec: TopologySpec,
    n: usize,
    edges: Vec<(HwQubit, HwQubit)>,
    adjacency: Vec<Vec<HwQubit>>,
    /// Row-major `n x n` BFS hop distances; `u32::MAX` marks "unreachable"
    /// (never the case for the built-in specs, which are all connected).
    dist: Vec<u32>,
    grid: Option<GridTopology>,
}

impl Topology {
    /// Builds the topology described by `spec`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero-sized grids, rings with fewer
    /// than 3 qubits, heavy-hex lattices smaller than 2 rows x 3 columns).
    pub fn from_spec(spec: TopologySpec) -> Self {
        match spec {
            TopologySpec::Ibmq16 => Self::from_grid(spec, GridTopology::ibmq16()),
            TopologySpec::Grid { mx, my } => Self::from_grid(spec, GridTopology::new(mx, my)),
            TopologySpec::Ring { n } => {
                assert!(n >= 3, "a ring needs at least 3 qubits");
                let edges: Vec<(HwQubit, HwQubit)> =
                    (0..n).map(|i| (HwQubit(i), HwQubit((i + 1) % n))).collect();
                Self::from_edge_list(spec, n, edges, None)
            }
            TopologySpec::HeavyHex { rows, cols } => {
                assert!(
                    rows >= 2 && cols >= 3,
                    "a heavy-hex lattice needs at least 2 rows of 3 columns"
                );
                let mut edges = Vec::new();
                // Chain qubits first: qubit r*cols + c.
                for r in 0..rows {
                    for c in 0..cols.saturating_sub(1) {
                        edges.push((HwQubit(r * cols + c), HwQubit(r * cols + c + 1)));
                    }
                }
                // Bridge qubits appended after all chain qubits: one per
                // selected column between consecutive rows, alternating
                // offset 0 / 2 every row pair (heavy-hex style).
                let mut next = rows * cols;
                for r in 0..rows - 1 {
                    let offset = if r % 2 == 0 { 0 } else { 2 };
                    let mut columns: Vec<usize> = (0..cols).filter(|c| c % 4 == offset).collect();
                    if columns.is_empty() {
                        columns.push(0);
                    }
                    for c in columns {
                        let bridge = HwQubit(next);
                        next += 1;
                        edges.push((HwQubit(r * cols + c), bridge));
                        edges.push((bridge, HwQubit((r + 1) * cols + c)));
                    }
                }
                Self::from_edge_list(spec, next, edges, None)
            }
        }
    }

    /// The IBMQ16 topology (8x2 grid), the device of the paper.
    pub fn ibmq16() -> Self {
        TopologySpec::Ibmq16.build()
    }

    /// An `mx` by `my` nearest-neighbour grid.
    pub fn grid(mx: usize, my: usize) -> Self {
        TopologySpec::Grid { mx, my }.build()
    }

    /// An `n`-qubit ring.
    pub fn ring(n: usize) -> Self {
        TopologySpec::Ring { n }.build()
    }

    /// A heavy-hex-style lattice of `rows` chains of `cols` qubits.
    pub fn heavy_hex(rows: usize, cols: usize) -> Self {
        TopologySpec::HeavyHex { rows, cols }.build()
    }

    fn from_grid(spec: TopologySpec, grid: GridTopology) -> Self {
        let n = grid.num_qubits();
        let edges = grid.edges();
        // Preserve GridTopology's neighbour order (left, right, up, down)
        // so Dijkstra tie-breaking — and therefore every chosen route —
        // is identical to the original hard-coded machine model.
        let adjacency: Vec<Vec<HwQubit>> = (0..n).map(|q| grid.neighbors(HwQubit(q))).collect();
        let dist = Self::bfs_all_pairs(n, &adjacency);
        Topology {
            spec,
            n,
            edges,
            adjacency,
            dist,
            grid: Some(grid),
        }
    }

    fn from_edge_list(
        spec: TopologySpec,
        n: usize,
        edges: Vec<(HwQubit, HwQubit)>,
        grid: Option<GridTopology>,
    ) -> Self {
        let mut adjacency: Vec<Vec<HwQubit>> = vec![Vec::new(); n];
        for &(a, b) in &edges {
            assert!(a.0 < n && b.0 < n && a != b, "invalid edge {a}-{b}");
            adjacency[a.0].push(b);
            adjacency[b.0].push(a);
        }
        let dist = Self::bfs_all_pairs(n, &adjacency);
        Topology {
            spec,
            n,
            edges,
            adjacency,
            dist,
            grid,
        }
    }

    fn bfs_all_pairs(n: usize, adjacency: &[Vec<HwQubit>]) -> Vec<u32> {
        let mut dist = vec![u32::MAX; n * n];
        let mut queue = std::collections::VecDeque::new();
        for source in 0..n {
            let row = &mut dist[source * n..(source + 1) * n];
            row[source] = 0;
            queue.clear();
            queue.push_back(source);
            while let Some(q) = queue.pop_front() {
                let d = row[q];
                for &nb in &adjacency[q] {
                    if row[nb.0] == u32::MAX {
                        row[nb.0] = d + 1;
                        queue.push_back(nb.0);
                    }
                }
            }
        }
        dist
    }

    /// The spec this topology was built from.
    pub fn spec(&self) -> TopologySpec {
        self.spec
    }

    /// Whether every qubit can reach every other qubit through coupling
    /// edges. All built-in specs produce connected graphs; the check exists
    /// so [`Machine::try_new`](crate::Machine::try_new) can refuse a
    /// disconnected machine with a typed error instead of letting routing
    /// fail much later on an "unreachable" distance.
    pub fn is_connected(&self) -> bool {
        self.connected_count() == self.n
    }

    /// Number of qubits reachable from qubit 0 (equals
    /// [`Topology::num_qubits`] exactly when the graph is connected).
    pub fn connected_count(&self) -> usize {
        if self.n == 0 {
            return 0;
        }
        // Row 0 of the precomputed all-pairs BFS table already encodes
        // reachability from qubit 0.
        self.dist[..self.n]
            .iter()
            .filter(|&&d| d != u32::MAX)
            .count()
    }

    /// Builds a topology from an explicit edge list, for tests that need
    /// graphs the public specs cannot describe (e.g. disconnected ones).
    /// The `spec` argument is only a label for naming/fingerprinting.
    #[cfg(test)]
    pub(crate) fn custom_for_tests(
        spec: TopologySpec,
        n: usize,
        edges: Vec<(HwQubit, HwQubit)>,
    ) -> Self {
        Self::from_edge_list(spec, n, edges, None)
    }

    /// A deterministic 64-bit fingerprint of the coupling graph: the spec,
    /// qubit count and edge list. Calibration-unaware compiler passes key
    /// their caches on this (their results depend only on the graph, not on
    /// the day's calibration data).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = rustc_hash::FxHasher::default();
        self.spec.hash(&mut h);
        self.n.hash(&mut h);
        for &(a, b) in &self.edges {
            a.0.hash(&mut h);
            b.0.hash(&mut h);
        }
        h.finish()
    }

    /// The 2-D grid layout, when the topology is grid-shaped. Grid-only
    /// routing (one-bend paths, rectangle reservation) is available exactly
    /// when this returns `Some`; other policies fall back to best-path
    /// routing.
    pub fn as_grid(&self) -> Option<&GridTopology> {
        self.grid.as_ref()
    }

    /// Total number of hardware qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// All undirected coupling edges, in the spec's canonical enumeration
    /// order (for grids: identical to [`GridTopology::edges`]).
    pub fn edges(&self) -> &[(HwQubit, HwQubit)] {
        &self.edges
    }

    /// Nearest neighbours of `q`, in canonical order.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is outside the topology.
    pub fn neighbors(&self, q: HwQubit) -> &[HwQubit] {
        &self.adjacency[q.0]
    }

    /// Whether the qubit index is inside the topology.
    pub fn contains(&self, q: HwQubit) -> bool {
        q.0 < self.n
    }

    /// Validates that a qubit is inside the topology.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::QubitOutOfRange`] when it is not.
    pub fn check(&self, q: HwQubit) -> Result<(), MachineError> {
        if self.contains(q) {
            Ok(())
        } else {
            Err(MachineError::QubitOutOfRange {
                qubit: q.0,
                num_qubits: self.n,
            })
        }
    }

    /// Whether a hardware CNOT may be applied directly between `a` and `b`.
    pub fn adjacent(&self, a: HwQubit, b: HwQubit) -> bool {
        self.contains(a) && self.contains(b) && a != b && self.distance(a, b) == 1
    }

    /// Coupling-graph hop distance between two hardware qubits (for grids
    /// this equals the Manhattan distance the paper's duration model uses).
    ///
    /// # Panics
    ///
    /// Panics if either qubit is outside the topology.
    pub fn distance(&self, a: HwQubit, b: HwQubit) -> usize {
        assert!(self.contains(a), "{a} outside {self}");
        assert!(self.contains(b), "{b} outside {self}");
        self.dist[a.0 * self.n + b.0] as usize
    }

    /// All hardware qubits in index order.
    pub fn qubits(&self) -> impl Iterator<Item = HwQubit> {
        (0..self.n).map(HwQubit)
    }
}

impl From<GridTopology> for Topology {
    fn from(grid: GridTopology) -> Self {
        let spec = TopologySpec::Grid {
            mx: grid.mx(),
            my: grid.my(),
        };
        Topology::from_grid(spec, grid)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.grid {
            // Keep the original grid rendering ("8x2 grid") so reports and
            // machine names are unchanged for grid-shaped machines.
            Some(grid) => grid.fmt(f),
            None => self.spec.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibmq16_is_two_rows_of_eight() {
        let t = GridTopology::ibmq16();
        assert_eq!(t.mx(), 8);
        assert_eq!(t.my(), 2);
        assert_eq!(t.num_qubits(), 16);
        assert_eq!(t.edges().len(), 7 * 2 + 8);
    }

    #[test]
    fn coords_and_at_are_inverse() {
        let t = GridTopology::new(5, 3);
        for q in t.qubits() {
            let (x, y) = t.coords(q);
            assert_eq!(t.at(x, y), q);
        }
    }

    #[test]
    fn adjacency_is_grid_nearest_neighbour() {
        let t = GridTopology::ibmq16();
        assert!(t.adjacent(HwQubit(3), HwQubit(4)));
        assert!(t.adjacent(HwQubit(3), HwQubit(11)));
        assert!(!t.adjacent(HwQubit(7), HwQubit(8))); // row wrap is not adjacent
        assert!(!t.adjacent(HwQubit(2), HwQubit(2)));
    }

    #[test]
    fn distance_is_manhattan() {
        let t = GridTopology::ibmq16();
        assert_eq!(t.distance(HwQubit(0), HwQubit(15)), 7 + 1);
        assert_eq!(t.distance(HwQubit(4), HwQubit(4)), 0);
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let t = GridTopology::new(4, 4);
        assert_eq!(t.neighbors(HwQubit(0)).len(), 2);
        assert_eq!(t.neighbors(t.at(1, 1)).len(), 4);
        assert_eq!(t.neighbors(t.at(3, 0)).len(), 2);
    }

    #[test]
    fn junctions_are_rectangle_corners() {
        let t = GridTopology::new(4, 4);
        let c = t.at(0, 0);
        let tg = t.at(2, 3);
        let (j1, j2) = t.junctions(c, tg);
        assert_eq!(j1, t.at(2, 0));
        assert_eq!(j2, t.at(0, 3));
    }

    #[test]
    fn one_bend_path_visits_every_intermediate_qubit() {
        let t = GridTopology::new(4, 4);
        let from = t.at(0, 0);
        let to = t.at(2, 3);
        let (j1, _) = t.junctions(from, to);
        let path = t.one_bend_path(from, to, j1);
        assert_eq!(path.first(), Some(&from));
        assert_eq!(path.last(), Some(&to));
        assert_eq!(path.len(), t.distance(from, to) + 1);
        for pair in path.windows(2) {
            assert!(t.adjacent(pair[0], pair[1]));
        }
    }

    #[test]
    fn one_bend_path_handles_straight_lines() {
        let t = GridTopology::ibmq16();
        let from = HwQubit(0);
        let to = HwQubit(3);
        let (j1, j2) = t.junctions(from, to);
        assert_eq!(j1, to);
        assert_eq!(j2, from);
        let path = t.one_bend_path(from, to, j1);
        assert_eq!(path, vec![HwQubit(0), HwQubit(1), HwQubit(2), HwQubit(3)]);
    }

    #[test]
    #[should_panic(expected = "not a corner")]
    fn one_bend_path_rejects_non_corner_junction() {
        let t = GridTopology::new(4, 4);
        let _ = t.one_bend_path(t.at(0, 0), t.at(2, 3), t.at(1, 1));
    }

    #[test]
    fn rectangles_overlap_matches_constraint7() {
        let r1 = ((0, 0), (2, 1));
        let r2 = ((2, 1), (3, 1));
        let r3 = ((3, 0), (4, 0));
        assert!(GridTopology::rectangles_overlap(r1, r2));
        assert!(!GridTopology::rectangles_overlap(r1, r3));
    }

    #[test]
    fn at_least_covers_requested_size() {
        for n in [4, 8, 16, 32, 64, 128] {
            let t = GridTopology::at_least(n);
            assert!(t.num_qubits() >= n, "{n} -> {t}");
        }
    }

    #[test]
    fn check_reports_out_of_range() {
        let t = GridTopology::ibmq16();
        assert!(t.check(HwQubit(15)).is_ok());
        assert!(matches!(
            t.check(HwQubit(16)),
            Err(MachineError::QubitOutOfRange { qubit: 16, .. })
        ));
    }

    #[test]
    fn topology_grid_matches_grid_topology_exactly() {
        let grid = GridTopology::ibmq16();
        let t = Topology::ibmq16();
        assert_eq!(t.num_qubits(), grid.num_qubits());
        assert_eq!(t.edges(), grid.edges().as_slice());
        for q in grid.qubits() {
            assert_eq!(t.neighbors(q), grid.neighbors(q).as_slice(), "{q}");
            for p in grid.qubits() {
                assert_eq!(t.distance(q, p), grid.distance(q, p));
                assert_eq!(t.adjacent(q, p), grid.adjacent(q, p));
            }
        }
        assert_eq!(t.as_grid(), Some(&grid));
        assert_eq!(t.to_string(), "8x2 grid");
    }

    #[test]
    fn from_grid_topology_preserves_layout() {
        let t: Topology = GridTopology::new(3, 5).into();
        assert_eq!(t.spec(), TopologySpec::Grid { mx: 3, my: 5 });
        assert_eq!(t.num_qubits(), 15);
        assert!(t.as_grid().is_some());
    }

    #[test]
    fn ring_distances_wrap_around() {
        let t = Topology::ring(8);
        assert_eq!(t.num_qubits(), 8);
        assert_eq!(t.edges().len(), 8);
        assert!(t.adjacent(HwQubit(0), HwQubit(7)));
        assert_eq!(t.distance(HwQubit(0), HwQubit(4)), 4);
        assert_eq!(t.distance(HwQubit(1), HwQubit(7)), 2);
        assert!(t.as_grid().is_none());
        for q in t.qubits() {
            assert_eq!(t.neighbors(q).len(), 2);
        }
    }

    #[test]
    fn heavy_hex_is_connected_with_degree_two_bridges() {
        let t = Topology::heavy_hex(3, 7);
        let chain_qubits = 3 * 7;
        assert!(t.num_qubits() > chain_qubits, "bridge qubits appended");
        // Every pair reachable (BFS distance finite).
        for a in t.qubits() {
            for b in t.qubits() {
                assert!(t.distance(a, b) < t.num_qubits(), "{a} cannot reach {b}");
            }
        }
        // Bridge qubits connect exactly one qubit of each adjacent chain.
        for q in chain_qubits..t.num_qubits() {
            assert_eq!(t.neighbors(HwQubit(q)).len(), 2, "bridge Q{q}");
        }
    }

    #[test]
    fn spec_names_are_stable() {
        assert_eq!(TopologySpec::Ibmq16.name(), "IBMQ16");
        assert_eq!(TopologySpec::Grid { mx: 4, my: 4 }.name(), "grid-4x4");
        assert_eq!(TopologySpec::Ring { n: 12 }.name(), "ring-12");
        assert_eq!(
            TopologySpec::HeavyHex { rows: 2, cols: 5 }.name(),
            "heavy-hex-2x5"
        );
        assert_eq!(Topology::ring(5).to_string(), "5-qubit ring");
    }
}
