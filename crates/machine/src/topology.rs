use crate::error::MachineError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a *hardware* qubit (a physical location on the device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HwQubit(pub usize);

impl fmt::Display for HwQubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

impl From<usize> for HwQubit {
    fn from(value: usize) -> Self {
        HwQubit(value)
    }
}

/// A 2-D grid of hardware qubits with nearest-neighbour CNOT connectivity,
/// the machine model the paper assumes (Section 4.1).
///
/// Qubit `i` sits at column `x = i % mx` and row `y = i / mx`; two qubits
/// may run a hardware CNOT only if they are adjacent horizontally or
/// vertically.
///
/// # Example
///
/// ```
/// use nisq_machine::{GridTopology, HwQubit};
///
/// let t = GridTopology::ibmq16();
/// assert_eq!(t.num_qubits(), 16);
/// assert!(t.adjacent(HwQubit(0), HwQubit(1)));
/// assert!(t.adjacent(HwQubit(0), HwQubit(8)));
/// assert!(!t.adjacent(HwQubit(0), HwQubit(2)));
/// assert_eq!(t.distance(HwQubit(0), HwQubit(15)), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridTopology {
    mx: usize,
    my: usize,
}

impl GridTopology {
    /// Creates an `mx` columns by `my` rows grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(mx: usize, my: usize) -> Self {
        assert!(mx > 0 && my > 0, "grid dimensions must be positive");
        GridTopology { mx, my }
    }

    /// The 16-qubit IBMQ16 Rueschlikon layout: two rows of eight qubits.
    pub fn ibmq16() -> Self {
        GridTopology::new(8, 2)
    }

    /// A square grid with `side * side` qubits, used for the scalability
    /// studies on larger synthetic machines.
    pub fn square(side: usize) -> Self {
        GridTopology::new(side, side)
    }

    /// Smallest grid that holds at least `n` qubits while staying close to
    /// square (used when sweeping machine sizes in the scalability study).
    pub fn at_least(n: usize) -> Self {
        assert!(n > 0, "machine must have at least one qubit");
        let side = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(side);
        GridTopology::new(side, rows.max(1))
    }

    /// Number of columns.
    pub fn mx(&self) -> usize {
        self.mx
    }

    /// Number of rows.
    pub fn my(&self) -> usize {
        self.my
    }

    /// Total number of hardware qubits.
    pub fn num_qubits(&self) -> usize {
        self.mx * self.my
    }

    /// Column/row coordinates of a hardware qubit.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is outside the grid; use [`GridTopology::contains`]
    /// to check first.
    pub fn coords(&self, q: HwQubit) -> (usize, usize) {
        assert!(self.contains(q), "{q} outside {self}");
        (q.0 % self.mx, q.0 / self.mx)
    }

    /// Hardware qubit at the given column/row.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn at(&self, x: usize, y: usize) -> HwQubit {
        assert!(x < self.mx && y < self.my, "({x},{y}) outside {self}");
        HwQubit(y * self.mx + x)
    }

    /// Whether the qubit index is inside the grid.
    pub fn contains(&self, q: HwQubit) -> bool {
        q.0 < self.num_qubits()
    }

    /// Validates that a qubit is inside the grid.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::QubitOutOfRange`] when it is not.
    pub fn check(&self, q: HwQubit) -> Result<(), MachineError> {
        if self.contains(q) {
            Ok(())
        } else {
            Err(MachineError::QubitOutOfRange {
                qubit: q.0,
                num_qubits: self.num_qubits(),
            })
        }
    }

    /// Manhattan distance between two hardware qubits (the `L1` norm used in
    /// the paper's CNOT duration model).
    pub fn distance(&self, a: HwQubit, b: HwQubit) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Whether a hardware CNOT may be applied directly between `a` and `b`.
    pub fn adjacent(&self, a: HwQubit, b: HwQubit) -> bool {
        self.contains(a) && self.contains(b) && a != b && self.distance(a, b) == 1
    }

    /// All undirected nearest-neighbour edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(HwQubit, HwQubit)> {
        let mut out = Vec::new();
        for y in 0..self.my {
            for x in 0..self.mx {
                let q = self.at(x, y);
                if x + 1 < self.mx {
                    out.push((q, self.at(x + 1, y)));
                }
                if y + 1 < self.my {
                    out.push((q, self.at(x, y + 1)));
                }
            }
        }
        out
    }

    /// Nearest neighbours of `q`.
    pub fn neighbors(&self, q: HwQubit) -> Vec<HwQubit> {
        let (x, y) = self.coords(q);
        let mut out = Vec::new();
        if x > 0 {
            out.push(self.at(x - 1, y));
        }
        if x + 1 < self.mx {
            out.push(self.at(x + 1, y));
        }
        if y > 0 {
            out.push(self.at(x, y - 1));
        }
        if y + 1 < self.my {
            out.push(self.at(x, y + 1));
        }
        out
    }

    /// All hardware qubits in index order.
    pub fn qubits(&self) -> impl Iterator<Item = HwQubit> {
        (0..self.num_qubits()).map(HwQubit)
    }

    /// The two one-bend-path junction corners for a control/target pair, in
    /// the order (corner sharing the control's row, corner sharing the
    /// control's column). For qubits in the same row or column both
    /// junctions coincide with the straight-line path.
    pub fn junctions(&self, control: HwQubit, target: HwQubit) -> (HwQubit, HwQubit) {
        let (cx, cy) = self.coords(control);
        let (tx, ty) = self.coords(target);
        (self.at(tx, cy), self.at(cx, ty))
    }

    /// The one-bend path from `from` to `to` through `junction`, as the
    /// full sequence of hardware qubits including both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `junction` does not share a row or column with both
    /// endpoints (i.e. it is not one of the two corners returned by
    /// [`GridTopology::junctions`]).
    pub fn one_bend_path(&self, from: HwQubit, to: HwQubit, junction: HwQubit) -> Vec<HwQubit> {
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        let (jx, jy) = self.coords(junction);
        assert!(
            (jx == fx || jy == fy) && (jx == tx || jy == ty),
            "junction {junction} is not a corner of the bounding rectangle of {from} and {to}"
        );
        let mut path = vec![from];
        let push_line = |path: &mut Vec<HwQubit>, x0: usize, y0: usize, x1: usize, y1: usize| {
            // Walk one axis at a time; exactly one of the axes differs.
            if x0 == x1 {
                let range: Vec<usize> = if y0 <= y1 {
                    (y0..=y1).collect()
                } else {
                    (y1..=y0).rev().collect()
                };
                for y in range.into_iter().skip(1) {
                    path.push(self.at(x0, y));
                }
            } else {
                let range: Vec<usize> = if x0 <= x1 {
                    (x0..=x1).collect()
                } else {
                    (x1..=x0).rev().collect()
                };
                for x in range.into_iter().skip(1) {
                    path.push(self.at(x, y0));
                }
            }
        };
        if (jx, jy) != (fx, fy) {
            push_line(&mut path, fx, fy, jx, jy);
        }
        if (jx, jy) != (tx, ty) {
            push_line(&mut path, jx, jy, tx, ty);
        }
        path
    }

    /// The bounding rectangle of two qubits as
    /// `((min_x, min_y), (max_x, max_y))`, used by the rectangle-reservation
    /// routing policy.
    pub fn bounding_rectangle(&self, a: HwQubit, b: HwQubit) -> ((usize, usize), (usize, usize)) {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ((ax.min(bx), ay.min(by)), (ax.max(bx), ay.max(by)))
    }

    /// Whether two axis-aligned rectangles (given as min/max corners)
    /// overlap, the spatial test of routing Constraint 7.
    pub fn rectangles_overlap(
        r1: ((usize, usize), (usize, usize)),
        r2: ((usize, usize), (usize, usize)),
    ) -> bool {
        let ((l1x, l1y), (r1x, r1y)) = r1;
        let ((l2x, l2y), (r2x, r2y)) = r2;
        !(l1x > r2x || r1x < l2x || l1y > r2y || r1y < l2y)
    }
}

impl fmt::Display for GridTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} grid", self.mx, self.my)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibmq16_is_two_rows_of_eight() {
        let t = GridTopology::ibmq16();
        assert_eq!(t.mx(), 8);
        assert_eq!(t.my(), 2);
        assert_eq!(t.num_qubits(), 16);
        assert_eq!(t.edges().len(), 7 * 2 + 8);
    }

    #[test]
    fn coords_and_at_are_inverse() {
        let t = GridTopology::new(5, 3);
        for q in t.qubits() {
            let (x, y) = t.coords(q);
            assert_eq!(t.at(x, y), q);
        }
    }

    #[test]
    fn adjacency_is_grid_nearest_neighbour() {
        let t = GridTopology::ibmq16();
        assert!(t.adjacent(HwQubit(3), HwQubit(4)));
        assert!(t.adjacent(HwQubit(3), HwQubit(11)));
        assert!(!t.adjacent(HwQubit(7), HwQubit(8))); // row wrap is not adjacent
        assert!(!t.adjacent(HwQubit(2), HwQubit(2)));
    }

    #[test]
    fn distance_is_manhattan() {
        let t = GridTopology::ibmq16();
        assert_eq!(t.distance(HwQubit(0), HwQubit(15)), 7 + 1);
        assert_eq!(t.distance(HwQubit(4), HwQubit(4)), 0);
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let t = GridTopology::new(4, 4);
        assert_eq!(t.neighbors(HwQubit(0)).len(), 2);
        assert_eq!(t.neighbors(t.at(1, 1)).len(), 4);
        assert_eq!(t.neighbors(t.at(3, 0)).len(), 2);
    }

    #[test]
    fn junctions_are_rectangle_corners() {
        let t = GridTopology::new(4, 4);
        let c = t.at(0, 0);
        let tg = t.at(2, 3);
        let (j1, j2) = t.junctions(c, tg);
        assert_eq!(j1, t.at(2, 0));
        assert_eq!(j2, t.at(0, 3));
    }

    #[test]
    fn one_bend_path_visits_every_intermediate_qubit() {
        let t = GridTopology::new(4, 4);
        let from = t.at(0, 0);
        let to = t.at(2, 3);
        let (j1, _) = t.junctions(from, to);
        let path = t.one_bend_path(from, to, j1);
        assert_eq!(path.first(), Some(&from));
        assert_eq!(path.last(), Some(&to));
        assert_eq!(path.len(), t.distance(from, to) + 1);
        for pair in path.windows(2) {
            assert!(t.adjacent(pair[0], pair[1]));
        }
    }

    #[test]
    fn one_bend_path_handles_straight_lines() {
        let t = GridTopology::ibmq16();
        let from = HwQubit(0);
        let to = HwQubit(3);
        let (j1, j2) = t.junctions(from, to);
        assert_eq!(j1, to);
        assert_eq!(j2, from);
        let path = t.one_bend_path(from, to, j1);
        assert_eq!(path, vec![HwQubit(0), HwQubit(1), HwQubit(2), HwQubit(3)]);
    }

    #[test]
    #[should_panic(expected = "not a corner")]
    fn one_bend_path_rejects_non_corner_junction() {
        let t = GridTopology::new(4, 4);
        let _ = t.one_bend_path(t.at(0, 0), t.at(2, 3), t.at(1, 1));
    }

    #[test]
    fn rectangles_overlap_matches_constraint7() {
        let r1 = ((0, 0), (2, 1));
        let r2 = ((2, 1), (3, 1));
        let r3 = ((3, 0), (4, 0));
        assert!(GridTopology::rectangles_overlap(r1, r2));
        assert!(!GridTopology::rectangles_overlap(r1, r3));
    }

    #[test]
    fn at_least_covers_requested_size() {
        for n in [4, 8, 16, 32, 64, 128] {
            let t = GridTopology::at_least(n);
            assert!(t.num_qubits() >= n, "{n} -> {t}");
        }
    }

    #[test]
    fn check_reports_out_of_range() {
        let t = GridTopology::ibmq16();
        assert!(t.check(HwQubit(15)).is_ok());
        assert!(matches!(
            t.check(HwQubit(16)),
            Err(MachineError::QubitOutOfRange { qubit: 16, .. })
        ));
    }
}
