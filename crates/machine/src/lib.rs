//! # nisq-machine — NISQ hardware model
//!
//! The hardware-side substrate of the noise-adaptive compiler: pluggable
//! machine topologies described by a [`TopologySpec`] (the 16-qubit IBMQ16
//! layout the paper evaluates on, arbitrary NxM grids, rings and
//! heavy-hex-style lattices), machine calibration data (coherence times,
//! gate/readout error rates, gate durations), a synthetic calibration
//! *generator* that reproduces the spatial and temporal variation
//! statistics reported in the paper (Figure 1 and Section 2) for **any**
//! topology, and the reliability matrices (most-reliable swap paths,
//! best CNOT routes, one-bend-path CNOT reliabilities, CNOT duration
//! matrix) the mapping algorithms consume.
//!
//! In the paper this data comes from IBM's twice-daily calibration feed; we
//! substitute a statistically-matched generator (see DESIGN.md) so every
//! experiment is reproducible offline.
//!
//! # Example
//!
//! ```
//! use nisq_machine::{Machine, CalibrationGenerator, GridTopology};
//!
//! let topology = GridTopology::ibmq16();
//! let generator = CalibrationGenerator::new(topology.clone(), 42);
//! let calibration = generator.day(0);
//! let machine = Machine::new("IBMQ16", topology, calibration);
//! assert_eq!(machine.topology().num_qubits(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calibration;
mod error;
mod generator;
mod machine;
mod reliability;
mod topology;

pub use calibration::{Calibration, EdgeId, EdgeParams, GateDurations};
pub use error::MachineError;
pub use generator::{CalibrationGenerator, CalibrationStatistics};
pub use machine::Machine;
pub use reliability::{PathInfo, ReliabilityModel};
pub use topology::{GridTopology, HwQubit, Topology, TopologySpec};

/// Duration of one hardware timeslot in nanoseconds (IBMQ16 value used
/// throughout the paper: results are reported in 80 ns timeslots).
pub const TIMESLOT_NS: f64 = 80.0;
