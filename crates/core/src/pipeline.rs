//! The pass-pipeline architecture of the compiler.
//!
//! Compilation is organized as a sequence of [`Pass`]es over a shared
//! [`CompileContext`] (circuit + machine + configuration + accumulated
//! artifacts), mirroring how production toolchains structure their
//! backends. The standard pipeline is
//!
//! `Decompose → Place → Route → Schedule → Emit → Estimate`
//!
//! where placement dispatches through the [`PlacementRegistry`]
//! (rehoming the paper's Table-1 algorithms as interchangeable
//! [`PlacementStrategy`] implementations) and routing installs a
//! [`RoutingPolicy`] — the paper's swap-out/swap-back model by default, or
//! permutation tracking as an opt-in scenario. Every pass is timed; the
//! per-pass breakdown is attached to the produced
//! [`CompiledCircuit`](crate::CompiledCircuit).
//!
//! # Writing a custom pass
//!
//! A pass reads and writes context artifacts. For example, a lint pass
//! that rejects schedules violating coherence windows:
//!
//! ```
//! use nisq_core::pipeline::{CompileContext, Pass, Pipeline};
//! use nisq_core::{CompileError, CompilerConfig};
//! use nisq_ir::Benchmark;
//! use nisq_machine::Machine;
//!
//! #[derive(Debug)]
//! struct CoherenceLint;
//!
//! impl Pass for CoherenceLint {
//!     fn name(&self) -> &'static str {
//!         "coherence-lint"
//!     }
//!     fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
//!         let schedule = ctx.require_schedule("coherence-lint")?;
//!         assert!(schedule.within_coherence(), "schedule breaks coherence");
//!         Ok(())
//!     }
//! }
//!
//! let machine = Machine::ibmq16_on_day(1, 0);
//! let mut pipeline = Pipeline::standard();
//! pipeline.push(CoherenceLint);
//! let mut ctx = CompileContext::new(&machine, CompilerConfig::greedy_e(),
//!                                   Benchmark::Bv4.circuit());
//! pipeline.run(&mut ctx).unwrap();
//! assert!(ctx.physical().is_some());
//! assert_eq!(ctx.timings().last().unwrap().pass, "coherence-lint");
//! ```

use crate::cache::PlacementCache;
use crate::config::CompilerConfig;
use crate::error::CompileError;
use crate::mapping::PlacementRegistry;
use crate::metrics::{self, EstimateOptions, ReliabilityEstimate};
use nisq_ir::{Circuit, Gate, GateKind, Qubit};
use nisq_machine::Machine;
use nisq_opt::{
    Placement, RouteSelection, RoutedOp, RoutingPolicy, Schedule, Scheduler, SchedulerConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The routing decision installed by the [`RoutePass`]: the requested route
/// selection, the selection actually usable on the target topology, and the
/// swap-handling policy.
#[derive(Debug, Clone, Copy)]
pub struct ResolvedRouting {
    /// The selection the configuration asked for.
    pub requested: RouteSelection,
    /// The selection in effect (grid-only selections degrade to best-path
    /// routing on topologies without a grid layout).
    pub effective: RouteSelection,
    /// The swap-handling policy (swap-back or permutation tracking).
    pub policy: &'static dyn RoutingPolicy,
}

/// Wall-clock time spent in one pass.
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// The pass name.
    pub pass: &'static str,
    /// Time spent in its `run`.
    pub elapsed: Duration,
}

/// Everything a compilation accumulates: the input circuit and target
/// machine, the configuration, and the artifacts produced by the passes
/// that have run so far.
#[derive(Debug)]
pub struct CompileContext<'m> {
    machine: &'m Machine,
    config: CompilerConfig,
    source_name: String,
    circuit: Circuit,
    placement: Option<Placement>,
    routing: Option<ResolvedRouting>,
    schedule: Option<Schedule>,
    physical: Option<Circuit>,
    estimate: Option<ReliabilityEstimate>,
    timings: Vec<PassTiming>,
}

impl<'m> CompileContext<'m> {
    /// Creates a context for compiling `circuit` onto `machine`.
    pub fn new(machine: &'m Machine, config: CompilerConfig, circuit: Circuit) -> Self {
        CompileContext {
            machine,
            config,
            source_name: circuit.name().to_string(),
            circuit,
            placement: None,
            routing: None,
            schedule: None,
            physical: None,
            estimate: None,
            timings: Vec::new(),
        }
    }

    /// The target machine.
    pub fn machine(&self) -> &'m Machine {
        self.machine
    }

    /// The compiler configuration.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// The name of the original input circuit (preserved even when a
    /// rewriting pass replaces the working circuit).
    pub fn source_name(&self) -> &str {
        &self.source_name
    }

    /// The working circuit (after decomposition).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Replaces the working circuit (used by rewriting passes).
    pub fn set_circuit(&mut self, circuit: Circuit) {
        self.circuit = circuit;
    }

    /// The placement, once the place pass has run.
    pub fn placement(&self) -> Option<&Placement> {
        self.placement.as_ref()
    }

    /// Installs the placement artifact.
    pub fn set_placement(&mut self, placement: Placement) {
        self.placement = Some(placement);
    }

    /// The routing decision, once the route pass has run.
    pub fn routing(&self) -> Option<&ResolvedRouting> {
        self.routing.as_ref()
    }

    /// Installs the routing decision.
    pub fn set_routing(&mut self, routing: ResolvedRouting) {
        self.routing = Some(routing);
    }

    /// The schedule, once the schedule pass has run.
    pub fn schedule(&self) -> Option<&Schedule> {
        self.schedule.as_ref()
    }

    /// Installs the schedule artifact.
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.schedule = Some(schedule);
    }

    /// The emitted physical circuit, once the emit pass has run.
    pub fn physical(&self) -> Option<&Circuit> {
        self.physical.as_ref()
    }

    /// Installs the physical circuit artifact.
    pub fn set_physical(&mut self, physical: Circuit) {
        self.physical = Some(physical);
    }

    /// The reliability estimate, once the estimate pass has run.
    pub fn estimate(&self) -> Option<&ReliabilityEstimate> {
        self.estimate.as_ref()
    }

    /// Installs the estimate artifact.
    pub fn set_estimate(&mut self, estimate: ReliabilityEstimate) {
        self.estimate = Some(estimate);
    }

    /// Per-pass timings, in execution order.
    pub fn timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// The placement, or a [`CompileError::MissingArtifact`] naming the
    /// calling pass.
    ///
    /// # Errors
    ///
    /// Returns an error when the place pass has not run yet.
    pub fn require_placement(&self, pass: &'static str) -> Result<&Placement, CompileError> {
        self.placement
            .as_ref()
            .ok_or(CompileError::MissingArtifact {
                pass,
                artifact: "placement",
            })
    }

    /// The routing decision, or a [`CompileError::MissingArtifact`].
    ///
    /// # Errors
    ///
    /// Returns an error when the route pass has not run yet.
    pub fn require_routing(&self, pass: &'static str) -> Result<ResolvedRouting, CompileError> {
        self.routing.ok_or(CompileError::MissingArtifact {
            pass,
            artifact: "routing decision",
        })
    }

    /// The schedule, or a [`CompileError::MissingArtifact`].
    ///
    /// # Errors
    ///
    /// Returns an error when the schedule pass has not run yet.
    pub fn require_schedule(&self, pass: &'static str) -> Result<&Schedule, CompileError> {
        self.schedule.as_ref().ok_or(CompileError::MissingArtifact {
            pass,
            artifact: "schedule",
        })
    }

    /// The physical circuit, or a [`CompileError::MissingArtifact`].
    ///
    /// # Errors
    ///
    /// Returns an error when the emit pass has not run yet.
    pub fn require_physical(&self, pass: &'static str) -> Result<&Circuit, CompileError> {
        self.physical.as_ref().ok_or(CompileError::MissingArtifact {
            pass,
            artifact: "physical circuit",
        })
    }

    /// Consumes the context into the artifacts of a finished compilation.
    pub(crate) fn finish(self) -> Result<FinishedCompilation, CompileError> {
        Ok(FinishedCompilation {
            program_name: self.source_name,
            algorithm: self.config.algorithm,
            placement: self.placement.ok_or(CompileError::MissingArtifact {
                pass: "finish",
                artifact: "placement",
            })?,
            schedule: self.schedule.ok_or(CompileError::MissingArtifact {
                pass: "finish",
                artifact: "schedule",
            })?,
            physical: self.physical.ok_or(CompileError::MissingArtifact {
                pass: "finish",
                artifact: "physical circuit",
            })?,
            estimate: self.estimate.ok_or(CompileError::MissingArtifact {
                pass: "finish",
                artifact: "reliability estimate",
            })?,
            timings: self.timings,
        })
    }
}

/// The artifacts of a completed pipeline run, consumed by
/// [`CompiledCircuit`](crate::CompiledCircuit).
pub(crate) struct FinishedCompilation {
    pub program_name: String,
    pub algorithm: crate::config::Algorithm,
    pub placement: Placement,
    pub schedule: Schedule,
    pub physical: Circuit,
    pub estimate: ReliabilityEstimate,
    pub timings: Vec<PassTiming>,
}

/// One stage of the compilation pipeline, operating on a shared
/// [`CompileContext`].
///
/// See the [module documentation](self) for a worked custom-pass example.
pub trait Pass: std::fmt::Debug + Send + Sync {
    /// The pass name, used in timings and error messages.
    fn name(&self) -> &'static str;

    /// Runs the pass, reading and producing context artifacts.
    ///
    /// # Errors
    ///
    /// Returns an error if the pass cannot produce its artifact (invalid
    /// configuration, circuit too large, missing upstream artifact, ...).
    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError>;
}

/// An ordered sequence of passes with per-pass timing.
#[derive(Debug)]
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn empty() -> Self {
        Pipeline { passes: Vec::new() }
    }

    /// The standard pipeline:
    /// `Decompose → Place → Route → Schedule → Emit → Estimate`, with the
    /// Table-1 placement algorithms registered.
    pub fn standard() -> Self {
        Pipeline::with_registry(PlacementRegistry::standard())
    }

    /// The standard pipeline with placements memoized in `cache`
    /// (shareable across pipelines and threads): repeat compiles of an
    /// identical `(circuit, machine-day, config)` triple skip the placement
    /// strategy entirely.
    pub fn standard_with_placement_cache(cache: Arc<PlacementCache>) -> Self {
        let mut p = Pipeline::empty();
        p.push(DecomposePass);
        p.push(PlacePass {
            registry: PlacementRegistry::standard(),
            cache: Some(cache),
        });
        p.push(RoutePass);
        p.push(SchedulePass);
        p.push(EmitPass);
        p.push(EstimatePass);
        p
    }

    /// The standard pipeline with a custom placement registry (additional
    /// strategies, replaced defaults, ...).
    pub fn with_registry(registry: PlacementRegistry) -> Self {
        let mut p = Pipeline::empty();
        p.push(DecomposePass);
        p.push(PlacePass {
            registry,
            cache: None,
        });
        p.push(RoutePass);
        p.push(SchedulePass);
        p.push(EmitPass);
        p.push(EstimatePass);
        p
    }

    /// Appends a pass.
    pub fn push(&mut self, pass: impl Pass + 'static) {
        self.passes.push(Box::new(pass));
    }

    /// The registered passes, in order.
    pub fn passes(&self) -> impl Iterator<Item = &dyn Pass> {
        self.passes.iter().map(|p| p.as_ref())
    }

    /// Runs every pass in order, recording per-pass wall-clock time in the
    /// context.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first pass error.
    pub fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        for pass in &self.passes {
            let start = Instant::now();
            pass.run(ctx)?;
            ctx.timings.push(PassTiming {
                pass: pass.name(),
                elapsed: start.elapsed(),
            });
        }
        Ok(())
    }
}

/// Lowers the circuit into the hardware gate set. The benchmarks arrive
/// already decomposed (ScaffCC's job in the paper), so by default this pass
/// only normalizes program-level SWAP gates when the configuration opts in
/// via [`CompilerConfig::decompose_swaps`]; high-level gates added to the
/// IR in the future get lowered here.
#[derive(Debug, Clone, Copy)]
pub struct DecomposePass;

impl Pass for DecomposePass {
    fn name(&self) -> &'static str {
        "decompose"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        if ctx.config().decompose_swaps && ctx.circuit().iter().any(|g| g.kind() == GateKind::Swap)
        {
            ctx.set_circuit(ctx.circuit().expand_swaps());
        }
        Ok(())
    }
}

/// Computes the initial placement by dispatching to the
/// [`PlacementStrategy`](crate::mapping::PlacementStrategy) registered for
/// the configured algorithm, optionally memoizing results in a shared
/// [`PlacementCache`] keyed on the `(circuit, machine-day, config)`
/// fingerprints.
#[derive(Debug)]
pub struct PlacePass {
    /// The strategies this pass dispatches over.
    pub registry: PlacementRegistry,
    /// Shared memo of placement results; `None` disables caching (the
    /// default for [`Pipeline::standard`]).
    pub cache: Option<Arc<PlacementCache>>,
}

impl Pass for PlacePass {
    fn name(&self) -> &'static str {
        "place"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        if ctx.circuit().num_qubits() > ctx.machine().num_qubits() {
            return Err(CompileError::CircuitTooLarge {
                program_qubits: ctx.circuit().num_qubits(),
                hardware_qubits: ctx.machine().num_qubits(),
            });
        }
        if let Some(cache) = &self.cache {
            if let Some(placement) = cache.lookup(ctx.circuit(), ctx.machine(), ctx.config()) {
                ctx.set_placement(placement);
                return Ok(());
            }
        }
        let name = ctx.config().algorithm.name();
        let strategy = self
            .registry
            .get(name)
            .ok_or_else(|| CompileError::UnknownPlacement {
                name: name.to_string(),
            })?;
        let placement = strategy.place(ctx.circuit(), ctx.machine(), ctx.config())?;
        if let Some(cache) = &self.cache {
            cache.insert(
                ctx.circuit(),
                ctx.machine(),
                ctx.config(),
                placement.clone(),
            );
        }
        ctx.set_placement(placement);
        Ok(())
    }
}

/// Resolves the routing decision: the configured [`RouteSelection`]
/// (degraded to best-path routing when it needs a grid the topology does
/// not have) and the [`RoutingPolicy`] picked by
/// [`CompilerConfig::swap_handling`].
#[derive(Debug, Clone, Copy)]
pub struct RoutePass;

impl Pass for RoutePass {
    fn name(&self) -> &'static str {
        "route"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        let requested = ctx.config().routing;
        let effective = requested.effective_on(ctx.machine().topology());
        ctx.set_routing(ResolvedRouting {
            requested,
            effective,
            policy: ctx.config().swap_handling.policy(),
        });
        Ok(())
    }
}

/// Runs the routing-aware list scheduler under the installed routing
/// policy, producing start times, durations, routes and the final layout.
#[derive(Debug, Clone, Copy)]
pub struct SchedulePass;

impl Pass for SchedulePass {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        let routing = ctx.require_routing("schedule")?;
        let placement = ctx.require_placement("schedule")?;
        let config = ctx.config();
        let scheduler_config = SchedulerConfig {
            selection: routing.effective,
            calibration_aware: config.calibration_aware(),
            uniform_cnot_slots: config.uniform_cnot_slots,
            static_coherence_slots: config.static_coherence_slots,
        };
        let scheduler = Scheduler::new(ctx.machine(), scheduler_config);
        let schedule = scheduler.schedule_with(ctx.circuit(), placement, routing.policy)?;
        ctx.set_schedule(schedule);
        Ok(())
    }
}

/// Emits the hardware-level circuit: every gate is rewritten onto hardware
/// qubit indices and every routed two-qubit gate is materialized through
/// the routing policy — the single place where swap round-trips (or their
/// permutation-tracking elision) become physical gates.
#[derive(Debug, Clone, Copy)]
pub struct EmitPass;

impl Pass for EmitPass {
    fn name(&self) -> &'static str {
        "emit"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        let routing = ctx.require_routing("emit")?;
        let schedule = ctx.require_schedule("emit")?;
        let circuit = ctx.circuit();
        let machine = ctx.machine();

        let mut physical = Circuit::with_clbits(machine.num_qubits(), circuit.num_clbits());
        physical.set_name(format!("{}-physical", circuit.name()));
        let mut ops = Vec::new();

        // Emission needs no live layout of its own: each scheduled entry
        // already records its route and resolved hardware operands, and
        // entries appear in issue order, so replaying them reproduces
        // exactly the sequence the scheduler modelled.
        for entry in &schedule.gates {
            let gate = &circuit.gates()[entry.gate_index];
            match gate.kind() {
                GateKind::Cnot | GateKind::Swap => {
                    let Some(route) = entry.route.as_ref() else {
                        // A route-less SWAP was elided by the routing
                        // policy as a pure layout relabeling; later
                        // entries' resolved operands already account for
                        // it, so there is nothing physical to emit.
                        debug_assert_eq!(gate.kind(), GateKind::Swap);
                        continue;
                    };
                    ops.clear();
                    routing.policy.realize(route, &mut ops);
                    for op in &ops {
                        match *op {
                            RoutedOp::Swap(a, b) => {
                                physical.swap(Qubit(a.0), Qubit(b.0));
                            }
                            RoutedOp::Gate(a, b) => {
                                if gate.kind() == GateKind::Cnot {
                                    physical.cnot(Qubit(a.0), Qubit(b.0));
                                } else {
                                    physical.swap(Qubit(a.0), Qubit(b.0));
                                }
                            }
                        }
                    }
                }
                GateKind::Measure => {
                    physical.measure(Qubit(entry.hw[0].0), gate.clbits()[0]);
                }
                GateKind::Barrier => {
                    let qs: Vec<Qubit> = entry.hw.iter().map(|h| Qubit(h.0)).collect();
                    physical.push(Gate::barrier(qs));
                }
                kind => {
                    physical.push(Gate::single(kind, Qubit(entry.hw[0].0)));
                }
            }
        }
        ctx.set_physical(physical);
        Ok(())
    }
}

/// Computes the analytic reliability estimate (the paper's objective
/// value) for the scheduled circuit.
#[derive(Debug, Clone, Copy)]
pub struct EstimatePass;

impl Pass for EstimatePass {
    fn name(&self) -> &'static str {
        "estimate"
    }

    fn run(&self, ctx: &mut CompileContext<'_>) -> Result<(), CompileError> {
        let placement = ctx.require_placement("estimate")?;
        let schedule = ctx.require_schedule("estimate")?;
        let estimate = metrics::estimate(
            ctx.circuit(),
            placement,
            schedule,
            ctx.machine(),
            EstimateOptions::default(),
        );
        ctx.set_estimate(estimate);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::Benchmark;
    use nisq_opt::SwapHandling;

    fn machine() -> Machine {
        Machine::ibmq16_on_day(8, 0)
    }

    #[test]
    fn standard_pipeline_produces_every_artifact() {
        let m = machine();
        let mut ctx = CompileContext::new(&m, CompilerConfig::greedy_e(), Benchmark::Bv4.circuit());
        Pipeline::standard().run(&mut ctx).unwrap();
        assert!(ctx.placement().is_some());
        assert!(ctx.routing().is_some());
        assert!(ctx.schedule().is_some());
        assert!(ctx.physical().is_some());
        assert!(ctx.estimate().is_some());
        let names: Vec<&str> = ctx.timings().iter().map(|t| t.pass).collect();
        assert_eq!(
            names,
            vec![
                "decompose",
                "place",
                "route",
                "schedule",
                "emit",
                "estimate"
            ]
        );
    }

    #[test]
    fn passes_report_missing_artifacts() {
        let m = machine();
        let mut ctx = CompileContext::new(&m, CompilerConfig::qiskit(), Benchmark::Bv4.circuit());
        let err = SchedulePass.run(&mut ctx).unwrap_err();
        assert!(matches!(err, CompileError::MissingArtifact { .. }));
        let err = EmitPass.run(&mut ctx).unwrap_err();
        assert!(matches!(
            err,
            CompileError::MissingArtifact {
                artifact: "routing decision",
                ..
            }
        ));
    }

    #[test]
    fn route_pass_degrades_grid_selections_off_grid() {
        let ring = Machine::from_spec(nisq_machine::TopologySpec::Ring { n: 8 }, 1, 0);
        let mut ctx =
            CompileContext::new(&ring, CompilerConfig::qiskit(), Benchmark::Bv4.circuit());
        RoutePass.run(&mut ctx).unwrap();
        let routing = ctx.routing().unwrap();
        assert_eq!(routing.requested, RouteSelection::OneBendPaths);
        assert_eq!(routing.effective, RouteSelection::BestPath);
    }

    #[test]
    fn decompose_pass_expands_swaps_only_on_request() {
        let m = machine();
        let mut circuit = Circuit::new(2);
        circuit.swap(Qubit(0), Qubit(1));
        let untouched = CompilerConfig::qiskit();
        let mut ctx = CompileContext::new(&m, untouched, circuit.clone());
        DecomposePass.run(&mut ctx).unwrap();
        assert_eq!(ctx.circuit().len(), 1);

        let expand = CompilerConfig::qiskit().with_decompose_swaps(true);
        circuit.set_name("swapper");
        let mut ctx = CompileContext::new(&m, expand, circuit);
        DecomposePass.run(&mut ctx).unwrap();
        assert_eq!(ctx.circuit().len(), 3, "SWAP lowered to three CNOTs");
        assert!(ctx.circuit().iter().all(|g| g.kind() == GateKind::Cnot));
        assert_eq!(ctx.source_name(), "swapper", "source name preserved");
    }

    #[test]
    fn permute_elides_adjacent_program_swaps_end_to_end() {
        let m = machine();
        let mut circuit = Circuit::new(2);
        circuit.cnot(Qubit(0), Qubit(1));
        circuit.swap(Qubit(0), Qubit(1));

        let run = |handling| {
            let config = CompilerConfig::greedy_e().with_swap_handling(handling);
            let mut ctx = CompileContext::new(&m, config, circuit.clone());
            Pipeline::standard().run(&mut ctx).unwrap();
            (
                ctx.physical().unwrap().clone(),
                ctx.estimate().unwrap().total(),
            )
        };
        let (permuted, permute_rel) = run(SwapHandling::Permute);
        let (swapped_back, swap_back_rel) = run(SwapHandling::SwapBack);

        // Greedy placement puts both qubits on one edge, so under
        // permutation routing the program SWAP vanishes from the physical
        // circuit entirely — only the CNOT remains — and the reliability
        // estimate strictly improves over paying three CNOTs for it.
        assert_eq!(
            permuted
                .iter()
                .filter(|g| g.kind() == GateKind::Swap)
                .count(),
            0
        );
        assert_eq!(
            permuted
                .iter()
                .filter(|g| g.kind() == GateKind::Cnot)
                .count(),
            1
        );
        assert_eq!(
            swapped_back
                .iter()
                .filter(|g| g.kind() == GateKind::Swap)
                .count(),
            1
        );
        assert!(permute_rel > swap_back_rel);
    }

    #[test]
    fn permutation_policy_rides_the_same_pipeline() {
        let m = machine();
        let config = CompilerConfig::greedy_e().with_swap_handling(SwapHandling::Permute);
        let mut ctx = CompileContext::new(&m, config, Benchmark::Bv8.circuit());
        Pipeline::standard().run(&mut ctx).unwrap();
        let schedule = ctx.schedule().unwrap();
        // No swap-backs: the physical circuit contains exactly the one-way
        // swaps the schedule counted.
        let physical_swaps = ctx
            .physical()
            .unwrap()
            .iter()
            .filter(|g| g.kind() == GateKind::Swap)
            .count();
        assert_eq!(physical_swaps, schedule.swap_count);
    }
}
