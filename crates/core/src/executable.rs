use crate::config::Algorithm;
use crate::error::CompileError;
use crate::metrics::ReliabilityEstimate;
use crate::pipeline::{CompileContext, PassTiming};
use nisq_ir::{qasm, Circuit};
use nisq_opt::{Placement, Schedule};
use std::fmt;
use std::time::Duration;

/// The output of a compilation run: the physical circuit (over hardware
/// qubits, with all communication SWAPs inserted), the placement and
/// schedule that produced it, and the analytic reliability estimate.
///
/// The physical circuit is directly executable: every two-qubit gate acts on
/// adjacent hardware qubits, and [`CompiledCircuit::qasm`] emits it as
/// OpenQASM 2.0 (with SWAPs expanded into their three-CNOT decomposition),
/// the format the paper targets for IBMQ16.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    program_name: String,
    algorithm: Algorithm,
    physical: Circuit,
    placement: Placement,
    schedule: Schedule,
    estimate: ReliabilityEstimate,
    compile_time: Duration,
    pass_timings: Vec<PassTiming>,
}

impl CompiledCircuit {
    /// Assembles a compiled circuit from a finished pipeline run; used by
    /// [`crate::Compiler`].
    ///
    /// # Errors
    ///
    /// Returns an error if a required artifact is missing (a pass of the
    /// standard pipeline did not run).
    pub(crate) fn from_context(
        ctx: CompileContext<'_>,
        compile_time: Duration,
    ) -> Result<Self, CompileError> {
        let parts = ctx.finish()?;
        Ok(CompiledCircuit {
            program_name: parts.program_name,
            algorithm: parts.algorithm,
            physical: parts.physical,
            placement: parts.placement,
            schedule: parts.schedule,
            estimate: parts.estimate,
            compile_time,
            pass_timings: parts.timings,
        })
    }

    /// Name of the source program.
    pub fn program_name(&self) -> &str {
        &self.program_name
    }

    /// The algorithm that produced this executable.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The physical circuit over hardware qubits (SWAPs kept as explicit
    /// `swap` gates; use [`Circuit::expand_swaps`] for the pure-CNOT form).
    pub fn physical_circuit(&self) -> &Circuit {
        &self.physical
    }

    /// The initial placement of program qubits onto hardware qubits.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Where each program qubit ends up after execution: identical to the
    /// initial placement under swap-back routing, the accumulated
    /// permutation under permutation-tracking routing.
    pub fn final_placement(&self) -> &Placement {
        &self.schedule.final_placement
    }

    /// Wall-clock time spent in each pipeline pass, in execution order.
    pub fn pass_timings(&self) -> &[PassTiming] {
        &self.pass_timings
    }

    /// The gate schedule (start times, durations, routes).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Estimated execution duration in hardware timeslots (80 ns each on
    /// IBMQ16), the metric of the paper's Figures 7b and 9.
    pub fn duration_slots(&self) -> u32 {
        self.schedule.makespan
    }

    /// Number of SWAP operations inserted to bring qubits adjacent
    /// (one-way count; the emitted executable also returns qubits to their
    /// home positions).
    pub fn swap_count(&self) -> usize {
        self.schedule.swap_count
    }

    /// Number of hardware CNOTs in the executable, counting each SWAP as
    /// three CNOTs.
    pub fn hardware_cnot_count(&self) -> usize {
        self.physical.cnot_count_with_swaps()
    }

    /// The analytic reliability estimate (the paper's objective value).
    pub fn estimate(&self) -> &ReliabilityEstimate {
        &self.estimate
    }

    /// Estimated success probability of one run.
    pub fn estimated_reliability(&self) -> f64 {
        self.estimate.total()
    }

    /// Wall-clock time spent compiling.
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }

    /// Whether every gate finished inside its coherence window
    /// (Constraint 4/6).
    pub fn within_coherence(&self) -> bool {
        self.schedule.within_coherence()
    }

    /// Emits the executable as OpenQASM 2.0 with SWAPs expanded into CNOTs.
    pub fn qasm(&self) -> String {
        qasm::emit(&self.physical.expand_swaps())
    }
}

impl fmt::Display for CompiledCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} compiled with {}: {} swaps, {} timeslots, estimated reliability {:.3}",
            self.program_name,
            self.algorithm,
            self.swap_count(),
            self.duration_slots(),
            self.estimated_reliability()
        )
    }
}
