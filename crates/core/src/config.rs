use nisq_opt::{RouteSelection, SwapHandling};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// The mapping algorithms studied in the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Algorithm {
    /// IBM Qiskit 0.5.7-style baseline: lexicographic placement plus swap
    /// insertion; duration-oriented, calibration-unaware.
    Qiskit,
    /// Optimal placement minimizing duration with uniform gate times and a
    /// static coherence bound (no calibration data).
    TSmt,
    /// Optimal placement minimizing duration using per-edge gate durations
    /// and per-qubit coherence times from calibration data.
    TSmtStar,
    /// Optimal placement maximizing the weighted log-reliability of CNOT and
    /// readout operations (Equation 12), calibration-aware.
    RSmtStar,
    /// Greedy heaviest-vertex-first placement on most-reliable paths,
    /// calibration-aware.
    GreedyV,
    /// Greedy heaviest-edge-first placement on most-reliable paths,
    /// calibration-aware.
    GreedyE,
}

impl Algorithm {
    /// All algorithms in the order of Table 1.
    pub fn all() -> [Algorithm; 6] {
        [
            Algorithm::Qiskit,
            Algorithm::TSmt,
            Algorithm::TSmtStar,
            Algorithm::RSmtStar,
            Algorithm::GreedyV,
            Algorithm::GreedyE,
        ]
    }

    /// The name used in the paper's figures (calibration-aware variants are
    /// marked with a star).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Qiskit => "Qiskit",
            Algorithm::TSmt => "T-SMT",
            Algorithm::TSmtStar => "T-SMT*",
            Algorithm::RSmtStar => "R-SMT*",
            Algorithm::GreedyV => "GreedyV*",
            Algorithm::GreedyE => "GreedyE*",
        }
    }

    /// Whether the algorithm adapts to machine calibration data.
    pub fn is_calibration_aware(&self) -> bool {
        !matches!(self, Algorithm::Qiskit | Algorithm::TSmt)
    }

    /// Whether the algorithm solves the placement problem with the exact
    /// (SMT-equivalent) optimizer.
    pub fn is_optimal(&self) -> bool {
        matches!(
            self,
            Algorithm::TSmt | Algorithm::TSmtStar | Algorithm::RSmtStar
        )
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A full compiler configuration: an algorithm plus its parameters
/// (routing policy, readout weight ω, and the optimizer's budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompilerConfig {
    /// The mapping algorithm.
    pub algorithm: Algorithm,
    /// Routing policy used for placement costs and scheduling.
    pub routing: RouteSelection,
    /// Readout weight ω of the reliability objective (only used by R-SMT*).
    pub omega: f64,
    /// Uniform CNOT duration (timeslots) assumed by calibration-unaware
    /// variants.
    pub uniform_cnot_slots: u32,
    /// Static coherence bound (timeslots, the paper's `MT` = 1000) for
    /// calibration-unaware variants.
    pub static_coherence_slots: u32,
    /// Node budget of the exact solver before it falls back to the best
    /// incumbent found.
    pub solver_max_nodes: u64,
    /// Wall-clock budget of the exact solver.
    pub solver_time_limit: Option<Duration>,
    /// Random-circuit seed for the annealing fallback used when the exact
    /// solver's budget is exhausted.
    pub anneal_seed: u64,
    /// How swap round-trips are handled: the paper's swap-out/swap-back
    /// model (default) or permutation tracking (no swap-back, placement
    /// updated in place).
    pub swap_handling: SwapHandling,
    /// Lower program-level SWAP gates into three CNOTs in the decompose
    /// pass instead of routing them symbolically (off by default, matching
    /// the paper's model).
    pub decompose_swaps: bool,
}

impl CompilerConfig {
    fn base(algorithm: Algorithm, routing: RouteSelection) -> Self {
        CompilerConfig {
            algorithm,
            routing,
            omega: 0.5,
            uniform_cnot_slots: 4,
            static_coherence_slots: 1000,
            solver_max_nodes: 20_000_000,
            solver_time_limit: Some(Duration::from_secs(60)),
            anneal_seed: 0,
            swap_handling: SwapHandling::SwapBack,
            decompose_swaps: false,
        }
    }

    /// The Qiskit-style baseline configuration.
    pub fn qiskit() -> Self {
        CompilerConfig::base(Algorithm::Qiskit, RouteSelection::OneBendPaths)
    }

    /// T-SMT with the given routing policy (RR or 1BP in the paper).
    pub fn t_smt(routing: RouteSelection) -> Self {
        CompilerConfig::base(Algorithm::TSmt, routing)
    }

    /// T-SMT* with the given routing policy.
    pub fn t_smt_star(routing: RouteSelection) -> Self {
        CompilerConfig::base(Algorithm::TSmtStar, routing)
    }

    /// R-SMT* with readout weight ω and one-bend-path routing (the policy
    /// the paper uses for its reliability optimization).
    pub fn r_smt_star(omega: f64) -> Self {
        CompilerConfig {
            omega,
            ..CompilerConfig::base(Algorithm::RSmtStar, RouteSelection::OneBendPaths)
        }
    }

    /// GreedyV* (heaviest vertex first, best-path routing).
    pub fn greedy_v() -> Self {
        CompilerConfig::base(Algorithm::GreedyV, RouteSelection::BestPath)
    }

    /// GreedyE* (heaviest edge first, best-path routing).
    pub fn greedy_e() -> Self {
        CompilerConfig::base(Algorithm::GreedyE, RouteSelection::BestPath)
    }

    /// The full set of configurations evaluated in the paper's Table 1,
    /// with their default parameters.
    pub fn table1() -> Vec<CompilerConfig> {
        vec![
            CompilerConfig::qiskit(),
            CompilerConfig::t_smt(RouteSelection::RectangleReservation),
            CompilerConfig::t_smt_star(RouteSelection::RectangleReservation),
            CompilerConfig::r_smt_star(0.5),
            CompilerConfig::greedy_v(),
            CompilerConfig::greedy_e(),
        ]
    }

    /// Returns a copy with a different solver budget, for scalability
    /// experiments.
    pub fn with_solver_budget(mut self, max_nodes: u64, time_limit: Option<Duration>) -> Self {
        self.solver_max_nodes = max_nodes;
        self.solver_time_limit = time_limit;
        self
    }

    /// Returns a copy with a different route selection.
    pub fn with_routing(mut self, routing: RouteSelection) -> Self {
        self.routing = routing;
        self
    }

    /// Returns a copy with a different swap-handling policy (opt in to
    /// permutation-tracking routing with [`SwapHandling::Permute`]).
    pub fn with_swap_handling(mut self, swap_handling: SwapHandling) -> Self {
        self.swap_handling = swap_handling;
        self
    }

    /// Returns a copy that lowers program-level SWAPs in the decompose
    /// pass.
    pub fn with_decompose_swaps(mut self, decompose_swaps: bool) -> Self {
        self.decompose_swaps = decompose_swaps;
        self
    }

    /// Whether the scheduler should use calibration durations and per-qubit
    /// coherence windows for this configuration.
    pub fn calibration_aware(&self) -> bool {
        self.algorithm.is_calibration_aware()
    }

    /// A deterministic 64-bit fingerprint of every field (ω by its IEEE-754
    /// bits). Configurations that compare equal fingerprint equal, so the
    /// fingerprint serves as the config component of compile-cache keys.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = rustc_hash::FxHasher::default();
        self.algorithm.hash(&mut h);
        self.routing.hash(&mut h);
        h.write_u64(self.omega.to_bits());
        self.uniform_cnot_slots.hash(&mut h);
        self.static_coherence_slots.hash(&mut h);
        self.solver_max_nodes.hash(&mut h);
        self.solver_time_limit.hash(&mut h);
        self.anneal_seed.hash(&mut h);
        self.swap_handling.hash(&mut h);
        self.decompose_swaps.hash(&mut h);
        h.finish()
    }
}

impl fmt::Display for CompilerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.algorithm {
            Algorithm::RSmtStar => write!(
                f,
                "{} (omega = {}, {})",
                self.algorithm, self.omega, self.routing
            )?,
            _ => write!(f, "{} ({})", self.algorithm, self.routing)?,
        }
        if self.swap_handling != SwapHandling::SwapBack {
            write!(f, " [{}]", self.swap_handling)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        assert_eq!(Algorithm::RSmtStar.name(), "R-SMT*");
        assert_eq!(Algorithm::GreedyE.name(), "GreedyE*");
        assert_eq!(Algorithm::Qiskit.to_string(), "Qiskit");
    }

    #[test]
    fn calibration_awareness_matches_table1() {
        assert!(!Algorithm::Qiskit.is_calibration_aware());
        assert!(!Algorithm::TSmt.is_calibration_aware());
        assert!(Algorithm::TSmtStar.is_calibration_aware());
        assert!(Algorithm::RSmtStar.is_calibration_aware());
        assert!(Algorithm::GreedyV.is_calibration_aware());
        assert!(Algorithm::GreedyE.is_calibration_aware());
    }

    #[test]
    fn table1_lists_six_configurations() {
        let configs = CompilerConfig::table1();
        assert_eq!(configs.len(), 6);
        let names: Vec<&str> = configs.iter().map(|c| c.algorithm.name()).collect();
        assert_eq!(
            names,
            vec!["Qiskit", "T-SMT", "T-SMT*", "R-SMT*", "GreedyV*", "GreedyE*"]
        );
    }

    #[test]
    fn r_smt_star_records_omega() {
        let c = CompilerConfig::r_smt_star(0.25);
        assert_eq!(c.omega, 0.25);
        assert!(c.to_string().contains("0.25"));
    }

    #[test]
    fn greedy_configs_use_best_path_routing() {
        assert_eq!(CompilerConfig::greedy_v().routing, RouteSelection::BestPath);
        assert_eq!(CompilerConfig::greedy_e().routing, RouteSelection::BestPath);
    }

    #[test]
    fn with_solver_budget_updates_limits() {
        let c = CompilerConfig::r_smt_star(0.5).with_solver_budget(10, None);
        assert_eq!(c.solver_max_nodes, 10);
        assert_eq!(c.solver_time_limit, None);
    }
}
