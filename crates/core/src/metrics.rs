//! Analytic reliability estimation for compiled circuits.
//!
//! The paper scores a mapping by the product of the reliabilities of its
//! CNOT and readout operations (Section 4.5); single-qubit gates are ignored
//! because their error rates are two orders of magnitude smaller on IBMQ16.
//! This module computes that score for a placed and scheduled circuit, plus
//! optional single-qubit and decoherence factors for sensitivity studies.

use nisq_ir::{Circuit, GateKind};
use nisq_machine::{Calibration, HwQubit, Machine};
use nisq_opt::{Placement, Schedule};

/// Options controlling which factors enter the analytic estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EstimateOptions {
    /// Include single-qubit gate reliabilities in the total.
    pub include_single_qubit: bool,
    /// Include an exponential decoherence factor based on the schedule
    /// makespan and each qubit's T2 time.
    pub include_decoherence: bool,
}

/// The per-factor breakdown of an analytic reliability estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityEstimate {
    /// Product of CNOT route reliabilities (swaps counted one-way, as in
    /// the paper's Footnote 3).
    pub cnot: f64,
    /// Product of readout reliabilities of the measured hardware qubits.
    pub readout: f64,
    /// Product of single-qubit gate reliabilities.
    pub single_qubit: f64,
    /// Decoherence factor `exp(-makespan / T2)` aggregated over the qubits
    /// the program uses.
    pub decoherence: f64,
    options: EstimateOptions,
}

impl ReliabilityEstimate {
    /// The overall estimated success probability under the configured
    /// options (CNOT and readout factors are always included).
    pub fn total(&self) -> f64 {
        let mut t = self.cnot * self.readout;
        if self.options.include_single_qubit {
            t *= self.single_qubit;
        }
        if self.options.include_decoherence {
            t *= self.decoherence;
        }
        t
    }

    /// The options this estimate was computed with.
    pub fn options(&self) -> EstimateOptions {
        self.options
    }
}

/// Reliability of executing a CNOT along `path`: SWAPs (three CNOTs each)
/// on every hop except the last, the CNOT itself on the last hop.
pub fn route_reliability(calibration: &Calibration, path: &[HwQubit]) -> f64 {
    if path.len() < 2 {
        return 1.0;
    }
    let mut rel = 1.0;
    for (i, pair) in path.windows(2).enumerate() {
        let edge_rel = calibration
            .cnot_reliability(pair[0], pair[1])
            .expect("route hops are adjacent hardware qubits");
        if i + 2 == path.len() {
            rel *= edge_rel;
        } else {
            rel *= edge_rel.powi(3);
        }
    }
    rel
}

/// Computes the analytic reliability estimate for a scheduled circuit.
///
/// # Panics
///
/// Panics if the schedule does not cover the circuit (it must come from the
/// same compilation run).
pub fn estimate(
    circuit: &Circuit,
    placement: &Placement,
    schedule: &Schedule,
    machine: &Machine,
    options: EstimateOptions,
) -> ReliabilityEstimate {
    let calibration = machine.calibration();
    let mut cnot = 1.0;
    let mut readout = 1.0;
    let mut single_qubit = 1.0;

    for entry in &schedule.gates {
        let gate = &circuit.gates()[entry.gate_index];
        match gate.kind() {
            GateKind::Cnot | GateKind::Swap => {
                // A route-less SWAP was elided as a layout relabeling by
                // the routing policy: no physical gates, reliability 1.
                let Some(route) = entry.route.as_ref() else {
                    continue;
                };
                let mut r = route_reliability(calibration, &route.path);
                if gate.kind() == GateKind::Swap {
                    // A program-level SWAP costs three CNOTs on its final hop.
                    let last = &route.path[route.path.len() - 2..];
                    let edge_rel = calibration
                        .cnot_reliability(last[0], last[1])
                        .expect("route hops are adjacent");
                    r *= edge_rel.powi(2);
                }
                cnot *= r;
            }
            GateKind::Measure => {
                // The scheduled entry records the live hardware location
                // (equal to the placement under swap-back routing, the
                // drifted position under permutation tracking).
                readout *= calibration.readout_reliability(entry.hw[0]);
            }
            GateKind::Barrier => {}
            _ => {
                single_qubit *= 1.0 - calibration.single_qubit_error(entry.hw[0]);
            }
        }
    }

    // Decoherence: each program qubit idles for (makespan) slots at worst;
    // approximate survival as exp(-t / T2) per qubit. The T2 is read at
    // the *initial* placement — under permutation routing a drifting qubit
    // spends the makespan across several locations, so this optional
    // factor stays an initial-position approximation (tracking per-qubit
    // residency intervals would need schedule-resolved occupancy).
    let mut decoherence = 1.0;
    let makespan_ns = schedule.makespan as f64 * calibration.timeslot_ns;
    for p in 0..circuit.num_qubits() {
        let hw = placement.hw(nisq_ir::Qubit(p));
        let t2_ns = calibration.t2_us(hw) * 1000.0;
        decoherence *= (-makespan_ns / t2_ns).exp();
    }

    ReliabilityEstimate {
        cnot,
        readout,
        single_qubit,
        decoherence,
        options,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::Benchmark;
    use nisq_machine::Machine;
    use nisq_opt::{Scheduler, SchedulerConfig};

    fn compile_parts(
        benchmark: Benchmark,
        placement: Vec<HwQubit>,
    ) -> (Circuit, Placement, Schedule, Machine) {
        let machine = Machine::ibmq16_on_day(4, 0);
        let circuit = benchmark.circuit();
        let placement = Placement::new(placement);
        let schedule = Scheduler::new(&machine, SchedulerConfig::default())
            .schedule(&circuit, &placement)
            .unwrap();
        (circuit, placement, schedule, machine)
    }

    #[test]
    fn estimate_is_a_probability() {
        let (c, p, s, m) = compile_parts(
            Benchmark::Bv4,
            vec![HwQubit(0), HwQubit(2), HwQubit(9), HwQubit(1)],
        );
        let e = estimate(&c, &p, &s, &m, EstimateOptions::default());
        assert!(e.total() > 0.0 && e.total() <= 1.0);
        assert!(e.cnot > 0.0 && e.cnot <= 1.0);
        assert!(e.readout > 0.0 && e.readout <= 1.0);
    }

    #[test]
    fn compact_placement_beats_spread_placement() {
        let (c, p_near, s_near, m) = compile_parts(
            Benchmark::Bv4,
            vec![HwQubit(0), HwQubit(2), HwQubit(9), HwQubit(1)],
        );
        let near = estimate(&c, &p_near, &s_near, &m, EstimateOptions::default());
        let (c2, p_far, s_far, m2) = compile_parts(
            Benchmark::Bv4,
            vec![HwQubit(0), HwQubit(7), HwQubit(8), HwQubit(15)],
        );
        let far = estimate(&c2, &p_far, &s_far, &m2, EstimateOptions::default());
        assert!(near.total() > far.total());
    }

    #[test]
    fn optional_factors_only_lower_the_estimate() {
        let (c, p, s, m) =
            compile_parts(Benchmark::Toffoli, vec![HwQubit(1), HwQubit(2), HwQubit(9)]);
        let base = estimate(&c, &p, &s, &m, EstimateOptions::default());
        let full = estimate(
            &c,
            &p,
            &s,
            &m,
            EstimateOptions {
                include_single_qubit: true,
                include_decoherence: true,
            },
        );
        assert!(full.total() <= base.total());
        assert!(full.single_qubit < 1.0);
        assert!(full.decoherence < 1.0);
    }

    #[test]
    fn route_reliability_direct_edge_matches_calibration() {
        let m = Machine::ibmq16_on_day(4, 0);
        let cal = m.calibration();
        let direct = route_reliability(cal, &[HwQubit(0), HwQubit(1)]);
        assert!((direct - cal.cnot_reliability(HwQubit(0), HwQubit(1)).unwrap()).abs() < 1e-12);
        assert_eq!(route_reliability(cal, &[HwQubit(3)]), 1.0);
    }

    #[test]
    fn longer_routes_are_less_reliable() {
        let m = Machine::ibmq16_on_day(4, 0);
        let cal = m.calibration();
        let short = route_reliability(cal, &[HwQubit(0), HwQubit(1)]);
        let long = route_reliability(cal, &[HwQubit(0), HwQubit(1), HwQubit(2), HwQubit(3)]);
        assert!(long < short);
    }
}
