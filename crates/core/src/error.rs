use nisq_ir::IrError;
use nisq_machine::MachineError;
use nisq_opt::OptError;
use std::error::Error;
use std::fmt;

/// Errors produced while compiling a circuit onto a machine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The circuit does not fit on the machine.
    CircuitTooLarge {
        /// Program qubit count.
        program_qubits: usize,
        /// Hardware qubit count.
        hardware_qubits: usize,
    },
    /// The readout weight ω of the reliability objective is invalid.
    InvalidOmega {
        /// The offending value.
        omega: f64,
    },
    /// The optimization substrate reported a problem.
    Optimization(OptError),
    /// The hardware model reported a problem.
    Machine(MachineError),
    /// The IR layer reported a problem.
    Ir(IrError),
    /// A placement algorithm name was not found in the registry.
    UnknownPlacement {
        /// The requested strategy name.
        name: String,
    },
    /// A pipeline pass ran before the artifact it consumes was produced
    /// (e.g. scheduling before placement).
    MissingArtifact {
        /// The pass that failed.
        pass: &'static str,
        /// The artifact it needed.
        artifact: &'static str,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::CircuitTooLarge {
                program_qubits,
                hardware_qubits,
            } => write!(
                f,
                "circuit uses {program_qubits} qubits but the machine only has {hardware_qubits}"
            ),
            CompileError::InvalidOmega { omega } => {
                write!(f, "readout weight omega must be in [0, 1], got {omega}")
            }
            CompileError::Optimization(e) => write!(f, "optimization failed: {e}"),
            CompileError::Machine(e) => write!(f, "hardware model error: {e}"),
            CompileError::Ir(e) => write!(f, "circuit error: {e}"),
            CompileError::UnknownPlacement { name } => {
                write!(f, "no placement strategy registered under {name:?}")
            }
            CompileError::MissingArtifact { pass, artifact } => {
                write!(
                    f,
                    "pass {pass:?} ran before the {artifact} it needs was produced"
                )
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Optimization(e) => Some(e),
            CompileError::Machine(e) => Some(e),
            CompileError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OptError> for CompileError {
    fn from(e: OptError) -> Self {
        match e {
            OptError::TooManyProgramQubits { program, hardware } => CompileError::CircuitTooLarge {
                program_qubits: program,
                hardware_qubits: hardware,
            },
            OptError::InvalidOmega { omega } => CompileError::InvalidOmega { omega },
            other => CompileError::Optimization(other),
        }
    }
}

impl From<MachineError> for CompileError {
    fn from(e: MachineError) -> Self {
        CompileError::Machine(e)
    }
}

impl From<IrError> for CompileError {
    fn from(e: IrError) -> Self {
        CompileError::Ir(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_opt_errors() {
        let e: CompileError = OptError::TooManyProgramQubits {
            program: 20,
            hardware: 16,
        }
        .into();
        assert!(matches!(e, CompileError::CircuitTooLarge { .. }));
        assert!(e.to_string().contains("20"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileError>();
    }

    #[test]
    fn source_is_preserved_for_wrapped_errors() {
        let e = CompileError::Machine(MachineError::NotAdjacent { a: 0, b: 5 });
        assert!(e.source().is_some());
    }
}
