//! The calibration-aware greedy heuristics GreedyV* and GreedyE*
//! (Section 5 of the paper).
//!
//! Both heuristics work on the program's interaction graph and on
//! most-reliable hardware paths computed with Dijkstra over `-log` CNOT
//! reliabilities (provided by [`nisq_machine::ReliabilityModel`]):
//!
//! * **GreedyV\*** places program qubits in descending order of degree
//!   (number of CNOTs they participate in). The first qubit goes to the
//!   hardware qubit with the best readout reliability among the
//!   highest-degree hardware locations; each subsequent qubit goes to the
//!   free location that minimizes the summed path cost to its already
//!   placed interaction-graph neighbours.
//! * **GreedyE\*** places interaction-graph edges in descending order of
//!   weight (CNOT count). The first edge goes to the hardware edge with the
//!   best combined CNOT and readout reliability; afterwards, edges with one
//!   placed endpoint are completed by placing the other endpoint at the
//!   free location minimizing the summed path cost to its placed
//!   neighbours.

use crate::error::CompileError;
use nisq_ir::{Circuit, InteractionGraph, Qubit};
use nisq_machine::{HwQubit, Machine, TopologySpec};
use nisq_opt::Placement;

/// First hardware index of a heavy-hex lattice's dedicated bridge qubits
/// (bridges are appended after all chain qubits), or `usize::MAX` for any
/// other topology — so `q.0 >= heavy_hex_bridge_start(m)` tests
/// "is a bridge".
fn heavy_hex_bridge_start(machine: &Machine) -> usize {
    match machine.topology().spec() {
        TopologySpec::HeavyHex { rows, cols } => rows * cols,
        _ => usize::MAX,
    }
}

/// Summed CNOT reliability of the hardware edges incident to `q` — how
/// good a *neighborhood* the location offers, not just the location
/// itself. The sum (not the mean) deliberately rewards degree: on
/// heavy-hex it pulls seeds toward the degree-3 chain qubits at bridge
/// columns — the lattice's only cross-row gateways — while on rings
/// (uniform degree 2) it reduces to pure calibration quality.
fn neighborhood_cnot_reliability(machine: &Machine, q: HwQubit) -> f64 {
    let calibration = machine.calibration();
    machine
        .topology()
        .neighbors(q)
        .iter()
        .map(|&nb| calibration.cnot_reliability(q, nb).unwrap_or(0.0))
        .sum()
}

/// Topology-aware seed location for GreedyV*'s first (highest-degree)
/// program qubit. On grids this is the paper's original rule — best
/// readout among the maximum-degree locations — which golden snapshots
/// pin. Off-grid the degree signal degenerates (every ring qubit has
/// degree 2; heavy-hex maxima sit next to bridges), so the seed instead
/// maximizes `readout × summed adjacent CNOT reliability` — on a ring that
/// lands the hub antipodal to the weakest arc, and on heavy-hex the
/// candidate set additionally excludes the degree-2 bridge qubits
/// (articulation points whose neighborhoods dead-end into single chains).
fn seed_vertex_location(machine: &Machine) -> HwQubit {
    let topology = machine.topology();
    let reliability = machine.reliability();
    if topology.as_grid().is_some() {
        let max_degree = topology
            .qubits()
            .map(|q| topology.neighbors(q).len())
            .max()
            .unwrap_or(0);
        return topology
            .qubits()
            .filter(|&q| topology.neighbors(q).len() == max_degree)
            .max_by(|&a, &b| {
                reliability
                    .readout_reliability(a)
                    .partial_cmp(&reliability.readout_reliability(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("topology has at least one qubit");
    }
    let bridge_start = heavy_hex_bridge_start(machine);
    let score =
        |q: HwQubit| reliability.readout_reliability(q) * neighborhood_cnot_reliability(machine, q);
    topology
        .qubits()
        .filter(|&q| q.0 < bridge_start)
        .max_by(|&a, &b| {
            score(a)
                .partial_cmp(&score(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .or_else(|| topology.qubits().next())
        .expect("topology has at least one qubit")
}

/// State shared by both heuristics while they assign locations.
struct Assigner<'m> {
    machine: &'m Machine,
    graph: InteractionGraph,
    assignment: Vec<Option<HwQubit>>,
    free: Vec<bool>,
}

impl<'m> Assigner<'m> {
    fn new(circuit: &Circuit, machine: &'m Machine) -> Self {
        Assigner {
            machine,
            graph: circuit.interaction_graph(),
            assignment: vec![None; circuit.num_qubits()],
            free: vec![true; machine.num_qubits()],
        }
    }

    fn assign(&mut self, program: Qubit, hw: HwQubit) {
        debug_assert!(self.free[hw.0], "location {hw} already used");
        debug_assert!(self.assignment[program.0].is_none());
        self.assignment[program.0] = Some(hw);
        self.free[hw.0] = false;
    }

    fn free_locations(&self) -> impl Iterator<Item = HwQubit> + '_ {
        self.free
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(h, _)| HwQubit(h))
    }

    /// Summed most-reliable-path cost from `candidate` to the placed
    /// neighbours of `program` in the interaction graph (lower is better).
    fn path_cost_to_placed_neighbors(&self, program: Qubit, candidate: HwQubit) -> f64 {
        let reliability = self.machine.reliability();
        self.graph
            .neighbors(program)
            .into_iter()
            .filter_map(|nb| self.assignment[nb.0])
            .map(|hw| reliability.best_path(candidate, hw).cost)
            .sum()
    }

    /// Free location with the smallest summed path cost to the placed
    /// neighbours of `program`; readout reliability breaks ties.
    fn best_location_near_neighbors(&self, program: Qubit) -> HwQubit {
        let reliability = self.machine.reliability();
        self.free_locations()
            .min_by(|&a, &b| {
                let cost_a = self.path_cost_to_placed_neighbors(program, a);
                let cost_b = self.path_cost_to_placed_neighbors(program, b);
                cost_a
                    .partial_cmp(&cost_b)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(
                        reliability
                            .readout_reliability(b)
                            .partial_cmp(&reliability.readout_reliability(a))
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
            })
            .expect("machine has at least as many qubits as the program")
    }

    /// Free location with the best readout reliability.
    fn best_readout_location(&self) -> HwQubit {
        let reliability = self.machine.reliability();
        self.free_locations()
            .max_by(|&a, &b| {
                reliability
                    .readout_reliability(a)
                    .partial_cmp(&reliability.readout_reliability(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("machine has at least as many qubits as the program")
    }

    /// Places any program qubits that never participate in a CNOT at the
    /// remaining locations with the best readout reliability.
    fn place_isolated_qubits(&mut self) {
        for p in 0..self.assignment.len() {
            if self.assignment[p].is_none() {
                let loc = self.best_readout_location();
                self.assign(Qubit(p), loc);
            }
        }
    }

    fn into_placement(self) -> Placement {
        Placement::new(
            self.assignment
                .into_iter()
                .map(|h| h.expect("every program qubit placed"))
                .collect(),
        )
    }
}

fn check_size(circuit: &Circuit, machine: &Machine) -> Result<(), CompileError> {
    if circuit.num_qubits() > machine.num_qubits() {
        return Err(CompileError::CircuitTooLarge {
            program_qubits: circuit.num_qubits(),
            hardware_qubits: machine.num_qubits(),
        });
    }
    Ok(())
}

/// GreedyV*: heaviest-vertex-first placement.
///
/// # Errors
///
/// Returns an error if the circuit does not fit on the machine.
pub fn place_vertex_first(circuit: &Circuit, machine: &Machine) -> Result<Placement, CompileError> {
    check_size(circuit, machine)?;
    let mut assigner = Assigner::new(circuit, machine);

    let order = assigner.graph.qubits_by_degree();
    let interacting: Vec<Qubit> = order
        .iter()
        .copied()
        .filter(|&q| assigner.graph.degree(q) > 0)
        .collect();

    if let Some(&first) = interacting.first() {
        let loc = seed_vertex_location(machine);
        assigner.assign(first, loc);
    }
    for &q in interacting.iter().skip(1) {
        let loc = assigner.best_location_near_neighbors(q);
        assigner.assign(q, loc);
    }
    assigner.place_isolated_qubits();
    Ok(assigner.into_placement())
}

/// GreedyE*: heaviest-edge-first placement.
///
/// # Errors
///
/// Returns an error if the circuit does not fit on the machine.
pub fn place_edge_first(circuit: &Circuit, machine: &Machine) -> Result<Placement, CompileError> {
    check_size(circuit, machine)?;
    let mut assigner = Assigner::new(circuit, machine);
    let topology = machine.topology();
    let reliability = machine.reliability();
    let calibration = machine.calibration();

    let edges = assigner.graph.edges_by_weight();
    // The neighborhood factor picks the best arc on rings, where every
    // edge looks alike structurally — the seed lands antipodal to the
    // weakest stretch so the chain grows through reliable territory. On
    // heavy-hex the plain score already seeds well (a heavy bridge edge
    // puts the component on the cross-row junction, which measurement
    // shows is the *right* place — bridge avoidance belongs to GreedyV*'s
    // hub seat, not here), and on grids it is pinned by golden snapshots.
    let weigh_neighborhood = matches!(topology.spec(), TopologySpec::Ring { .. });

    // Seeds a new connected component: place both endpoints of `edge` on the
    // free hardware edge with the best combined CNOT and readout
    // reliability, falling back to the closest pair of free locations when
    // no free hardware edge remains.
    let seed_edge = |assigner: &mut Assigner<'_>, a: Qubit, b: Qubit| {
        let mut best: Option<(f64, HwQubit, HwQubit)> = None;
        for &(h1, h2) in topology.edges() {
            if !assigner.free[h1.0] || !assigner.free[h2.0] {
                continue;
            }
            let mut score = calibration
                .cnot_reliability(h1, h2)
                .expect("topology edges have calibration")
                * reliability.readout_reliability(h1)
                * reliability.readout_reliability(h2);
            if weigh_neighborhood {
                score *= neighborhood_cnot_reliability(machine, h1)
                    * neighborhood_cnot_reliability(machine, h2);
            }
            if best.is_none_or(|(s, _, _)| score > s) {
                best = Some((score, h1, h2));
            }
        }
        match best {
            Some((_, h1, h2)) => {
                assigner.assign(a, h1);
                assigner.assign(b, h2);
            }
            None => {
                // No free adjacent pair: place the endpoints on the pair of
                // free locations with the most reliable connecting path.
                let free: Vec<HwQubit> = assigner.free_locations().collect();
                let mut best = (f64::INFINITY, free[0], free[1 % free.len()]);
                for (i, &h1) in free.iter().enumerate() {
                    for &h2 in &free[i + 1..] {
                        let cost = reliability.best_path(h1, h2).cost;
                        if cost < best.0 {
                            best = (cost, h1, h2);
                        }
                    }
                }
                assigner.assign(a, best.1);
                assigner.assign(b, best.2);
            }
        }
    };

    loop {
        // First preference: an edge with exactly one placed endpoint, in
        // weight order.
        let mut progressed = false;
        for &(a, b, _) in &edges {
            let pa = assigner.assignment[a.0].is_some();
            let pb = assigner.assignment[b.0].is_some();
            if pa ^ pb {
                let unplaced = if pa { b } else { a };
                let loc = assigner.best_location_near_neighbors(unplaced);
                assigner.assign(unplaced, loc);
                progressed = true;
                break;
            }
        }
        if progressed {
            continue;
        }
        // Otherwise seed the heaviest fully-unplaced edge as a new component.
        match edges.iter().find(|&&(a, b, _)| {
            assigner.assignment[a.0].is_none() && assigner.assignment[b.0].is_none()
        }) {
            Some(&(a, b, _)) => {
                seed_edge(&mut assigner, a, b);
            }
            None => break,
        }
    }

    assigner.place_isolated_qubits();
    Ok(assigner.into_placement())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::Benchmark;

    fn machine() -> Machine {
        Machine::ibmq16_on_day(17, 0)
    }

    #[test]
    fn both_heuristics_produce_valid_placements_for_all_benchmarks() {
        let m = machine();
        for b in Benchmark::all() {
            let c = b.circuit();
            for placement in [
                place_vertex_first(&c, &m).unwrap(),
                place_edge_first(&c, &m).unwrap(),
            ] {
                assert_eq!(placement.len(), c.num_qubits(), "{b}");
                placement.validate(m.num_qubits()).unwrap();
            }
        }
    }

    #[test]
    fn greedy_e_places_bv4_star_without_swaps() {
        // BV4's hub-and-spoke interaction graph fits on adjacent hardware
        // qubits; GreedyE* should find such a placement (every data qubit
        // within one hop of the ancilla, i.e. zero swaps needed).
        let m = machine();
        let c = Benchmark::Bv4.circuit();
        let placement = place_edge_first(&c, &m).unwrap();
        let ancilla = placement.hw(Qubit(3));
        let adjacent_count = (0..3)
            .filter(|&q| m.topology().adjacent(placement.hw(Qubit(q)), ancilla))
            .count();
        assert!(
            adjacent_count >= 2,
            "GreedyE* spread the BV4 star too far: {:?}",
            placement.as_slice()
        );
    }

    #[test]
    fn greedy_v_places_hub_on_high_degree_location() {
        let m = machine();
        let c = Benchmark::Bv4.circuit();
        let placement = place_vertex_first(&c, &m).unwrap();
        // The ancilla has the highest degree and must sit on a hardware
        // qubit with the maximum number of neighbours (3 on the 8x2 grid).
        let hub = placement.hw(Qubit(3));
        assert_eq!(m.topology().neighbors(hub).len(), 3);
    }

    #[test]
    fn heuristics_adapt_to_calibration() {
        let c = Benchmark::Hs6.circuit();
        let day0 = place_edge_first(&c, &Machine::ibmq16_on_day(23, 0)).unwrap();
        let mut changed = false;
        for day in 1..6 {
            let p = place_edge_first(&c, &Machine::ibmq16_on_day(23, day)).unwrap();
            if p != day0 {
                changed = true;
                break;
            }
        }
        assert!(changed, "GreedyE* never adapted across six days");
    }

    #[test]
    fn circuits_without_cnots_use_best_readout_locations() {
        let m = machine();
        let mut c = Circuit::new(3);
        c.h(Qubit(0));
        c.h(Qubit(1));
        c.h(Qubit(2));
        c.measure_all();
        let placement = place_vertex_first(&c, &m).unwrap();
        // The best-readout location must be used by one of the qubits.
        let best = m
            .topology()
            .qubits()
            .max_by(|&a, &b| {
                m.reliability()
                    .readout_reliability(a)
                    .partial_cmp(&m.reliability().readout_reliability(b))
                    .unwrap()
            })
            .unwrap();
        assert!(placement.as_slice().contains(&best));
    }

    #[test]
    fn oversized_circuits_are_rejected() {
        let m = machine();
        let c = nisq_ir::random_circuit(nisq_ir::RandomCircuitConfig::new(17, 64, 1));
        assert!(place_vertex_first(&c, &m).is_err());
        assert!(place_edge_first(&c, &m).is_err());
    }
}
