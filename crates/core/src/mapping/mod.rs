//! Placement (initial mapping) algorithms.
//!
//! Each sub-module computes an injective placement of program qubits onto
//! hardware qubits; the compiler then schedules, routes and emits code for
//! that placement. The algorithms mirror the paper's Table 1:
//!
//! * [`qiskit`] — the Qiskit 0.5.7-style baseline (lexicographic layout),
//! * [`smt`] — the optimal variants (T-SMT, T-SMT*, R-SMT*) via the
//!   branch-and-bound substrate in [`nisq_opt`],
//! * [`greedy`] — the calibration-aware heuristics GreedyV* and GreedyE*.

pub mod greedy;
pub mod qiskit;
pub mod smt;

use crate::config::{Algorithm, CompilerConfig};
use crate::error::CompileError;
use nisq_ir::Circuit;
use nisq_machine::Machine;
use nisq_opt::Placement;

/// Computes the initial placement for `circuit` on `machine` using the
/// algorithm selected by `config`.
///
/// # Errors
///
/// Returns an error if the circuit does not fit on the machine or the
/// configuration is invalid (e.g. ω outside `[0, 1]`).
pub fn place(
    circuit: &Circuit,
    machine: &Machine,
    config: &CompilerConfig,
) -> Result<Placement, CompileError> {
    if circuit.num_qubits() > machine.num_qubits() {
        return Err(CompileError::CircuitTooLarge {
            program_qubits: circuit.num_qubits(),
            hardware_qubits: machine.num_qubits(),
        });
    }
    match config.algorithm {
        Algorithm::Qiskit => qiskit::place(circuit, machine),
        Algorithm::TSmt | Algorithm::TSmtStar | Algorithm::RSmtStar => {
            smt::place(circuit, machine, config)
        }
        Algorithm::GreedyV => greedy::place_vertex_first(circuit, machine),
        Algorithm::GreedyE => greedy::place_edge_first(circuit, machine),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::Benchmark;

    #[test]
    fn every_algorithm_produces_a_valid_placement() {
        let machine = Machine::ibmq16_on_day(3, 0);
        let circuit = Benchmark::Bv4.circuit();
        for config in CompilerConfig::table1() {
            let placement = place(&circuit, &machine, &config)
                .unwrap_or_else(|e| panic!("{} failed: {e}", config.algorithm));
            assert_eq!(
                placement.len(),
                circuit.num_qubits(),
                "{}",
                config.algorithm
            );
            placement
                .validate(machine.num_qubits())
                .unwrap_or_else(|e| panic!("{} produced invalid placement: {e}", config.algorithm));
        }
    }

    #[test]
    fn oversized_circuit_is_rejected() {
        let machine = Machine::ibmq16_on_day(3, 0);
        let circuit = nisq_ir::random_circuit(nisq_ir::RandomCircuitConfig::new(18, 32, 0));
        let err = place(&circuit, &machine, &CompilerConfig::qiskit()).unwrap_err();
        assert!(matches!(err, CompileError::CircuitTooLarge { .. }));
    }
}
