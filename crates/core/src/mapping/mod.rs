//! Placement (initial mapping) strategies and their registry.
//!
//! Each strategy computes an injective placement of program qubits onto
//! hardware qubits; the pipeline then routes, schedules and emits code for
//! that placement. The built-in strategies mirror the paper's Table 1:
//!
//! * [`qiskit`] — the Qiskit 0.5.7-style baseline (lexicographic layout),
//! * [`smt`] — the optimal variants (T-SMT, T-SMT*, R-SMT*) via the
//!   branch-and-bound substrate in [`nisq_opt`],
//! * [`greedy`] — the calibration-aware heuristics GreedyV* and GreedyE*.
//!
//! New mapping heuristics plug in by implementing [`PlacementStrategy`] and
//! registering under a name — no compiler changes needed:
//!
//! ```
//! use nisq_core::mapping::{PlacementRegistry, PlacementStrategy};
//! use nisq_core::{CompileError, CompilerConfig};
//! use nisq_ir::Circuit;
//! use nisq_machine::{HwQubit, Machine};
//! use nisq_opt::Placement;
//!
//! /// Places program qubit `i` on hardware qubit `n - 1 - i`.
//! #[derive(Debug)]
//! struct ReversePlacement;
//!
//! impl PlacementStrategy for ReversePlacement {
//!     fn name(&self) -> &'static str {
//!         "reverse"
//!     }
//!     fn place(
//!         &self,
//!         circuit: &Circuit,
//!         machine: &Machine,
//!         _config: &CompilerConfig,
//!     ) -> Result<Placement, CompileError> {
//!         let n = machine.num_qubits();
//!         Ok(Placement::new(
//!             (0..circuit.num_qubits()).map(|i| HwQubit(n - 1 - i)).collect(),
//!         ))
//!     }
//! }
//!
//! let mut registry = PlacementRegistry::standard();
//! registry.register(ReversePlacement);
//! assert!(registry.get("reverse").is_some());
//! assert!(registry.get("Qiskit").is_some(), "built-ins stay registered");
//! ```

pub mod greedy;
pub mod qiskit;
pub mod smt;

use crate::config::{Algorithm, CompilerConfig};
use crate::error::CompileError;
use nisq_ir::Circuit;
use nisq_machine::Machine;
use nisq_opt::Placement;
use std::fmt;

/// An initial-placement algorithm, registered by name in a
/// [`PlacementRegistry`] and dispatched by the pipeline's place pass.
pub trait PlacementStrategy: fmt::Debug + Send + Sync {
    /// The name the strategy is registered under (the paper's Table-1 names
    /// for the built-ins: "Qiskit", "T-SMT", "T-SMT*", "R-SMT*",
    /// "GreedyV*", "GreedyE*").
    fn name(&self) -> &'static str;

    /// Computes the placement for `circuit` on `machine`.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit does not fit on the machine or the
    /// configuration is invalid for this strategy.
    fn place(
        &self,
        circuit: &Circuit,
        machine: &Machine,
        config: &CompilerConfig,
    ) -> Result<Placement, CompileError>;
}

/// The Qiskit 0.5.7-style lexicographic baseline.
#[derive(Debug, Clone, Copy)]
pub struct QiskitPlacement;

impl PlacementStrategy for QiskitPlacement {
    fn name(&self) -> &'static str {
        Algorithm::Qiskit.name()
    }

    fn place(
        &self,
        circuit: &Circuit,
        machine: &Machine,
        _config: &CompilerConfig,
    ) -> Result<Placement, CompileError> {
        qiskit::place(circuit, machine)
    }
}

/// One of the exact (SMT-equivalent) variants; the objective is taken from
/// the configuration's algorithm (T-SMT, T-SMT* or R-SMT*).
#[derive(Debug, Clone, Copy)]
pub struct SmtPlacement {
    algorithm: Algorithm,
}

impl SmtPlacement {
    /// The strategy for one of the SMT-style algorithms.
    ///
    /// # Panics
    ///
    /// Panics if `algorithm` is not an SMT-style variant.
    pub fn new(algorithm: Algorithm) -> Self {
        assert!(
            algorithm.is_optimal(),
            "{algorithm} is not an SMT-style variant"
        );
        SmtPlacement { algorithm }
    }
}

impl PlacementStrategy for SmtPlacement {
    fn name(&self) -> &'static str {
        self.algorithm.name()
    }

    fn place(
        &self,
        circuit: &Circuit,
        machine: &Machine,
        config: &CompilerConfig,
    ) -> Result<Placement, CompileError> {
        smt::place(circuit, machine, config)
    }
}

/// GreedyV*: heaviest-vertex-first placement on most-reliable paths.
#[derive(Debug, Clone, Copy)]
pub struct GreedyVertexPlacement;

impl PlacementStrategy for GreedyVertexPlacement {
    fn name(&self) -> &'static str {
        Algorithm::GreedyV.name()
    }

    fn place(
        &self,
        circuit: &Circuit,
        machine: &Machine,
        _config: &CompilerConfig,
    ) -> Result<Placement, CompileError> {
        greedy::place_vertex_first(circuit, machine)
    }
}

/// GreedyE*: heaviest-edge-first placement on most-reliable paths.
#[derive(Debug, Clone, Copy)]
pub struct GreedyEdgePlacement;

impl PlacementStrategy for GreedyEdgePlacement {
    fn name(&self) -> &'static str {
        Algorithm::GreedyE.name()
    }

    fn place(
        &self,
        circuit: &Circuit,
        machine: &Machine,
        _config: &CompilerConfig,
    ) -> Result<Placement, CompileError> {
        greedy::place_edge_first(circuit, machine)
    }
}

/// A name-keyed collection of [`PlacementStrategy`] implementations; the
/// pipeline's place pass looks the configured algorithm up here, so new
/// strategies (and per-strategy timing) come for free.
#[derive(Debug, Default)]
pub struct PlacementRegistry {
    strategies: Vec<Box<dyn PlacementStrategy>>,
}

impl PlacementRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        PlacementRegistry::default()
    }

    /// The registry with all Table-1 strategies registered.
    pub fn standard() -> Self {
        let mut r = PlacementRegistry::empty();
        r.register(QiskitPlacement);
        r.register(SmtPlacement::new(Algorithm::TSmt));
        r.register(SmtPlacement::new(Algorithm::TSmtStar));
        r.register(SmtPlacement::new(Algorithm::RSmtStar));
        r.register(GreedyVertexPlacement);
        r.register(GreedyEdgePlacement);
        r
    }

    /// Registers a strategy, replacing any previous entry with the same
    /// name.
    pub fn register(&mut self, strategy: impl PlacementStrategy + 'static) {
        self.strategies.retain(|s| s.name() != strategy.name());
        self.strategies.push(Box::new(strategy));
    }

    /// Looks a strategy up by its registered name.
    pub fn get(&self, name: &str) -> Option<&dyn PlacementStrategy> {
        self.strategies
            .iter()
            .find(|s| s.name() == name)
            .map(|s| s.as_ref())
    }

    /// The registered strategy names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.strategies.iter().map(|s| s.name()).collect()
    }
}

/// Computes the initial placement for `circuit` on `machine` using the
/// standard registry and the algorithm selected by `config` (convenience
/// wrapper over [`PlacementRegistry::standard`]).
///
/// # Errors
///
/// Returns an error if the circuit does not fit on the machine or the
/// configuration is invalid (e.g. ω outside `[0, 1]`).
pub fn place(
    circuit: &Circuit,
    machine: &Machine,
    config: &CompilerConfig,
) -> Result<Placement, CompileError> {
    if circuit.num_qubits() > machine.num_qubits() {
        return Err(CompileError::CircuitTooLarge {
            program_qubits: circuit.num_qubits(),
            hardware_qubits: machine.num_qubits(),
        });
    }
    let name = config.algorithm.name();
    PlacementRegistry::standard()
        .get(name)
        .ok_or_else(|| CompileError::UnknownPlacement {
            name: name.to_string(),
        })?
        .place(circuit, machine, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::Benchmark;

    #[test]
    fn every_algorithm_produces_a_valid_placement() {
        let machine = Machine::ibmq16_on_day(3, 0);
        let circuit = Benchmark::Bv4.circuit();
        for config in CompilerConfig::table1() {
            let placement = place(&circuit, &machine, &config)
                .unwrap_or_else(|e| panic!("{} failed: {e}", config.algorithm));
            assert_eq!(
                placement.len(),
                circuit.num_qubits(),
                "{}",
                config.algorithm
            );
            placement
                .validate(machine.num_qubits())
                .unwrap_or_else(|e| panic!("{} produced invalid placement: {e}", config.algorithm));
        }
    }

    #[test]
    fn oversized_circuit_is_rejected() {
        let machine = Machine::ibmq16_on_day(3, 0);
        let circuit = nisq_ir::random_circuit(nisq_ir::RandomCircuitConfig::new(18, 32, 0));
        let err = place(&circuit, &machine, &CompilerConfig::qiskit()).unwrap_err();
        assert!(matches!(err, CompileError::CircuitTooLarge { .. }));
    }

    #[test]
    fn standard_registry_covers_table1() {
        let registry = PlacementRegistry::standard();
        for config in CompilerConfig::table1() {
            assert!(
                registry.get(config.algorithm.name()).is_some(),
                "{} missing from the standard registry",
                config.algorithm
            );
        }
        assert_eq!(registry.names().len(), 6);
        assert!(registry.get("nonsense").is_none());
    }

    #[test]
    fn registering_twice_replaces_the_entry() {
        let mut registry = PlacementRegistry::standard();
        registry.register(QiskitPlacement);
        assert_eq!(registry.names().len(), 6);
    }

    #[test]
    #[should_panic(expected = "not an SMT-style variant")]
    fn smt_strategy_rejects_heuristic_algorithms() {
        let _ = SmtPlacement::new(Algorithm::GreedyV);
    }
}
