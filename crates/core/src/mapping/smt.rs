//! Optimal placement via the constrained-optimization substrate.
//!
//! The paper encodes mapping as an SMT problem and solves it with Z3. Here
//! the same objective (duration for T-SMT/T-SMT*, weighted log-reliability
//! for R-SMT*) is minimized exactly by branch and bound; when the search
//! budget is exhausted on large instances the best incumbent is refined
//! with simulated annealing, mirroring how the paper caps SMT solve time on
//! its synthetic scalability benchmarks.

use crate::config::{Algorithm, CompilerConfig};
use crate::error::CompileError;
use nisq_ir::Circuit;
use nisq_machine::Machine;
use nisq_opt::{
    problem, solve_annealing, solve_branch_and_bound, AnnealConfig, MappingObjective, Placement,
    SolverConfig,
};

/// Computes the optimal placement for the configured SMT-style variant.
///
/// # Errors
///
/// Returns an error if the circuit does not fit on the machine, ω is
/// invalid, or `config.algorithm` is not one of the SMT variants.
pub fn place(
    circuit: &Circuit,
    machine: &Machine,
    config: &CompilerConfig,
) -> Result<Placement, CompileError> {
    let objective = match config.algorithm {
        Algorithm::TSmt => MappingObjective::Duration {
            calibration_aware: false,
            uniform_cnot_slots: config.uniform_cnot_slots,
        },
        Algorithm::TSmtStar => MappingObjective::Duration {
            calibration_aware: true,
            uniform_cnot_slots: config.uniform_cnot_slots,
        },
        Algorithm::RSmtStar => MappingObjective::Reliability {
            omega: config.omega,
        },
        other => {
            return Err(CompileError::Optimization(
                nisq_opt::OptError::InvalidPlacement {
                    reason: format!("algorithm {other} is not an SMT-style variant"),
                },
            ))
        }
    };

    let problem = problem::build(circuit, machine, objective, config.routing)?;
    let solver_config = SolverConfig {
        max_nodes: config.solver_max_nodes,
        time_limit: config.solver_time_limit,
    };
    let exact = solve_branch_and_bound(&problem, &solver_config);
    let solution = if exact.optimal {
        exact
    } else {
        // Anytime fallback: keep the better of the truncated exact search
        // and an annealing run.
        let anneal = solve_annealing(&problem, &AnnealConfig::new(200_000, config.anneal_seed));
        if anneal.cost < exact.cost {
            anneal
        } else {
            exact
        }
    };
    Ok(Placement::new(solution.assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::{Benchmark, Qubit};
    use nisq_machine::HwQubit;

    fn machine() -> Machine {
        Machine::ibmq16_on_day(11, 0)
    }

    #[test]
    fn r_smt_star_places_interacting_qubits_close() {
        let circuit = Benchmark::Bv4.circuit();
        let placement = place(&circuit, &machine(), &CompilerConfig::r_smt_star(0.5)).unwrap();
        // The ancilla (program qubit 3) interacts with every data qubit; the
        // average distance to it should be small (at most 2 hops).
        let m = machine();
        let ancilla = placement.hw(Qubit(3));
        let avg: f64 = (0..3)
            .map(|q| m.topology().distance(placement.hw(Qubit(q)), ancilla) as f64)
            .sum::<f64>()
            / 3.0;
        assert!(avg <= 2.0, "average distance to ancilla was {avg}");
    }

    #[test]
    fn t_smt_ignores_calibration_data() {
        // With a duration objective and uniform gate times, only the
        // topology matters: two different calibration days give the same
        // placement.
        let circuit = Benchmark::Toffoli.circuit();
        let config = CompilerConfig::t_smt(nisq_opt::RouteSelection::RectangleReservation);
        let a = place(&circuit, &Machine::ibmq16_on_day(1, 0), &config).unwrap();
        let b = place(&circuit, &Machine::ibmq16_on_day(1, 6), &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn r_smt_star_adapts_to_calibration_changes() {
        // Over several days, the reliability-aware mapping should change at
        // least once as error rates drift (Figure 6's premise).
        let circuit = Benchmark::Bv4.circuit();
        let config = CompilerConfig::r_smt_star(0.5);
        let placements: Vec<Placement> = (0..5)
            .map(|day| place(&circuit, &Machine::ibmq16_on_day(1, day), &config).unwrap())
            .collect();
        let all_same = placements.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same, "R-SMT* never adapted across five days");
    }

    #[test]
    fn budget_exhaustion_still_returns_valid_placement() {
        let circuit = Benchmark::Adder.circuit();
        let config = CompilerConfig::r_smt_star(0.5).with_solver_budget(2, None);
        let placement = place(&circuit, &machine(), &config).unwrap();
        placement.validate(16).unwrap();
        assert_eq!(placement.len(), 4);
    }

    #[test]
    fn rejects_non_smt_algorithms() {
        let circuit = Benchmark::Bv4.circuit();
        let err = place(&circuit, &machine(), &CompilerConfig::greedy_e()).unwrap_err();
        assert!(matches!(err, CompileError::Optimization(_)));
    }

    #[test]
    fn omega_one_optimizes_readout_only() {
        // With ω = 1 the objective ignores CNOTs entirely, so the chosen
        // locations must be the top-4 readout-reliability qubits.
        let m = machine();
        let circuit = Benchmark::Bv4.circuit();
        let placement = place(&circuit, &m, &CompilerConfig::r_smt_star(1.0)).unwrap();
        let mut by_readout: Vec<HwQubit> = m.topology().qubits().collect();
        by_readout.sort_by(|a, b| {
            m.calibration()
                .readout_error(*a)
                .partial_cmp(&m.calibration().readout_error(*b))
                .unwrap()
        });
        let top4: std::collections::BTreeSet<HwQubit> = by_readout[..4].iter().copied().collect();
        let chosen: std::collections::BTreeSet<HwQubit> =
            placement.as_slice().iter().copied().collect();
        assert_eq!(chosen, top4);
    }
}
