//! The Qiskit 0.5.7-style baseline placement.
//!
//! The paper observes that the contemporaneous Qiskit mapper "places qubits
//! in a lexicographic order without considering CNOT and readout errors and
//! incurs extra swap operations" (Section 7, discussion of Figure 8a). This
//! module reproduces that behaviour: program qubit `i` is placed on hardware
//! qubit `i`, and all communication is left to swap insertion during
//! routing.

use crate::error::CompileError;
use nisq_ir::Circuit;
use nisq_machine::{HwQubit, Machine};
use nisq_opt::Placement;

/// Places program qubit `i` on hardware qubit `i`.
///
/// # Errors
///
/// Returns an error if the circuit has more qubits than the machine.
pub fn place(circuit: &Circuit, machine: &Machine) -> Result<Placement, CompileError> {
    if circuit.num_qubits() > machine.num_qubits() {
        return Err(CompileError::CircuitTooLarge {
            program_qubits: circuit.num_qubits(),
            hardware_qubits: machine.num_qubits(),
        });
    }
    Ok(Placement::new(
        (0..circuit.num_qubits()).map(HwQubit).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::{Benchmark, Qubit};

    #[test]
    fn placement_is_lexicographic() {
        let machine = Machine::ibmq16_on_day(0, 0);
        let circuit = Benchmark::Bv8.circuit();
        let placement = place(&circuit, &machine).unwrap();
        for q in 0..8 {
            assert_eq!(placement.hw(Qubit(q)), HwQubit(q));
        }
    }

    #[test]
    fn ignores_calibration_entirely() {
        // The same placement is produced regardless of the machine's state.
        let circuit = Benchmark::Toffoli.circuit();
        let a = place(&circuit, &Machine::ibmq16_on_day(0, 0)).unwrap();
        let b = place(&circuit, &Machine::ibmq16_on_day(99, 5)).unwrap();
        assert_eq!(a, b);
    }
}
