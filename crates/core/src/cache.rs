//! Pass-level placement caching.
//!
//! Placement is by far the most expensive pass of the pipeline (the exact
//! solver explores millions of nodes), yet daily figure sweeps recompile
//! many identical `(circuit, machine-day, config)` triples. A
//! [`PlacementCache`] shared across [`crate::Compiler`] instances memoizes
//! the [`Placement`] a strategy produced for such a triple, keyed on content
//! fingerprints so any change to the circuit, the calibration data or the
//! configuration invalidates the entry.
//!
//! Calibration-unaware algorithms (Qiskit, T-SMT) place from the coupling
//! graph alone, so their entries are keyed on the *topology* fingerprint
//! instead of the full machine fingerprint — a week-long day sweep reuses
//! one placement per `(circuit, config)` pair, making daily-variation
//! figures largely placement-free.

use crate::config::CompilerConfig;
use nisq_ir::Circuit;
use nisq_machine::Machine;
use nisq_opt::Placement;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache key: circuit fingerprint, machine-or-topology fingerprint, and
/// config fingerprint.
type Key = (u64, u64, u64);

/// Hit/miss counters of a [`PlacementCache`] (monotonically increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlacementCacheStats {
    /// Lookups answered from the cache (placement strategy not run).
    pub hits: u64,
    /// Lookups that ran the placement strategy and populated the cache.
    pub misses: u64,
}

impl PlacementCacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A thread-safe, shareable memo of placement results, consulted by the
/// place pass when installed via
/// [`Compiler::with_placement_cache`](crate::Compiler::with_placement_cache)
/// or [`Pipeline::standard_with_placement_cache`](crate::Pipeline::standard_with_placement_cache).
///
/// # Example
///
/// ```
/// use nisq_core::{Compiler, CompilerConfig, PlacementCache};
/// use nisq_ir::Benchmark;
/// use nisq_machine::Machine;
/// use std::sync::Arc;
///
/// let cache = Arc::new(PlacementCache::new());
/// let machine = Machine::ibmq16_on_day(1, 0);
/// let compiler =
///     Compiler::new(&machine, CompilerConfig::greedy_e()).with_placement_cache(cache.clone());
/// let first = compiler.compile(&Benchmark::Bv4.circuit()).unwrap();
/// let second = compiler.compile(&Benchmark::Bv4.circuit()).unwrap();
/// assert_eq!(first.placement(), second.placement());
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug, Default)]
pub struct PlacementCache {
    entries: Mutex<FxHashMap<Key, Placement>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlacementCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PlacementCache::default()
    }

    /// The cache key for compiling `circuit` on `machine` under `config`:
    /// calibration-aware configs key on the full machine fingerprint
    /// (placement tracks the day's error rates), calibration-unaware ones
    /// on the topology fingerprint alone.
    fn key(circuit: &Circuit, machine: &Machine, config: &CompilerConfig) -> Key {
        let machine_part = if config.calibration_aware() {
            machine.fingerprint()
        } else {
            machine.topology().fingerprint()
        };
        (circuit.fingerprint(), machine_part, config.fingerprint())
    }

    /// Looks up the placement for a triple, counting a hit or miss.
    pub(crate) fn lookup(
        &self,
        circuit: &Circuit,
        machine: &Machine,
        config: &CompilerConfig,
    ) -> Option<Placement> {
        let key = PlacementCache::key(circuit, machine, config);
        let found = self
            .entries
            .lock()
            .expect("placement cache lock poisoned")
            .get(&key)
            .cloned();
        match found {
            Some(placement) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(placement)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores the placement computed for a triple.
    pub(crate) fn insert(
        &self,
        circuit: &Circuit,
        machine: &Machine,
        config: &CompilerConfig,
        placement: Placement,
    ) {
        let key = PlacementCache::key(circuit, machine, config);
        self.entries
            .lock()
            .expect("placement cache lock poisoned")
            .insert(key, placement);
    }

    /// Number of cached placements.
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("placement cache lock poisoned")
            .len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a panic while holding the cache lock has poisoned it. A
    /// poisoned cache makes every later compile through it panic too, so
    /// long-lived owners (the serve daemon) check this after catching a
    /// request panic and rebuild their session instead of reusing it.
    pub fn is_poisoned(&self) -> bool {
        self.entries.is_poisoned()
    }

    /// Hit/miss counters accumulated so far.
    pub fn stats(&self) -> PlacementCacheStats {
        PlacementCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::Benchmark;

    #[test]
    fn aware_configs_key_on_the_day_unaware_on_topology() {
        let day0 = Machine::ibmq16_on_day(5, 0);
        let day3 = Machine::ibmq16_on_day(5, 3);
        let circuit = Benchmark::Bv4.circuit();

        let aware = CompilerConfig::greedy_e();
        assert_ne!(
            PlacementCache::key(&circuit, &day0, &aware),
            PlacementCache::key(&circuit, &day3, &aware),
        );

        let unaware = CompilerConfig::qiskit();
        assert_eq!(
            PlacementCache::key(&circuit, &day0, &unaware),
            PlacementCache::key(&circuit, &day3, &unaware),
        );
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = PlacementCache::new();
        let m = Machine::ibmq16_on_day(5, 0);
        let circuit = Benchmark::Bv4.circuit();
        let config = CompilerConfig::qiskit();

        assert!(cache.lookup(&circuit, &m, &config).is_none());
        cache.insert(
            &circuit,
            &m,
            &config,
            Placement::new(vec![nisq_machine::HwQubit(0); circuit.num_qubits()]),
        );
        assert!(cache.lookup(&circuit, &m, &config).is_some());
        assert_eq!(cache.stats(), PlacementCacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }
}
