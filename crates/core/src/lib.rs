//! # nisq-core — noise-adaptive compiler mappings for NISQ computers
//!
//! The paper's primary contribution: a backend compiler that maps
//! machine-independent quantum circuits (from [`nisq_ir`]) onto a NISQ
//! machine (from [`nisq_machine`]), adapting qubit placement, routing and
//! scheduling to the machine's daily calibration data to maximize the
//! probability that a program run succeeds.
//!
//! All compiler configurations of the paper's Table 1 are provided:
//!
//! | Name | Objective | Calibration-aware | Notes |
//! |------|-----------|-------------------|-------|
//! | `Qiskit` | heuristic, minimize duration | no | baseline: lexicographic placement + swap insertion |
//! | `T-SMT` | optimal, minimize duration | no | uniform gate times, static coherence bound |
//! | `T-SMT*` | optimal, minimize duration | yes | per-edge gate times, per-qubit coherence |
//! | `R-SMT*` | optimal, maximize reliability (Eq. 12, weight ω) | yes | one-bend-path routing |
//! | `GreedyV*` | heuristic, maximize reliability | yes | heaviest-vertex-first placement |
//! | `GreedyE*` | heuristic, maximize reliability | yes | heaviest-edge-first placement |
//!
//! The optimal variants solve the paper's SMT formulation through the
//! branch-and-bound substrate in [`nisq_opt`] (see DESIGN.md for the
//! substitution argument).
//!
//! # Example
//!
//! ```
//! use nisq_core::{Compiler, CompilerConfig};
//! use nisq_ir::Benchmark;
//! use nisq_machine::Machine;
//!
//! let machine = Machine::ibmq16_on_day(7, 0);
//! let compiler = Compiler::new(&machine, CompilerConfig::r_smt_star(0.5));
//! let compiled = compiler.compile(&Benchmark::Bv4.circuit()).unwrap();
//! assert!(compiled.estimated_reliability() > 0.0);
//! assert!(compiled.qasm().contains("OPENQASM 2.0"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod compiler;
mod config;
mod error;
mod executable;
pub mod mapping;
pub mod metrics;
pub mod pipeline;

pub use cache::{PlacementCache, PlacementCacheStats};
pub use compiler::Compiler;
pub use config::{Algorithm, CompilerConfig};
pub use error::CompileError;
pub use executable::CompiledCircuit;
pub use mapping::{PlacementRegistry, PlacementStrategy};
pub use nisq_opt::{
    PermutationRouting, Placement, RouteSelection, RoutingPolicy, SwapBackRouting, SwapHandling,
};
pub use pipeline::{CompileContext, Pass, PassTiming, Pipeline};
