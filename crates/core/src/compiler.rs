use crate::config::CompilerConfig;
use crate::error::CompileError;
use crate::executable::CompiledCircuit;
use crate::mapping;
use crate::pipeline::{CompileContext, Pipeline};
use nisq_ir::Circuit;
use nisq_machine::Machine;
use nisq_opt::Placement;
use std::sync::Arc;
use std::time::Instant;

/// The noise-adaptive backend compiler: a thin driver over the standard
/// pass [`Pipeline`] (`Decompose → Place → Route → Schedule → Emit →
/// Estimate`; see [`crate::pipeline`]).
///
/// A `Compiler` is bound to one machine snapshot (topology plus calibration
/// data) and one configuration from Table 1. Recompiling after each daily
/// calibration — as the paper does before every run — means constructing a
/// new `Compiler` with a fresh [`Machine`]. For custom passes or placement
/// strategies, drive a [`Pipeline`] over a
/// [`CompileContext`] directly.
///
/// # Example
///
/// ```
/// use nisq_core::{Compiler, CompilerConfig};
/// use nisq_ir::Benchmark;
/// use nisq_machine::Machine;
///
/// let machine = Machine::ibmq16_on_day(1, 0);
/// let compiled = Compiler::new(&machine, CompilerConfig::greedy_e())
///     .compile(&Benchmark::Toffoli.circuit())
///     .unwrap();
/// assert!(compiled.within_coherence());
/// ```
#[derive(Debug, Clone)]
pub struct Compiler<'m> {
    machine: &'m Machine,
    config: CompilerConfig,
    /// The standard pipeline, built once per compiler so repeated
    /// compiles (figure sweeps) do not re-allocate passes and the
    /// placement registry per call.
    pipeline: Arc<Pipeline>,
}

impl<'m> Compiler<'m> {
    /// Creates a compiler for a machine and configuration.
    pub fn new(machine: &'m Machine, config: CompilerConfig) -> Self {
        Compiler {
            machine,
            config,
            pipeline: Arc::new(Pipeline::standard()),
        }
    }

    /// Creates a compiler driving an explicit (possibly shared) pipeline
    /// instead of building the standard one — the cheap way to construct
    /// many short-lived compilers over one pipeline, as the experiment
    /// session does.
    pub fn with_pipeline(
        machine: &'m Machine,
        config: CompilerConfig,
        pipeline: Arc<Pipeline>,
    ) -> Self {
        Compiler {
            machine,
            config,
            pipeline,
        }
    }

    /// Returns a copy of this compiler whose place pass memoizes results in
    /// `cache`. The cache is shareable: install the same `Arc` into many
    /// compilers (across machines, configs and threads) and identical
    /// `(circuit, machine-day, config)` triples are placed once.
    pub fn with_placement_cache(mut self, cache: Arc<crate::PlacementCache>) -> Self {
        self.pipeline = Arc::new(Pipeline::standard_with_placement_cache(cache));
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// The target machine.
    pub fn machine(&self) -> &Machine {
        self.machine
    }

    /// Computes only the initial placement (useful for inspecting mappings,
    /// as in the paper's Figure 8).
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit does not fit on the machine or the
    /// configuration is invalid.
    pub fn place(&self, circuit: &Circuit) -> Result<Placement, CompileError> {
        mapping::place(circuit, self.machine, &self.config)
    }

    /// Compiles a circuit by running the standard pass pipeline:
    /// decomposition, placement, routing, scheduling, emission and
    /// reliability estimation.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit does not fit on the machine or the
    /// configuration is invalid.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledCircuit, CompileError> {
        let start = Instant::now();
        let mut ctx = CompileContext::new(self.machine, self.config, circuit.clone());
        self.pipeline.run(&mut ctx)?;
        CompiledCircuit::from_context(ctx, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::{Benchmark, GateKind, Qubit};
    use nisq_machine::HwQubit;

    fn machine() -> Machine {
        Machine::ibmq16_on_day(8, 0)
    }

    #[test]
    fn every_configuration_compiles_every_benchmark() {
        let m = machine();
        for config in CompilerConfig::table1() {
            let compiler = Compiler::new(&m, config);
            for b in Benchmark::all() {
                let compiled = compiler
                    .compile(&b.circuit())
                    .unwrap_or_else(|e| panic!("{} on {b}: {e}", config.algorithm));
                assert!(compiled.estimated_reliability() > 0.0, "{b}");
                assert!(compiled.duration_slots() > 0, "{b}");
            }
        }
    }

    #[test]
    fn physical_two_qubit_gates_act_on_adjacent_hardware_qubits() {
        let m = machine();
        for config in CompilerConfig::table1() {
            let compiler = Compiler::new(&m, config);
            for b in Benchmark::all() {
                let compiled = compiler.compile(&b.circuit()).unwrap();
                let expanded = compiled.physical_circuit().expand_swaps();
                for gate in expanded.iter().filter(|g| g.is_two_qubit()) {
                    let a = HwQubit(gate.qubits()[0].0);
                    let bq = HwQubit(gate.qubits()[1].0);
                    assert!(
                        m.topology().adjacent(a, bq),
                        "{} produced a non-adjacent two-qubit gate {a}-{bq} for {b}",
                        config.algorithm
                    );
                }
            }
        }
    }

    #[test]
    fn measurements_land_on_the_placed_qubits() {
        let m = machine();
        let compiler = Compiler::new(&m, CompilerConfig::r_smt_star(0.5));
        let compiled = compiler.compile(&Benchmark::Bv4.circuit()).unwrap();
        let placement = compiled.placement();
        for gate in compiled
            .physical_circuit()
            .iter()
            .filter(|g| g.is_measure())
        {
            let clbit = gate.clbits()[0];
            // Classical bit i belongs to program qubit i in our benchmarks.
            let expected = placement.hw(Qubit(clbit.0));
            assert_eq!(gate.qubits()[0].0, expected.0);
        }
    }

    #[test]
    fn r_smt_star_beats_qiskit_on_estimated_reliability() {
        let m = machine();
        let r_smt = Compiler::new(&m, CompilerConfig::r_smt_star(0.5));
        let qiskit = Compiler::new(&m, CompilerConfig::qiskit());
        for b in [
            Benchmark::Bv4,
            Benchmark::Bv8,
            Benchmark::Hs6,
            Benchmark::Adder,
        ] {
            let ours = r_smt.compile(&b.circuit()).unwrap();
            let base = qiskit.compile(&b.circuit()).unwrap();
            assert!(
                ours.estimated_reliability() >= base.estimated_reliability(),
                "{b}: {} < {}",
                ours.estimated_reliability(),
                base.estimated_reliability()
            );
        }
    }

    #[test]
    fn bv_benchmarks_need_no_swaps_under_r_smt_star() {
        // The paper reports R-SMT* finds zero-movement mappings for BV
        // (Section 7: "R-SMT* obtains a mapping which requires no qubit
        // movement" for BV8).
        let m = machine();
        let compiler = Compiler::new(&m, CompilerConfig::r_smt_star(0.5));
        for b in [Benchmark::Bv4, Benchmark::Bv6, Benchmark::Bv8] {
            let compiled = compiler.compile(&b.circuit()).unwrap();
            assert_eq!(compiled.swap_count(), 0, "{b} required movement");
        }
    }

    #[test]
    fn qiskit_baseline_needs_swaps_on_bv8() {
        // With lexicographic placement the BV8 CNOTs span the row, so the
        // baseline must insert movement operations (the paper counts 15
        // extra CNOTs for Qiskit on BV8).
        let m = machine();
        let compiled = Compiler::new(&m, CompilerConfig::qiskit())
            .compile(&Benchmark::Bv8.circuit())
            .unwrap();
        assert!(compiled.swap_count() > 0);
        assert!(compiled.hardware_cnot_count() > 3);
    }

    #[test]
    fn qasm_output_is_parseable_and_adjacent() {
        let m = machine();
        let compiled = Compiler::new(&m, CompilerConfig::greedy_v())
            .compile(&Benchmark::Fredkin.circuit())
            .unwrap();
        let parsed = nisq_ir::qasm::parse(&compiled.qasm()).unwrap();
        assert_eq!(parsed.num_qubits(), 16);
        assert_eq!(parsed.measure_count(), 3);
    }

    #[test]
    fn compile_records_time_and_names() {
        let m = machine();
        let compiled = Compiler::new(&m, CompilerConfig::greedy_e())
            .compile(&Benchmark::Qft.circuit())
            .unwrap();
        assert_eq!(compiled.program_name(), "QFT");
        assert!(compiled.to_string().contains("QFT"));
    }

    #[test]
    fn schedule_matches_physical_swap_count() {
        let m = machine();
        let compiled = Compiler::new(&m, CompilerConfig::qiskit())
            .compile(&Benchmark::Toffoli.circuit())
            .unwrap();
        // The physical circuit swaps out and back, so it contains exactly
        // twice the schedule's one-way swap count.
        let physical_swaps = compiled
            .physical_circuit()
            .iter()
            .filter(|g| g.kind() == GateKind::Swap)
            .count();
        assert_eq!(physical_swaps, 2 * compiled.swap_count());
    }
}
