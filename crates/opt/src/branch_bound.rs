use crate::assignment::AssignmentProblem;
use crate::PlacementSolution;
use nisq_machine::HwQubit;
use std::time::{Duration, Instant};

/// Budget limits for the exact branch-and-bound solver.
///
/// The search is exact when it completes within the budget (the returned
/// solution is marked `optimal`); otherwise the best incumbent found so far
/// is returned, mirroring how the paper caps the SMT solver's running time
/// on large synthetic circuits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Maximum number of search nodes to expand.
    pub max_nodes: u64,
    /// Optional wall-clock limit.
    pub time_limit: Option<Duration>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_nodes: 50_000_000,
            time_limit: Some(Duration::from_secs(120)),
        }
    }
}

impl SolverConfig {
    /// A configuration with a wall-clock limit and a generous node budget.
    pub fn with_time_limit(limit: Duration) -> Self {
        SolverConfig {
            max_nodes: u64::MAX,
            time_limit: Some(limit),
        }
    }

    /// A configuration bounded only by node count (deterministic runtime
    /// behaviour, useful in tests).
    pub fn with_max_nodes(max_nodes: u64) -> Self {
        SolverConfig {
            max_nodes,
            time_limit: None,
        }
    }
}

struct Search<'a> {
    problem: &'a AssignmentProblem,
    order: Vec<usize>,
    assignment: Vec<Option<HwQubit>>,
    used: Vec<bool>,
    best_assignment: Vec<HwQubit>,
    best_cost: f64,
    nodes: u64,
    max_nodes: u64,
    deadline: Option<Instant>,
    aborted: bool,
}

impl<'a> Search<'a> {
    /// Cost contribution of placing program qubit `pq` at hardware `h`
    /// against the already-placed qubits.
    fn marginal_cost(&self, pq: usize, h: HwQubit) -> f64 {
        let mut cost = 0.0;
        for t in self.problem.pair_terms() {
            let other = if t.a == pq {
                t.b
            } else if t.b == pq {
                t.a
            } else {
                continue;
            };
            if let Some(oh) = self.assignment[other] {
                cost += t.weight * self.problem.pair_cost(h, oh);
            }
        }
        for t in self.problem.single_terms() {
            if t.q == pq {
                cost += t.weight * self.problem.single_cost(h);
            }
        }
        cost
    }

    /// Admissible lower bound on the cost still to be paid by terms that are
    /// not yet fully placed, given the current partial assignment.
    fn remaining_bound(&self, next_depth: usize) -> f64 {
        let mut bound = 0.0;
        let min_pair = self.problem.min_pair_cost();
        let min_single = self.problem.min_single_cost();
        for t in self.problem.pair_terms() {
            match (self.assignment[t.a], self.assignment[t.b]) {
                (Some(_), Some(_)) => {}
                (Some(h), None) | (None, Some(h)) => {
                    bound += t.weight * self.problem.min_pair_cost_from(h);
                }
                (None, None) => bound += t.weight * min_pair,
            }
        }
        for t in self.problem.single_terms() {
            if self.assignment[t.q].is_none() {
                bound += t.weight * min_single;
            }
        }
        // next_depth is only used to keep the signature obvious at call
        // sites; the bound itself is derived from the assignment state.
        let _ = next_depth;
        bound
    }

    fn over_budget(&mut self) -> bool {
        if self.nodes >= self.max_nodes {
            self.aborted = true;
            return true;
        }
        if let Some(deadline) = self.deadline {
            // Only check the clock occasionally to keep node expansion cheap.
            if self.nodes.is_multiple_of(1024) && Instant::now() >= deadline {
                self.aborted = true;
                return true;
            }
        }
        false
    }

    fn dfs(&mut self, depth: usize, partial_cost: f64) {
        if self.over_budget() {
            return;
        }
        if depth == self.order.len() {
            if partial_cost < self.best_cost {
                self.best_cost = partial_cost;
                self.best_assignment = self
                    .assignment
                    .iter()
                    .map(|h| h.expect("complete assignment"))
                    .collect();
            }
            return;
        }
        let pq = self.order[depth];
        // Candidate locations sorted by marginal cost so good incumbents are
        // found early and pruning kicks in sooner.
        let mut candidates: Vec<(f64, usize)> = (0..self.problem.num_hardware())
            .filter(|&h| !self.used[h])
            .map(|h| (self.marginal_cost(pq, HwQubit(h)), h))
            .collect();
        candidates.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));

        for (marginal, h) in candidates {
            self.nodes += 1;
            let new_cost = partial_cost + marginal;
            self.assignment[pq] = Some(HwQubit(h));
            self.used[h] = true;
            let bound = new_cost + self.remaining_bound(depth + 1);
            if bound < self.best_cost - 1e-12 {
                self.dfs(depth + 1, new_cost);
            }
            self.assignment[pq] = None;
            self.used[h] = false;
            if self.aborted {
                return;
            }
        }
    }
}

/// Greedy construction used as the initial incumbent: place program qubits
/// in descending incident-weight order, each at the currently cheapest
/// available location.
fn greedy_incumbent(problem: &AssignmentProblem, order: &[usize]) -> Vec<HwQubit> {
    let mut assignment: Vec<Option<HwQubit>> = vec![None; problem.num_program()];
    let mut used = vec![false; problem.num_hardware()];
    for &pq in order {
        let mut best = (f64::INFINITY, 0usize);
        for (h, &in_use) in used.iter().enumerate() {
            if in_use {
                continue;
            }
            let mut cost = 0.0;
            for t in problem.pair_terms() {
                let other = if t.a == pq {
                    t.b
                } else if t.b == pq {
                    t.a
                } else {
                    continue;
                };
                if let Some(oh) = assignment[other] {
                    cost += t.weight * problem.pair_cost(HwQubit(h), oh);
                }
            }
            for t in problem.single_terms() {
                if t.q == pq {
                    cost += t.weight * problem.single_cost(HwQubit(h));
                }
            }
            if cost < best.0 {
                best = (cost, h);
            }
        }
        assignment[pq] = Some(HwQubit(best.1));
        used[best.1] = true;
    }
    assignment.into_iter().map(|h| h.unwrap()).collect()
}

/// Solves the placement problem exactly with branch and bound (within the
/// given budget).
///
/// The returned solution is marked [`PlacementSolution::optimal`] only when
/// the search space was exhausted before hitting the budget, in which case
/// the assignment minimizes the problem's objective — the same optimum the
/// paper's SMT encoding computes.
///
/// # Panics
///
/// Panics if the problem has zero hardware qubits but a nonzero number of
/// program qubits (an [`AssignmentProblem`] cannot be constructed that way).
pub fn solve_branch_and_bound(
    problem: &AssignmentProblem,
    config: &SolverConfig,
) -> PlacementSolution {
    if problem.num_program() == 0 {
        return PlacementSolution {
            assignment: Vec::new(),
            cost: 0.0,
            optimal: true,
            nodes_explored: 0,
        };
    }
    let weights = problem.incident_weight();
    let mut order: Vec<usize> = (0..problem.num_program()).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let incumbent = greedy_incumbent(problem, &order);
    let incumbent_cost = problem
        .evaluate(&incumbent)
        .expect("greedy incumbent is a valid placement");

    let mut search = Search {
        problem,
        order,
        assignment: vec![None; problem.num_program()],
        used: vec![false; problem.num_hardware()],
        best_assignment: incumbent,
        best_cost: incumbent_cost,
        nodes: 0,
        max_nodes: config.max_nodes,
        deadline: config.time_limit.map(|d| Instant::now() + d),
        aborted: false,
    };
    search.dfs(0, 0.0);

    PlacementSolution {
        assignment: search.best_assignment,
        cost: search.best_cost,
        optimal: !search.aborted,
        nodes_explored: search.nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{PairTerm, SingleTerm};

    /// A 3-program-qubit chain on a 4-location line where locations 0-1-2
    /// are cheap to pair and location 3 is expensive for everything.
    fn line_problem() -> AssignmentProblem {
        let n = 4;
        let mut pair_cost = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let base = (a as i64 - b as i64).unsigned_abs() as f64;
                let penalty = if a == 3 || b == 3 { 10.0 } else { 0.0 };
                pair_cost[a * n + b] = base + penalty;
            }
        }
        let single_cost = vec![1.0, 0.5, 1.0, 5.0];
        AssignmentProblem::new(
            3,
            4,
            vec![
                PairTerm {
                    a: 0,
                    b: 1,
                    weight: 1.0,
                },
                PairTerm {
                    a: 1,
                    b: 2,
                    weight: 1.0,
                },
            ],
            vec![
                SingleTerm { q: 0, weight: 1.0 },
                SingleTerm { q: 1, weight: 1.0 },
                SingleTerm { q: 2, weight: 1.0 },
            ],
            pair_cost,
            single_cost,
        )
        .unwrap()
    }

    /// Exhaustively enumerates every placement to find the true optimum.
    fn brute_force(problem: &AssignmentProblem) -> f64 {
        fn recurse(
            problem: &AssignmentProblem,
            assignment: &mut Vec<HwQubit>,
            used: &mut Vec<bool>,
            best: &mut f64,
        ) {
            if assignment.len() == problem.num_program() {
                let c = problem.evaluate(assignment).unwrap();
                if c < *best {
                    *best = c;
                }
                return;
            }
            for h in 0..problem.num_hardware() {
                if used[h] {
                    continue;
                }
                used[h] = true;
                assignment.push(HwQubit(h));
                recurse(problem, assignment, used, best);
                assignment.pop();
                used[h] = false;
            }
        }
        let mut best = f64::INFINITY;
        recurse(
            problem,
            &mut Vec::new(),
            &mut vec![false; problem.num_hardware()],
            &mut best,
        );
        best
    }

    #[test]
    fn finds_the_brute_force_optimum() {
        let p = line_problem();
        let sol = solve_branch_and_bound(&p, &SolverConfig::default());
        assert!(sol.optimal);
        assert!((sol.cost - brute_force(&p)).abs() < 1e-9);
        assert!(p.validate_placement(&sol.assignment).is_ok());
    }

    #[test]
    fn avoids_the_expensive_location() {
        let p = line_problem();
        let sol = solve_branch_and_bound(&p, &SolverConfig::default());
        assert!(
            !sol.assignment.contains(&HwQubit(3)),
            "optimal placement should not use the bad location: {:?}",
            sol.assignment
        );
    }

    #[test]
    fn reports_node_budget_exhaustion() {
        let p = line_problem();
        let sol = solve_branch_and_bound(&p, &SolverConfig::with_max_nodes(1));
        assert!(!sol.optimal);
        // Even when aborted the incumbent is a valid placement.
        assert!(p.validate_placement(&sol.assignment).is_ok());
    }

    #[test]
    fn empty_problem_is_trivially_optimal() {
        let p = AssignmentProblem::new(0, 4, vec![], vec![], vec![0.0; 16], vec![0.0; 4]).unwrap();
        let sol = solve_branch_and_bound(&p, &SolverConfig::default());
        assert!(sol.optimal);
        assert_eq!(sol.cost, 0.0);
        assert!(sol.assignment.is_empty());
    }

    #[test]
    fn random_problems_match_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..10 {
            let hw = 6;
            let prog = 4;
            let mut pair_cost = vec![0.0; hw * hw];
            for a in 0..hw {
                for b in 0..hw {
                    if a != b {
                        let v = rng.gen_range(0.1..5.0);
                        pair_cost[a * hw + b] = v;
                        pair_cost[b * hw + a] = v;
                    }
                }
            }
            let single_cost: Vec<f64> = (0..hw).map(|_| rng.gen_range(0.0..2.0)).collect();
            let mut pair_terms = Vec::new();
            for a in 0..prog {
                for b in (a + 1)..prog {
                    if rng.gen_bool(0.7) {
                        pair_terms.push(PairTerm {
                            a,
                            b,
                            weight: rng.gen_range(0.5..2.0),
                        });
                    }
                }
            }
            let single_terms = (0..prog).map(|q| SingleTerm { q, weight: 1.0 }).collect();
            let p =
                AssignmentProblem::new(prog, hw, pair_terms, single_terms, pair_cost, single_cost)
                    .unwrap();
            let sol = solve_branch_and_bound(&p, &SolverConfig::default());
            assert!(sol.optimal, "trial {trial} did not finish");
            assert!(
                (sol.cost - brute_force(&p)).abs() < 1e-9,
                "trial {trial}: {} vs {}",
                sol.cost,
                brute_force(&p)
            );
        }
    }
}
