use nisq_machine::HwQubit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How CNOTs between non-adjacent hardware qubits are routed, and which
/// resources they reserve while executing (Section 4.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RoutingPolicy {
    /// Rectangle reservation: the CNOT blocks the whole bounding rectangle
    /// of its control and target for its duration (Constraints 7-8).
    RectangleReservation,
    /// One-bend paths: the CNOT uses one of the two L-shaped paths along the
    /// bounding rectangle and blocks only the qubits on that path
    /// (Constraint 9).
    OneBendPaths,
    /// Best path: route along the most reliable path found by Dijkstra over
    /// `-log` CNOT reliabilities (used by the greedy heuristics).
    BestPath,
}

impl RoutingPolicy {
    /// Short name used in reports ("RR", "1BP", "Best Path").
    pub fn short_name(&self) -> &'static str {
        match self {
            RoutingPolicy::RectangleReservation => "RR",
            RoutingPolicy::OneBendPaths => "1BP",
            RoutingPolicy::BestPath => "Best Path",
        }
    }
}

impl fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// The hardware route chosen for one program CNOT.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnotRoute {
    /// Hardware qubits along the route, from the control's location to the
    /// target's location (inclusive). Adjacent CNOTs have a 2-element path.
    pub path: Vec<HwQubit>,
    /// The junction corner used, when routed with one-bend paths.
    pub junction: Option<HwQubit>,
    /// Hardware qubits reserved while the CNOT executes (the path itself
    /// for 1BP/best-path, the full bounding rectangle for RR).
    pub reserved: Vec<HwQubit>,
}

impl CnotRoute {
    /// Number of SWAP operations needed before the CNOT (hops minus one).
    pub fn swaps_needed(&self) -> usize {
        self.path.len().saturating_sub(2)
    }

    /// Whether the CNOT can run directly on a hardware edge without any
    /// qubit movement.
    pub fn is_direct(&self) -> bool {
        self.path.len() == 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names_match_paper() {
        assert_eq!(RoutingPolicy::RectangleReservation.short_name(), "RR");
        assert_eq!(RoutingPolicy::OneBendPaths.short_name(), "1BP");
        assert_eq!(RoutingPolicy::BestPath.to_string(), "Best Path");
    }

    #[test]
    fn swaps_needed_counts_intermediate_hops() {
        let route = CnotRoute {
            path: vec![HwQubit(0), HwQubit(1), HwQubit(2)],
            junction: None,
            reserved: vec![HwQubit(0), HwQubit(1), HwQubit(2)],
        };
        assert_eq!(route.swaps_needed(), 1);
        assert!(!route.is_direct());
        let direct = CnotRoute {
            path: vec![HwQubit(0), HwQubit(1)],
            junction: None,
            reserved: vec![HwQubit(0), HwQubit(1)],
        };
        assert_eq!(direct.swaps_needed(), 0);
        assert!(direct.is_direct());
    }
}
