//! The unified routing layer: how two-qubit gates between non-adjacent
//! hardware qubits are routed, which resources they reserve, and how the
//! chosen routes are materialized as physical SWAP sequences.
//!
//! Three concerns are separated here:
//!
//! * [`RouteSelection`] — *which path* a routed gate takes and what it
//!   reserves while executing (Section 4.3 of the paper: rectangle
//!   reservation, one-bend paths, or most-reliable best paths).
//! * [`RoutingPolicy`] — *what the swaps do to the placement*: the paper's
//!   swap-out/swap-back model ([`SwapBackRouting`], the default, which
//!   preserves the placement invariant for the whole execution) or
//!   permutation tracking ([`PermutationRouting`], which elides the swap-back
//!   and updates the placement in place, halving movement cost at the price
//!   of a drifting layout).
//! * [`Layout`] — the live program-qubit ⇄ hardware-qubit correspondence a
//!   policy threads through scheduling and emission.
//!
//! Both the scheduler (durations, swap counts, layout evolution) and the
//! emitter (physical gate sequences) consume the same [`RoutingPolicy`]
//! implementation, so the swap round-trip logic exists in exactly one
//! place.

use crate::error::OptError;
use crate::scheduler::Placement;
use nisq_ir::Qubit;
use nisq_machine::{EdgeId, HwQubit, Machine};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a route is chosen for a two-qubit gate between non-adjacent hardware
/// qubits, and which resources the gate reserves while executing
/// (Section 4.3 of the paper).
///
/// Selections that need a 2-D grid layout (rectangle reservation, one-bend
/// paths) automatically fall back to best-path routing on topologies
/// without one (rings, heavy-hex lattices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RouteSelection {
    /// Rectangle reservation: the gate blocks the whole bounding rectangle
    /// of its control and target for its duration (Constraints 7-8).
    RectangleReservation,
    /// One-bend paths: the gate uses one of the two L-shaped paths along the
    /// bounding rectangle and blocks only the qubits on that path
    /// (Constraint 9).
    OneBendPaths,
    /// Best path: route along the most reliable CNOT route found by
    /// Dijkstra with swap-cubed intermediate edge weights (used by the
    /// greedy heuristics).
    BestPath,
}

impl RouteSelection {
    /// The selection actually usable on `topology`: grid-only selections
    /// (rectangle reservation, one-bend paths) degrade to best-path
    /// routing when the topology has no 2-D grid layout. The single
    /// source of truth for that rule — the scheduler's route computation,
    /// the SMT cost model and the pipeline's route pass all call this.
    pub fn effective_on(self, topology: &nisq_machine::Topology) -> RouteSelection {
        if topology.as_grid().is_none() {
            RouteSelection::BestPath
        } else {
            self
        }
    }

    /// Short name used in reports ("RR", "1BP", "Best Path").
    pub fn short_name(&self) -> &'static str {
        match self {
            RouteSelection::RectangleReservation => "RR",
            RouteSelection::OneBendPaths => "1BP",
            RouteSelection::BestPath => "Best Path",
        }
    }
}

impl fmt::Display for RouteSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// The hardware route chosen for one program CNOT (or program SWAP).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnotRoute {
    /// Hardware qubits along the route, from the control's location to the
    /// target's location (inclusive). Adjacent CNOTs have a 2-element path.
    pub path: Vec<HwQubit>,
    /// The junction corner used, when routed with one-bend paths.
    pub junction: Option<HwQubit>,
    /// Hardware qubits reserved while the CNOT executes (the path itself
    /// for 1BP/best-path, the full bounding rectangle for RR).
    pub reserved: Vec<HwQubit>,
}

impl CnotRoute {
    /// Number of SWAP operations needed before the CNOT (hops minus one).
    pub fn swaps_needed(&self) -> usize {
        self.path.len().saturating_sub(2)
    }

    /// Whether the CNOT can run directly on a hardware edge without any
    /// qubit movement.
    pub fn is_direct(&self) -> bool {
        self.path.len() == 2
    }
}

/// Computes the route for a two-qubit gate between hardware locations
/// `control` and `target` on `machine` under `selection`.
///
/// When `calibration_aware` is set, one-bend junctions are chosen by route
/// reliability; otherwise the first geometric junction is used (the
/// calibration-unaware variants of Table 1). On topologies without a grid
/// layout, grid-only selections fall back to best-path routing.
///
/// # Panics
///
/// Panics if `control == target`.
pub fn compute_route(
    machine: &Machine,
    selection: RouteSelection,
    calibration_aware: bool,
    control: HwQubit,
    target: HwQubit,
) -> CnotRoute {
    let topology = machine.topology();
    let reliability = machine.reliability();
    let grid = topology.as_grid();
    match (selection.effective_on(topology), grid) {
        (RouteSelection::BestPath, _) | (_, None) => {
            let path = reliability.best_cnot_route(control, target).path.clone();
            CnotRoute {
                reserved: path.clone(),
                path,
                junction: None,
            }
        }
        (RouteSelection::OneBendPaths | RouteSelection::RectangleReservation, Some(grid)) => {
            let junction = if calibration_aware {
                reliability
                    .best_one_bend(control, target)
                    .expect("control and target are distinct on a grid")
                    .0
            } else {
                grid.junctions(control, target).0
            };
            let path = grid.one_bend_path(control, target, junction);
            let reserved = if selection == RouteSelection::RectangleReservation {
                let ((lx, ly), (rx, ry)) = grid.bounding_rectangle(control, target);
                let mut qs = Vec::new();
                for y in ly..=ry {
                    for x in lx..=rx {
                        qs.push(grid.at(x, y));
                    }
                }
                qs
            } else {
                path.clone()
            };
            CnotRoute {
                path,
                junction: Some(junction),
                reserved,
            }
        }
    }
}

/// The live correspondence between program qubits and hardware locations,
/// threaded through scheduling and emission by a [`RoutingPolicy`].
///
/// Under [`SwapBackRouting`] the layout never drifts from the initial
/// placement; under [`PermutationRouting`] every movement SWAP permanently
/// relocates the qubits it touches.
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    prog_to_hw: Vec<HwQubit>,
    hw_to_prog: Vec<Option<usize>>,
}

impl Layout {
    /// Creates the layout for an initial placement on a machine with
    /// `num_hardware` qubits.
    ///
    /// # Errors
    ///
    /// Returns an error if the placement is not injective or out of range.
    pub fn new(placement: &Placement, num_hardware: usize) -> Result<Self, OptError> {
        placement.validate(num_hardware)?;
        let prog_to_hw: Vec<HwQubit> = placement.as_slice().to_vec();
        let mut hw_to_prog = vec![None; num_hardware];
        for (p, h) in prog_to_hw.iter().enumerate() {
            hw_to_prog[h.0] = Some(p);
        }
        Ok(Layout {
            prog_to_hw,
            hw_to_prog,
        })
    }

    /// Current hardware location of a program qubit.
    ///
    /// # Panics
    ///
    /// Panics if the program qubit is not covered by the layout.
    pub fn hw(&self, q: Qubit) -> HwQubit {
        self.prog_to_hw[q.0]
    }

    /// Program qubit currently at a hardware location, if any.
    pub fn program_at(&self, h: HwQubit) -> Option<Qubit> {
        self.hw_to_prog[h.0].map(Qubit)
    }

    /// Exchanges the occupants of two hardware locations (the effect of a
    /// physical SWAP on the correspondence).
    pub fn apply_swap(&mut self, a: HwQubit, b: HwQubit) {
        let pa = self.hw_to_prog[a.0];
        let pb = self.hw_to_prog[b.0];
        self.hw_to_prog[a.0] = pb;
        self.hw_to_prog[b.0] = pa;
        if let Some(p) = pa {
            self.prog_to_hw[p] = b;
        }
        if let Some(p) = pb {
            self.prog_to_hw[p] = a;
        }
    }

    /// The current correspondence as a placement (program qubit `p` →
    /// hardware location).
    pub fn to_placement(&self) -> Placement {
        Placement::new(self.prog_to_hw.clone())
    }
}

/// One physical operation produced when a routed two-qubit gate is
/// materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutedOp {
    /// A movement SWAP between adjacent hardware locations.
    Swap(HwQubit, HwQubit),
    /// The routed gate itself (CNOT or program-level SWAP) on the final
    /// adjacent pair.
    Gate(HwQubit, HwQubit),
}

/// How the SWAPs that implement a routed two-qubit gate interact with the
/// placement: the single source of truth for swap round-trips, consumed by
/// both the scheduler (durations, layout evolution) and the emitter
/// (physical gate sequences).
///
/// # Example
///
/// ```
/// use nisq_machine::HwQubit;
/// use nisq_opt::{CnotRoute, Layout, Placement, PermutationRouting, RoutedOp, RoutingPolicy,
///                SwapBackRouting};
///
/// let route = CnotRoute {
///     path: vec![HwQubit(0), HwQubit(1), HwQubit(2)],
///     junction: None,
///     reserved: vec![HwQubit(0), HwQubit(1), HwQubit(2)],
/// };
///
/// // The paper's model: swap out, gate, swap back.
/// let mut ops = Vec::new();
/// SwapBackRouting.realize(&route, &mut ops);
/// assert_eq!(ops.len(), 3); // swap, gate, swap
///
/// // Permutation tracking: no swap-back...
/// let mut ops = Vec::new();
/// PermutationRouting.realize(&route, &mut ops);
/// assert_eq!(ops, vec![RoutedOp::Swap(HwQubit(0), HwQubit(1)),
///                      RoutedOp::Gate(HwQubit(1), HwQubit(2))]);
///
/// // ...and `advance` applies the matching net layout change.
/// let placement = Placement::new(vec![HwQubit(0), HwQubit(2)]);
/// let mut layout = Layout::new(&placement, 4).unwrap();
/// PermutationRouting.advance(&route, &mut layout);
/// assert_eq!(layout.hw(nisq_ir::Qubit(0)), HwQubit(1));
/// ```
pub trait RoutingPolicy: fmt::Debug + Send + Sync {
    /// Short name used in reports.
    fn name(&self) -> &'static str;

    /// Whether moved qubits return to their home positions after each
    /// routed gate (so the initial placement stays valid throughout).
    fn returns_home(&self) -> bool;

    /// Duration in timeslots of a routed two-qubit gate, given the CNOT
    /// duration of each hop along its path (the last entry is the edge the
    /// gate itself executes on).
    fn route_duration(&self, hop_slots: &[u32]) -> u32;

    /// Materializes the physical operations of a routed two-qubit gate,
    /// appending them to `out`. The op sequence is a pure function of the
    /// route; the policy's net effect on the correspondence is applied
    /// separately via [`RoutingPolicy::advance`].
    fn realize(&self, route: &CnotRoute, out: &mut Vec<RoutedOp>);

    /// Whether a *program-level* SWAP between currently adjacent hardware
    /// locations is elided entirely: the scheduler exchanges the layout's
    /// occupants instead of issuing gates, so the SWAP is free in both the
    /// duration and the reliability model (its [`ScheduledGate`] carries no
    /// route and zero duration, and the emitter materializes nothing).
    /// Only sound for policies that let the layout drift — a swap-back
    /// policy must keep the initial placement valid, which a relabeling
    /// would break.
    ///
    /// [`ScheduledGate`]: crate::ScheduledGate
    fn elides_adjacent_swap(&self) -> bool {
        false
    }

    /// Applies the net layout change of a routed gate (a no-op for
    /// policies that return qubits home). The scheduler calls this after
    /// issuing each two-qubit gate so later gates route from live
    /// positions.
    fn advance(&self, route: &CnotRoute, layout: &mut Layout) {
        if !self.returns_home() {
            let path = &route.path;
            for i in 0..path.len().saturating_sub(2) {
                layout.apply_swap(path[i], path[i + 1]);
            }
        }
    }
}

/// The paper's routing model: SWAP the control adjacent to the target,
/// execute the gate, then SWAP it back so the placement invariant holds for
/// the whole execution (the duration model of Constraint 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwapBackRouting;

impl RoutingPolicy for SwapBackRouting {
    fn name(&self) -> &'static str {
        "swap-back"
    }

    fn returns_home(&self) -> bool {
        true
    }

    fn route_duration(&self, hop_slots: &[u32]) -> u32 {
        let mut total = 0;
        for (i, &h) in hop_slots.iter().enumerate() {
            if i + 1 == hop_slots.len() {
                total += h;
            } else {
                // Swap out and back: 2 * 3 CNOTs.
                total += 6 * h;
            }
        }
        total
    }

    fn realize(&self, route: &CnotRoute, out: &mut Vec<RoutedOp>) {
        let path = &route.path;
        let hops = path.len() - 1;
        for i in 0..hops.saturating_sub(1) {
            out.push(RoutedOp::Swap(path[i], path[i + 1]));
        }
        out.push(RoutedOp::Gate(path[hops - 1], path[hops]));
        for i in (0..hops.saturating_sub(1)).rev() {
            out.push(RoutedOp::Swap(path[i], path[i + 1]));
        }
    }
}

/// Permutation-tracking routing: movement SWAPs are *not* undone — the
/// layout is updated in place and later gates route from the qubits' new
/// positions. Halves the movement cost of every routed gate (`(hops-1)`
/// SWAPs instead of `2*(hops-1)`) at the price of a drifting placement;
/// measurements follow the live layout, so results are unchanged. As a
/// bonus of the drifting layout, an adjacent *program-level* SWAP costs
/// nothing at all: it is elided into a pure relabeling
/// ([`RoutingPolicy::elides_adjacent_swap`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PermutationRouting;

impl RoutingPolicy for PermutationRouting {
    fn name(&self) -> &'static str {
        "permute"
    }

    fn returns_home(&self) -> bool {
        false
    }

    fn elides_adjacent_swap(&self) -> bool {
        true
    }

    fn route_duration(&self, hop_slots: &[u32]) -> u32 {
        let mut total = 0;
        for (i, &h) in hop_slots.iter().enumerate() {
            if i + 1 == hop_slots.len() {
                total += h;
            } else {
                // Swap out only: 3 CNOTs.
                total += 3 * h;
            }
        }
        total
    }

    fn realize(&self, route: &CnotRoute, out: &mut Vec<RoutedOp>) {
        let path = &route.path;
        let hops = path.len() - 1;
        for i in 0..hops.saturating_sub(1) {
            out.push(RoutedOp::Swap(path[i], path[i + 1]));
        }
        out.push(RoutedOp::Gate(path[hops - 1], path[hops]));
    }
}

/// How swap round-trips are handled, as a copyable configuration value; use
/// [`SwapHandling::policy`] to obtain the corresponding [`RoutingPolicy`]
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SwapHandling {
    /// Swap out and back after every routed gate (the paper's model).
    #[default]
    SwapBack,
    /// Track the permutation: no swap-back, placement updated in place.
    Permute,
}

impl SwapHandling {
    /// The policy implementation this configuration selects.
    pub fn policy(&self) -> &'static dyn RoutingPolicy {
        match self {
            SwapHandling::SwapBack => &SwapBackRouting,
            SwapHandling::Permute => &PermutationRouting,
        }
    }
}

impl fmt::Display for SwapHandling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.policy().name())
    }
}

/// CNOT duration of every hop along `path`: per-edge calibration durations
/// when `uniform` is `None`, otherwise the given uniform duration for every
/// hop (the calibration-unaware model).
///
/// # Panics
///
/// Panics if a path edge has no calibration duration entry.
pub fn hop_slots(machine: &Machine, path: &[HwQubit], uniform: Option<u32>) -> Vec<u32> {
    path.windows(2)
        .map(|pair| match uniform {
            Some(u) => u,
            None => machine
                .calibration()
                .durations
                .cnot(EdgeId::new(pair[0], pair[1]))
                .expect("route edges have calibration durations"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route_3() -> CnotRoute {
        CnotRoute {
            path: vec![HwQubit(0), HwQubit(1), HwQubit(2)],
            junction: None,
            reserved: vec![HwQubit(0), HwQubit(1), HwQubit(2)],
        }
    }

    #[test]
    fn short_names_match_paper() {
        assert_eq!(RouteSelection::RectangleReservation.short_name(), "RR");
        assert_eq!(RouteSelection::OneBendPaths.short_name(), "1BP");
        assert_eq!(RouteSelection::BestPath.to_string(), "Best Path");
    }

    #[test]
    fn swaps_needed_counts_intermediate_hops() {
        let route = route_3();
        assert_eq!(route.swaps_needed(), 1);
        assert!(!route.is_direct());
        let direct = CnotRoute {
            path: vec![HwQubit(0), HwQubit(1)],
            junction: None,
            reserved: vec![HwQubit(0), HwQubit(1)],
        };
        assert_eq!(direct.swaps_needed(), 0);
        assert!(direct.is_direct());
    }

    #[test]
    fn swap_back_realizes_the_round_trip() {
        let mut ops = Vec::new();
        SwapBackRouting.realize(&route_3(), &mut ops);
        assert_eq!(
            ops,
            vec![
                RoutedOp::Swap(HwQubit(0), HwQubit(1)),
                RoutedOp::Gate(HwQubit(1), HwQubit(2)),
                RoutedOp::Swap(HwQubit(0), HwQubit(1)),
            ]
        );
        // Round trip: no net layout change.
        let placement = Placement::new(vec![HwQubit(0), HwQubit(2)]);
        let mut layout = Layout::new(&placement, 4).unwrap();
        SwapBackRouting.advance(&route_3(), &mut layout);
        assert_eq!(layout.to_placement(), placement);
        assert!(SwapBackRouting.returns_home());
    }

    #[test]
    fn permutation_realizes_one_way_and_advance_moves_the_layout() {
        let mut ops = Vec::new();
        PermutationRouting.realize(&route_3(), &mut ops);
        assert_eq!(
            ops,
            vec![
                RoutedOp::Swap(HwQubit(0), HwQubit(1)),
                RoutedOp::Gate(HwQubit(1), HwQubit(2)),
            ]
        );
        let placement = Placement::new(vec![HwQubit(0), HwQubit(2)]);
        let mut layout = Layout::new(&placement, 4).unwrap();
        PermutationRouting.advance(&route_3(), &mut layout);
        assert_eq!(layout.hw(Qubit(0)), HwQubit(1));
        assert_eq!(layout.hw(Qubit(1)), HwQubit(2));
        assert!(!PermutationRouting.returns_home());
    }

    #[test]
    fn advance_applies_exactly_the_movement_swaps() {
        // The emitted movement swaps (everything except the central gate
        // and, for swap-back, the return trip) must equal advance's layout
        // effect — the invariant the emitter and scheduler rely on.
        let placement = Placement::new(vec![HwQubit(0), HwQubit(3)]);
        let route = CnotRoute {
            path: vec![HwQubit(0), HwQubit(1), HwQubit(2), HwQubit(3)],
            junction: None,
            reserved: vec![HwQubit(0), HwQubit(1), HwQubit(2), HwQubit(3)],
        };
        for policy in [
            &SwapBackRouting as &dyn RoutingPolicy,
            &PermutationRouting as &dyn RoutingPolicy,
        ] {
            let mut ops = Vec::new();
            policy.realize(&route, &mut ops);
            let mut via_ops = Layout::new(&placement, 4).unwrap();
            for op in &ops {
                if let RoutedOp::Swap(a, b) = *op {
                    via_ops.apply_swap(a, b);
                }
            }
            let mut via_advance = Layout::new(&placement, 4).unwrap();
            policy.advance(&route, &mut via_advance);
            assert_eq!(
                via_ops.to_placement(),
                via_advance.to_placement(),
                "{}",
                policy.name()
            );
        }
    }

    #[test]
    fn durations_differ_by_swap_back() {
        let hops = [4, 5, 6];
        assert_eq!(SwapBackRouting.route_duration(&hops), 6 * 4 + 6 * 5 + 6);
        assert_eq!(PermutationRouting.route_duration(&hops), 3 * 4 + 3 * 5 + 6);
        // Direct gates cost the same under both policies.
        assert_eq!(SwapBackRouting.route_duration(&[7]), 7);
        assert_eq!(PermutationRouting.route_duration(&[7]), 7);
    }

    #[test]
    fn swap_handling_selects_policies() {
        assert_eq!(SwapHandling::SwapBack.policy().name(), "swap-back");
        assert_eq!(SwapHandling::Permute.policy().name(), "permute");
        assert_eq!(SwapHandling::default(), SwapHandling::SwapBack);
        assert_eq!(SwapHandling::Permute.to_string(), "permute");
    }

    #[test]
    fn layout_round_trips_and_tracks_swaps() {
        let placement = Placement::new(vec![HwQubit(3), HwQubit(0)]);
        let mut layout = Layout::new(&placement, 5).unwrap();
        assert_eq!(layout.program_at(HwQubit(3)), Some(Qubit(0)));
        assert_eq!(layout.program_at(HwQubit(4)), None);
        layout.apply_swap(HwQubit(3), HwQubit(4));
        assert_eq!(layout.hw(Qubit(0)), HwQubit(4));
        assert_eq!(layout.program_at(HwQubit(3)), None);
        // Swapping two empty locations is a no-op.
        layout.apply_swap(HwQubit(2), HwQubit(3));
        assert_eq!(
            layout.to_placement(),
            Placement::new(vec![HwQubit(4), HwQubit(0)])
        );
        // Invalid placements are rejected.
        assert!(Layout::new(&Placement::new(vec![HwQubit(9)]), 4).is_err());
    }

    #[test]
    fn compute_route_falls_back_to_best_path_off_grid() {
        let ring = Machine::from_spec(nisq_machine::TopologySpec::Ring { n: 8 }, 1, 0);
        let route = compute_route(
            &ring,
            RouteSelection::OneBendPaths,
            true,
            HwQubit(0),
            HwQubit(3),
        );
        assert_eq!(route.junction, None, "no junctions off-grid");
        assert_eq!(route.path.first(), Some(&HwQubit(0)));
        assert_eq!(route.path.last(), Some(&HwQubit(3)));
        for pair in route.path.windows(2) {
            assert!(ring.topology().adjacent(pair[0], pair[1]));
        }
    }
}
