use crate::error::OptError;
use crate::routing::{
    compute_route, hop_slots, CnotRoute, Layout, RouteSelection, RoutingPolicy, SwapBackRouting,
};
use nisq_ir::{Circuit, GateKind, Qubit};
use nisq_machine::{HwQubit, Machine};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An injective assignment of program qubits to hardware qubits
/// (Constraints 1-2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    map: Vec<HwQubit>,
}

impl Placement {
    /// Creates a placement from the hardware location of each program qubit
    /// (index `p` holds program qubit `p`'s location).
    pub fn new(map: Vec<HwQubit>) -> Self {
        Placement { map }
    }

    /// Hardware location of a program qubit.
    ///
    /// # Panics
    ///
    /// Panics if the program qubit is not covered by this placement.
    pub fn hw(&self, q: Qubit) -> HwQubit {
        self.map[q.0]
    }

    /// Number of placed program qubits.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the placement is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The underlying mapping as a slice indexed by program qubit.
    pub fn as_slice(&self) -> &[HwQubit] {
        &self.map
    }

    /// Validates injectivity and range against a machine with
    /// `num_hardware` qubits.
    ///
    /// # Errors
    ///
    /// Returns an error describing the first violation.
    pub fn validate(&self, num_hardware: usize) -> Result<(), OptError> {
        let mut used = vec![false; num_hardware];
        for (p, h) in self.map.iter().enumerate() {
            if h.0 >= num_hardware {
                return Err(OptError::InvalidPlacement {
                    reason: format!("program qubit {p} placed on non-existent hardware qubit {h}"),
                });
            }
            if used[h.0] {
                return Err(OptError::InvalidPlacement {
                    reason: format!("hardware qubit {h} hosts more than one program qubit"),
                });
            }
            used[h.0] = true;
        }
        Ok(())
    }
}

impl From<Vec<HwQubit>> for Placement {
    fn from(map: Vec<HwQubit>) -> Self {
        Placement::new(map)
    }
}

/// Scheduler configuration: route selection, whether durations and
/// coherence windows come from calibration data, and the fallback coherence
/// bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Route selection for non-adjacent CNOTs.
    pub selection: RouteSelection,
    /// Use per-edge calibration durations (T-SMT*/R-SMT*) instead of a
    /// uniform CNOT duration (T-SMT).
    pub calibration_aware: bool,
    /// Uniform CNOT duration in timeslots when calibration-unaware.
    pub uniform_cnot_slots: u32,
    /// Coherence bound in timeslots used when calibration-unaware (the
    /// paper's `MT` = 1000 timeslots). When calibration-aware the per-qubit
    /// T2 from the calibration snapshot is used instead.
    pub static_coherence_slots: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            selection: RouteSelection::OneBendPaths,
            calibration_aware: true,
            uniform_cnot_slots: 4,
            static_coherence_slots: 1000,
        }
    }
}

/// One gate with its assigned start time, duration, resolved hardware
/// operands and (for two-qubit gates) route.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledGate {
    /// Index of the gate in the input circuit.
    pub gate_index: usize,
    /// Start timeslot.
    pub start: u32,
    /// Duration in timeslots.
    pub duration: u32,
    /// Route used, for two-qubit gates.
    pub route: Option<CnotRoute>,
    /// Hardware locations of the gate's operands at issue time (for
    /// two-qubit gates: control then target). Under swap-back routing this
    /// equals the initial placement; under permutation routing it reflects
    /// the live layout.
    pub hw: Vec<HwQubit>,
}

impl ScheduledGate {
    /// Timeslot at which the gate finishes.
    pub fn finish(&self) -> u32 {
        self.start + self.duration
    }
}

/// The output of the scheduler: start times for every gate, the overall
/// makespan, the routes chosen for CNOTs and any coherence violations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Scheduled gates, in the order they were issued.
    pub gates: Vec<ScheduledGate>,
    /// Finish time of the last gate, in timeslots.
    pub makespan: u32,
    /// Gate indices that finish after the coherence window of a qubit they
    /// touch (violations of Constraint 4/6).
    pub coherence_violations: Vec<usize>,
    /// Total number of SWAP operations implied by the chosen routes
    /// (one-way, i.e. the swaps needed to bring qubits adjacent).
    pub swap_count: usize,
    /// Where each program qubit ends up after the schedule: identical to
    /// the initial placement under swap-back routing, the accumulated
    /// permutation under permutation-tracking routing.
    pub final_placement: Placement,
}

impl Schedule {
    /// The scheduled entry for a circuit gate index, if present.
    pub fn entry(&self, gate_index: usize) -> Option<&ScheduledGate> {
        self.gates.iter().find(|g| g.gate_index == gate_index)
    }

    /// Whether every gate finished within its coherence window.
    pub fn within_coherence(&self) -> bool {
        self.coherence_violations.is_empty()
    }
}

/// Routing-aware list scheduler.
///
/// Implements the paper's scheduling model: gates start only after their
/// dependencies finish (Constraint 3), CNOT durations account for the swaps
/// needed to bring qubits adjacent (Constraint 5 or the distance formula),
/// concurrent CNOTs never overlap in time if their reserved regions overlap
/// in space (Constraints 7-9, via resource reservation of either the
/// one-bend path or the whole bounding rectangle), and gates that outlive
/// the coherence window are reported (Constraints 4/6). Gates are issued
/// earliest-ready-first.
///
/// # Example
///
/// ```
/// use nisq_ir::Benchmark;
/// use nisq_machine::{HwQubit, Machine};
/// use nisq_opt::{Placement, Scheduler, SchedulerConfig};
///
/// let machine = Machine::ibmq16_on_day(0, 0);
/// let circuit = Benchmark::Bv4.circuit();
/// // Star placement: ancilla on Q1, data qubits on its neighbours.
/// let placement = Placement::new(vec![HwQubit(0), HwQubit(2), HwQubit(9), HwQubit(1)]);
/// let scheduler = Scheduler::new(&machine, SchedulerConfig::default());
/// let schedule = scheduler.schedule(&circuit, &placement).unwrap();
/// assert_eq!(schedule.swap_count, 0);
/// assert!(schedule.within_coherence());
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler<'m> {
    machine: &'m Machine,
    config: SchedulerConfig,
}

impl<'m> Scheduler<'m> {
    /// Creates a scheduler for a machine with the given configuration.
    pub fn new(machine: &'m Machine, config: SchedulerConfig) -> Self {
        Scheduler { machine, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Computes the route for a CNOT between two hardware locations under
    /// the configured route selection (see [`compute_route`]).
    pub fn route(&self, control: HwQubit, target: HwQubit) -> CnotRoute {
        compute_route(
            self.machine,
            self.config.selection,
            self.config.calibration_aware,
            control,
            target,
        )
    }

    fn route_duration(&self, route: &CnotRoute, policy: &dyn RoutingPolicy) -> u32 {
        let uniform = if self.config.calibration_aware {
            None
        } else {
            Some(self.config.uniform_cnot_slots)
        };
        policy.route_duration(&hop_slots(self.machine, &route.path, uniform))
    }

    fn coherence_limit(&self, qubits: &[HwQubit]) -> u32 {
        if self.config.calibration_aware {
            qubits
                .iter()
                .map(|&q| self.machine.calibration().t2_slots(q))
                .min()
                .unwrap_or(self.config.static_coherence_slots)
        } else {
            self.config.static_coherence_slots
        }
    }

    /// Schedules `circuit` under `placement` with the paper's swap-back
    /// routing policy.
    ///
    /// # Errors
    ///
    /// Returns an error if the placement does not cover the circuit's
    /// program qubits injectively on this machine.
    pub fn schedule(&self, circuit: &Circuit, placement: &Placement) -> Result<Schedule, OptError> {
        self.schedule_with(circuit, placement, &SwapBackRouting)
    }

    /// Schedules `circuit` under `placement` with an explicit
    /// [`RoutingPolicy`]: routes are computed from the live [`Layout`], and
    /// the policy decides whether moved qubits return home (swap-back) or
    /// stay moved (permutation tracking).
    ///
    /// # Errors
    ///
    /// Returns an error if the placement does not cover the circuit's
    /// program qubits injectively on this machine.
    pub fn schedule_with(
        &self,
        circuit: &Circuit,
        placement: &Placement,
        policy: &dyn RoutingPolicy,
    ) -> Result<Schedule, OptError> {
        if placement.len() < circuit.num_qubits() {
            return Err(OptError::InvalidPlacement {
                reason: format!(
                    "placement covers {} qubits but the circuit uses {}",
                    placement.len(),
                    circuit.num_qubits()
                ),
            });
        }
        let mut layout = Layout::new(placement, self.machine.num_qubits())?;

        let dag = circuit.dag();
        let n = circuit.len();
        let calibration = self.machine.calibration();
        let single_slots = calibration.durations.single_qubit_slots;
        let readout_slots = calibration.durations.readout_slots;

        let mut busy_until = vec![0u32; self.machine.num_qubits()];
        let mut ready_time = vec![0u32; n];
        let mut unscheduled_preds: Vec<usize> = (0..n).map(|i| dag.predecessors(i).len()).collect();
        let mut ready: BTreeSet<(u32, usize)> = (0..n)
            .filter(|&i| unscheduled_preds[i] == 0)
            .map(|i| (0u32, i))
            .collect();

        let mut gates: Vec<ScheduledGate> = Vec::with_capacity(n);
        let mut coherence_violations = Vec::new();
        let mut swap_count = 0usize;
        let mut makespan = 0u32;

        while let Some(&(rt, idx)) = ready.iter().next() {
            ready.remove(&(rt, idx));
            let gate = &circuit.gates()[idx];

            // Resolve operands against the live layout (equal to the
            // initial placement whenever the policy swaps back).
            let acting: Vec<HwQubit> = gate.qubits().iter().map(|&q| layout.hw(q)).collect();

            let (resources, duration, route) = match gate.kind() {
                GateKind::Swap
                    if policy.elides_adjacent_swap()
                        && self.machine.topology().adjacent(acting[0], acting[1]) =>
                {
                    // A program-level SWAP of adjacent qubits under a
                    // drifting layout is a pure relabeling: exchange the
                    // occupants and issue nothing physical.
                    layout.apply_swap(acting[0], acting[1]);
                    (acting.clone(), 0, None)
                }
                GateKind::Cnot | GateKind::Swap => {
                    let route = self.route(acting[0], acting[1]);
                    let mut duration = self.route_duration(&route, policy);
                    if gate.kind() == GateKind::Swap {
                        duration *= 3;
                    }
                    swap_count += route.swaps_needed();
                    // Advancing the layout in issue order is consistent
                    // with the start-time order: a movement swap only
                    // relocates qubits sitting on this route's path, every
                    // position of which is in `route.reserved`, so any
                    // later gate touching a relocated qubit contends on
                    // those resources and is forced to start after this
                    // gate finishes.
                    policy.advance(&route, &mut layout);
                    (route.reserved.clone(), duration, Some(route))
                }
                GateKind::Measure => (acting.clone(), readout_slots, None),
                GateKind::Barrier => (acting.clone(), 0, None),
                _ => (acting.clone(), single_slots, None),
            };

            let resource_free = resources
                .iter()
                .map(|&q| busy_until[q.0])
                .max()
                .unwrap_or(0);
            let start = rt.max(resource_free);
            let finish = start + duration;
            for &q in &resources {
                busy_until[q.0] = finish;
            }
            makespan = makespan.max(finish);

            // Coherence check against the qubits the gate acts on.
            if finish > self.coherence_limit(&acting) {
                coherence_violations.push(idx);
            }

            for &succ in dag.successors(idx) {
                ready_time[succ] = ready_time[succ].max(finish);
                unscheduled_preds[succ] -= 1;
                if unscheduled_preds[succ] == 0 {
                    ready.insert((ready_time[succ], succ));
                }
            }

            gates.push(ScheduledGate {
                gate_index: idx,
                start,
                duration,
                route,
                hw: acting,
            });
        }

        Ok(Schedule {
            gates,
            makespan,
            coherence_violations,
            swap_count,
            final_placement: layout.to_placement(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nisq_ir::Benchmark;

    fn machine() -> Machine {
        Machine::ibmq16_on_day(1, 0)
    }

    fn star_placement() -> Placement {
        // BV4: ancilla (program qubit 3) on hardware qubit 1, data qubits on
        // its three neighbours.
        Placement::new(vec![HwQubit(0), HwQubit(2), HwQubit(9), HwQubit(1)])
    }

    fn spread_placement() -> Placement {
        // Deliberately far apart: forces swaps.
        Placement::new(vec![HwQubit(0), HwQubit(7), HwQubit(8), HwQubit(15)])
    }

    #[test]
    fn respects_dependencies() {
        let m = machine();
        let c = Benchmark::Bv4.circuit();
        let s = Scheduler::new(&m, SchedulerConfig::default());
        let schedule = s.schedule(&c, &star_placement()).unwrap();
        let dag = c.dag();
        for entry in &schedule.gates {
            for &pred in dag.predecessors(entry.gate_index) {
                let pred_entry = schedule.entry(pred).unwrap();
                assert!(
                    entry.start >= pred_entry.finish(),
                    "gate {} starts before its dependency {}",
                    entry.gate_index,
                    pred
                );
            }
        }
    }

    #[test]
    fn adjacent_star_placement_needs_no_swaps() {
        let m = machine();
        let c = Benchmark::Bv4.circuit();
        let s = Scheduler::new(&m, SchedulerConfig::default());
        let schedule = s.schedule(&c, &star_placement()).unwrap();
        assert_eq!(schedule.swap_count, 0);
        assert!(schedule.within_coherence());
    }

    #[test]
    fn spread_placement_needs_swaps_and_takes_longer() {
        let m = machine();
        let c = Benchmark::Bv4.circuit();
        let s = Scheduler::new(&m, SchedulerConfig::default());
        let near = s.schedule(&c, &star_placement()).unwrap();
        let far = s.schedule(&c, &spread_placement()).unwrap();
        assert!(far.swap_count > 0);
        assert!(far.makespan > near.makespan);
    }

    #[test]
    fn overlapping_cnot_routes_are_serialised() {
        // Two CNOTs that share hardware qubits cannot overlap in time.
        let m = machine();
        let mut c = Circuit::new(4);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(2), Qubit(3));
        // Place them so both routes pass through the same region: (0,0)->(3,0)
        // and (1,0)->(2,0) share qubits 1 and 2.
        let placement = Placement::new(vec![HwQubit(0), HwQubit(3), HwQubit(1), HwQubit(2)]);
        let s = Scheduler::new(&m, SchedulerConfig::default());
        let schedule = s.schedule(&c, &placement).unwrap();
        let g0 = schedule.entry(0).unwrap();
        let g1 = schedule.entry(1).unwrap();
        let overlap_in_time = g0.start < g1.finish() && g1.start < g0.finish();
        assert!(!overlap_in_time, "routes share qubits but overlap in time");
    }

    #[test]
    fn disjoint_cnots_run_in_parallel() {
        let m = machine();
        let mut c = Circuit::new(4);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(2), Qubit(3));
        // Far-apart adjacent pairs: (0,1) and (14,15).
        let placement = Placement::new(vec![HwQubit(0), HwQubit(1), HwQubit(14), HwQubit(15)]);
        let s = Scheduler::new(&m, SchedulerConfig::default());
        let schedule = s.schedule(&c, &placement).unwrap();
        let g0 = schedule.entry(0).unwrap();
        let g1 = schedule.entry(1).unwrap();
        assert_eq!(g0.start, 0);
        assert_eq!(g1.start, 0);
    }

    #[test]
    fn rectangle_reservation_blocks_more_than_one_bend() {
        let m = machine();
        let mut c = Circuit::new(4);
        c.cnot(Qubit(0), Qubit(1));
        c.cnot(Qubit(2), Qubit(3));
        // First CNOT spans a wide rectangle covering the second's qubits in
        // the other row; under RR they serialise, under 1BP they can overlap
        // if the chosen paths are disjoint.
        let placement = Placement::new(vec![HwQubit(0), HwQubit(12), HwQubit(9), HwQubit(10)]);
        let rr = Scheduler::new(
            &m,
            SchedulerConfig {
                selection: RouteSelection::RectangleReservation,
                ..SchedulerConfig::default()
            },
        )
        .schedule(&c, &placement)
        .unwrap();
        let obp = Scheduler::new(
            &m,
            SchedulerConfig {
                selection: RouteSelection::OneBendPaths,
                ..SchedulerConfig::default()
            },
        )
        .schedule(&c, &placement)
        .unwrap();
        assert!(rr.makespan >= obp.makespan);
    }

    #[test]
    fn calibration_unaware_durations_use_uniform_slots() {
        let m = machine();
        let mut c = Circuit::new(2);
        c.cnot(Qubit(0), Qubit(1));
        let placement = Placement::new(vec![HwQubit(0), HwQubit(1)]);
        let s = Scheduler::new(
            &m,
            SchedulerConfig {
                calibration_aware: false,
                uniform_cnot_slots: 7,
                ..SchedulerConfig::default()
            },
        );
        let schedule = s.schedule(&c, &placement).unwrap();
        assert_eq!(schedule.makespan, 7);
    }

    #[test]
    fn rejects_placement_smaller_than_circuit() {
        let m = machine();
        let c = Benchmark::Bv4.circuit();
        let s = Scheduler::new(&m, SchedulerConfig::default());
        let placement = Placement::new(vec![HwQubit(0), HwQubit(1)]);
        assert!(s.schedule(&c, &placement).is_err());
    }

    #[test]
    fn rejects_duplicate_hardware_locations() {
        let m = machine();
        let c = Benchmark::Bv4.circuit();
        let s = Scheduler::new(&m, SchedulerConfig::default());
        let placement = Placement::new(vec![HwQubit(0), HwQubit(0), HwQubit(1), HwQubit(2)]);
        assert!(s.schedule(&c, &placement).is_err());
    }

    #[test]
    fn all_benchmarks_fit_within_coherence_with_good_placements() {
        // The paper reports every benchmark finishes in < 150 timeslots with
        // R-SMT*-style placements, far below the worst-case coherence
        // window. Here we only check the scheduler flags nothing for a
        // compact placement of the smallest benchmark.
        let m = machine();
        let c = Benchmark::Hs2.circuit();
        let s = Scheduler::new(&m, SchedulerConfig::default());
        let placement = Placement::new(vec![HwQubit(1), HwQubit(2)]);
        let schedule = s.schedule(&c, &placement).unwrap();
        assert!(schedule.within_coherence());
        assert!(schedule.makespan < 150);
    }

    #[test]
    fn permutation_routing_elides_adjacent_program_swaps() {
        use crate::routing::PermutationRouting;
        let m = machine();
        let mut c = Circuit::new(2);
        c.cnot(Qubit(0), Qubit(1));
        c.swap(Qubit(0), Qubit(1));
        let placement = Placement::new(vec![HwQubit(0), HwQubit(1)]);
        let s = Scheduler::new(&m, SchedulerConfig::default());

        let free = s
            .schedule_with(&c, &placement, &PermutationRouting)
            .unwrap();
        let elided = free.entry(1).unwrap();
        assert_eq!(elided.duration, 0, "adjacent program SWAP is free");
        assert!(elided.route.is_none(), "no route for a relabeling");
        assert_eq!(free.swap_count, 0);
        // The relabeling still happens: the qubits end up exchanged.
        assert_eq!(
            free.final_placement,
            Placement::new(vec![HwQubit(1), HwQubit(0)])
        );

        // Swap-back routing must execute the SWAP physically.
        let paid = s.schedule_with(&c, &placement, &SwapBackRouting).unwrap();
        let executed = paid.entry(1).unwrap();
        assert!(executed.duration > 0);
        assert!(executed.route.is_some());
        assert_eq!(paid.final_placement, placement);
        assert!(paid.makespan > free.makespan);
    }

    #[test]
    fn non_adjacent_program_swaps_are_still_routed_under_permutation() {
        use crate::routing::PermutationRouting;
        let m = machine();
        let mut c = Circuit::new(2);
        c.swap(Qubit(0), Qubit(1));
        // Same row, two columns apart: not adjacent, so the elision must
        // not fire and the SWAP is routed and executed.
        let placement = Placement::new(vec![HwQubit(0), HwQubit(2)]);
        let s = Scheduler::new(&m, SchedulerConfig::default());
        let schedule = s
            .schedule_with(&c, &placement, &PermutationRouting)
            .unwrap();
        let entry = schedule.entry(0).unwrap();
        assert!(entry.route.is_some());
        assert!(entry.duration > 0);
    }

    #[test]
    fn placement_accessors_work() {
        let p = star_placement();
        assert_eq!(p.hw(Qubit(3)), HwQubit(1));
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert!(p.validate(16).is_ok());
        assert!(p.validate(2).is_err());
    }
}
