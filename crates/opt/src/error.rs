use std::error::Error;
use std::fmt;

/// Errors produced while building or solving mapping problems.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptError {
    /// The program needs more qubits than the machine provides.
    TooManyProgramQubits {
        /// Program qubit count.
        program: usize,
        /// Hardware qubit count.
        hardware: usize,
    },
    /// The readout weight ω must lie in `[0, 1]`.
    InvalidOmega {
        /// The offending value.
        omega: f64,
    },
    /// A placement did not assign every program qubit to a distinct
    /// hardware qubit (violates Constraints 1-2).
    InvalidPlacement {
        /// Explanation of the violation.
        reason: String,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::TooManyProgramQubits { program, hardware } => write!(
                f,
                "program uses {program} qubits but the machine only has {hardware}"
            ),
            OptError::InvalidOmega { omega } => {
                write!(f, "readout weight omega must be in [0, 1], got {omega}")
            }
            OptError::InvalidPlacement { reason } => write!(f, "invalid placement: {reason}"),
        }
    }
}

impl Error for OptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = OptError::TooManyProgramQubits {
            program: 20,
            hardware: 16,
        };
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains("16"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptError>();
    }
}
