//! # nisq-opt — constrained-optimization substrate for qubit mapping
//!
//! The paper formulates qubit mapping as a constrained optimization problem
//! solved with the Z3 SMT solver: place program qubits on hardware qubits
//! (Constraints 1-2), schedule gates in dependency order before the qubits
//! decohere (Constraints 3-6), keep concurrent CNOT routes from overlapping
//! (Constraints 7-9), and track per-gate reliabilities (Constraints 10-11)
//! to maximize the weighted log-reliability objective (Equation 12) or to
//! minimize execution duration.
//!
//! This crate provides the same optimization capability without a native
//! SMT library (see DESIGN.md for the substitution argument):
//!
//! * [`AssignmentProblem`] — the placement objective as a quadratic
//!   assignment problem: per-CNOT pairwise cost terms plus per-readout
//!   single-qubit cost terms over an injective program→hardware mapping.
//! * [`solve_branch_and_bound`] — an exact solver with admissible pruning
//!   bounds: it returns the same optimum the SMT encoding would, and its
//!   exponential growth with qubit count reproduces the paper's Figure 11
//!   compile-time scaling.
//! * [`solve_annealing`] — an anytime simulated-annealing solver for
//!   instances beyond the exact solver's reach.
//! * [`problem`] — builders that turn a circuit + machine + objective
//!   (reliability with readout weight ω, or duration) into an
//!   [`AssignmentProblem`].
//! * [`Scheduler`] — a routing-aware list scheduler that assigns start
//!   times respecting data dependencies (Constraint 3), per-edge gate
//!   durations (Constraint 5), coherence windows (Constraints 4/6) and
//!   spatial non-overlap of concurrent CNOT routes under the rectangle
//!   reservation or one-bend-path selections (Constraints 7-9).
//! * the unified routing layer ([`RouteSelection`], [`RoutingPolicy`],
//!   [`Layout`]) — how routes are chosen, and how their SWAPs are
//!   materialized: the paper's swap-out/swap-back model
//!   ([`SwapBackRouting`]) or permutation tracking
//!   ([`PermutationRouting`]), shared by the scheduler and the emitter.
//!
//! # Example
//!
//! ```
//! use nisq_ir::Benchmark;
//! use nisq_machine::Machine;
//! use nisq_opt::{problem, solve_branch_and_bound, MappingObjective, RouteSelection, SolverConfig};
//!
//! let circuit = Benchmark::Bv4.circuit();
//! let machine = Machine::ibmq16_on_day(1, 0);
//! let p = problem::build(
//!     &circuit,
//!     &machine,
//!     MappingObjective::Reliability { omega: 0.5 },
//!     RouteSelection::OneBendPaths,
//! )
//! .unwrap();
//! let solution = solve_branch_and_bound(&p, &SolverConfig::default());
//! assert!(solution.optimal);
//! assert_eq!(solution.assignment.len(), circuit.num_qubits());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod assignment;
mod branch_bound;
mod error;
pub mod problem;
mod routing;
mod scheduler;

pub use anneal::{solve_annealing, AnnealConfig};
pub use assignment::{AssignmentProblem, PairTerm, SingleTerm};
pub use branch_bound::{solve_branch_and_bound, SolverConfig};
pub use error::OptError;
pub use problem::MappingObjective;
pub use routing::{
    compute_route, hop_slots, CnotRoute, Layout, PermutationRouting, RouteSelection, RoutedOp,
    RoutingPolicy, SwapBackRouting, SwapHandling,
};
pub use scheduler::{Placement, Schedule, ScheduledGate, Scheduler, SchedulerConfig};

/// Result of a placement search: an assignment of program qubits to
/// hardware qubits plus metadata about the search.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementSolution {
    /// `assignment[p]` is the hardware qubit hosting program qubit `p`.
    pub assignment: Vec<nisq_machine::HwQubit>,
    /// Objective value (total cost, lower is better).
    pub cost: f64,
    /// Whether the solver proved this assignment optimal.
    pub optimal: bool,
    /// Number of search nodes (branch-and-bound) or iterations (annealing)
    /// explored.
    pub nodes_explored: u64,
}
