use crate::error::OptError;
use nisq_machine::HwQubit;

/// A pairwise cost term: a program-qubit pair that interacts (shares CNOTs),
/// contributing `weight * pair_cost[place(a)][place(b)]` to the objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairTerm {
    /// First program qubit.
    pub a: usize,
    /// Second program qubit.
    pub b: usize,
    /// Multiplier (e.g. CNOT count between the pair times `1 - ω`).
    pub weight: f64,
}

/// A single-qubit cost term: a program qubit that is measured, contributing
/// `weight * single_cost[place(q)]` to the objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleTerm {
    /// Program qubit.
    pub q: usize,
    /// Multiplier (e.g. `ω` per readout).
    pub weight: f64,
}

/// A placement objective in quadratic-assignment form.
///
/// The paper's Equation 12 (weighted log-reliability of CNOTs and readouts)
/// and its duration objective both reduce to this shape once the junction
/// choice per CNOT is folded into the pairwise cost matrix (the solver is
/// free to pick the better junction, so the optimum is unchanged). The
/// solvers minimize
///
/// ```text
/// sum_i pair[i].weight * pair_cost[place(a_i)][place(b_i)]
///   + sum_j single[j].weight * single_cost[place(q_j)]
/// ```
///
/// over injective placements of program qubits onto hardware qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentProblem {
    num_program: usize,
    num_hardware: usize,
    pair_terms: Vec<PairTerm>,
    single_terms: Vec<SingleTerm>,
    /// `pair_cost[h1 * num_hardware + h2]`, symmetric.
    pair_cost: Vec<f64>,
    /// `single_cost[h]`.
    single_cost: Vec<f64>,
}

impl AssignmentProblem {
    /// Creates a problem from its cost matrices and terms.
    ///
    /// # Errors
    ///
    /// Returns an error if more program qubits than hardware qubits are
    /// requested.
    ///
    /// # Panics
    ///
    /// Panics if the cost matrices have the wrong dimensions or a term
    /// references a program qubit outside `0..num_program`.
    pub fn new(
        num_program: usize,
        num_hardware: usize,
        pair_terms: Vec<PairTerm>,
        single_terms: Vec<SingleTerm>,
        pair_cost: Vec<f64>,
        single_cost: Vec<f64>,
    ) -> Result<Self, OptError> {
        if num_program > num_hardware {
            return Err(OptError::TooManyProgramQubits {
                program: num_program,
                hardware: num_hardware,
            });
        }
        assert_eq!(
            pair_cost.len(),
            num_hardware * num_hardware,
            "pair cost matrix must be num_hardware^2"
        );
        assert_eq!(
            single_cost.len(),
            num_hardware,
            "single cost vector must be num_hardware long"
        );
        for t in &pair_terms {
            assert!(t.a < num_program && t.b < num_program && t.a != t.b);
        }
        for t in &single_terms {
            assert!(t.q < num_program);
        }
        Ok(AssignmentProblem {
            num_program,
            num_hardware,
            pair_terms,
            single_terms,
            pair_cost,
            single_cost,
        })
    }

    /// Number of program qubits to place.
    pub fn num_program(&self) -> usize {
        self.num_program
    }

    /// Number of hardware locations available.
    pub fn num_hardware(&self) -> usize {
        self.num_hardware
    }

    /// The pairwise terms.
    pub fn pair_terms(&self) -> &[PairTerm] {
        &self.pair_terms
    }

    /// The single-qubit terms.
    pub fn single_terms(&self) -> &[SingleTerm] {
        &self.single_terms
    }

    /// Pairwise cost of hosting an interacting pair at hardware locations
    /// `h1` and `h2`.
    pub fn pair_cost(&self, h1: HwQubit, h2: HwQubit) -> f64 {
        self.pair_cost[h1.0 * self.num_hardware + h2.0]
    }

    /// Single-qubit cost of hosting a measured program qubit at `h`.
    pub fn single_cost(&self, h: HwQubit) -> f64 {
        self.single_cost[h.0]
    }

    /// The smallest pairwise cost anywhere in the machine (used as an
    /// admissible bound for unplaced pairs).
    pub fn min_pair_cost(&self) -> f64 {
        self.pair_cost
            .iter()
            .enumerate()
            .filter(|(i, _)| i / self.num_hardware != i % self.num_hardware)
            .map(|(_, &c)| c)
            .fold(f64::INFINITY, f64::min)
    }

    /// The smallest pairwise cost for a pair with one endpoint fixed at `h`.
    pub fn min_pair_cost_from(&self, h: HwQubit) -> f64 {
        (0..self.num_hardware)
            .filter(|&other| other != h.0)
            .map(|other| self.pair_cost[h.0 * self.num_hardware + other])
            .fold(f64::INFINITY, f64::min)
    }

    /// The smallest single-qubit cost anywhere in the machine.
    pub fn min_single_cost(&self) -> f64 {
        self.single_cost
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Validates a complete placement against Constraints 1-2 (every program
    /// qubit on a distinct, in-range hardware qubit).
    ///
    /// # Errors
    ///
    /// Returns an error describing the first violation.
    pub fn validate_placement(&self, assignment: &[HwQubit]) -> Result<(), OptError> {
        if assignment.len() != self.num_program {
            return Err(OptError::InvalidPlacement {
                reason: format!(
                    "expected {} placed qubits, got {}",
                    self.num_program,
                    assignment.len()
                ),
            });
        }
        let mut used = vec![false; self.num_hardware];
        for (p, h) in assignment.iter().enumerate() {
            if h.0 >= self.num_hardware {
                return Err(OptError::InvalidPlacement {
                    reason: format!("program qubit {p} placed on non-existent hardware qubit {h}"),
                });
            }
            if used[h.0] {
                return Err(OptError::InvalidPlacement {
                    reason: format!("hardware qubit {h} hosts more than one program qubit"),
                });
            }
            used[h.0] = true;
        }
        Ok(())
    }

    /// Evaluates the total cost of a complete placement.
    ///
    /// # Errors
    ///
    /// Returns an error if the placement is invalid.
    pub fn evaluate(&self, assignment: &[HwQubit]) -> Result<f64, OptError> {
        self.validate_placement(assignment)?;
        let mut total = 0.0;
        for t in &self.pair_terms {
            total += t.weight * self.pair_cost(assignment[t.a], assignment[t.b]);
        }
        for t in &self.single_terms {
            total += t.weight * self.single_cost(assignment[t.q]);
        }
        Ok(total)
    }

    /// Total weight incident on each program qubit, used to order branching
    /// (most constrained first).
    pub fn incident_weight(&self) -> Vec<f64> {
        let mut w = vec![0.0; self.num_program];
        for t in &self.pair_terms {
            w[t.a] += t.weight.abs();
            w[t.b] += t.weight.abs();
        }
        for t in &self.single_terms {
            w[t.q] += t.weight.abs();
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy 2-program-qubit, 3-hardware-qubit problem where locations 0-1
    /// are cheap to pair and location 2 has the cheapest single cost.
    fn toy() -> AssignmentProblem {
        let pair_cost = vec![
            0.0, 1.0, 5.0, //
            1.0, 0.0, 5.0, //
            5.0, 5.0, 0.0,
        ];
        let single_cost = vec![2.0, 3.0, 0.5];
        AssignmentProblem::new(
            2,
            3,
            vec![PairTerm {
                a: 0,
                b: 1,
                weight: 1.0,
            }],
            vec![
                SingleTerm { q: 0, weight: 1.0 },
                SingleTerm { q: 1, weight: 1.0 },
            ],
            pair_cost,
            single_cost,
        )
        .unwrap()
    }

    #[test]
    fn evaluate_sums_terms() {
        let p = toy();
        let cost = p.evaluate(&[HwQubit(0), HwQubit(1)]).unwrap();
        assert!((cost - (1.0 + 2.0 + 3.0)).abs() < 1e-12);
        let cost = p.evaluate(&[HwQubit(2), HwQubit(0)]).unwrap();
        assert!((cost - (5.0 + 0.5 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_duplicate_placement() {
        let p = toy();
        assert!(matches!(
            p.evaluate(&[HwQubit(1), HwQubit(1)]),
            Err(OptError::InvalidPlacement { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_placement() {
        let p = toy();
        assert!(p.evaluate(&[HwQubit(0), HwQubit(7)]).is_err());
        assert!(p.evaluate(&[HwQubit(0)]).is_err());
    }

    #[test]
    fn rejects_more_program_than_hardware() {
        let err =
            AssignmentProblem::new(4, 3, vec![], vec![], vec![0.0; 9], vec![0.0; 3]).unwrap_err();
        assert!(matches!(err, OptError::TooManyProgramQubits { .. }));
    }

    #[test]
    fn min_costs_are_correct() {
        let p = toy();
        assert_eq!(p.min_pair_cost(), 1.0);
        assert_eq!(p.min_single_cost(), 0.5);
        assert_eq!(p.min_pair_cost_from(HwQubit(2)), 5.0);
        assert_eq!(p.min_pair_cost_from(HwQubit(0)), 1.0);
    }

    #[test]
    fn incident_weight_counts_terms() {
        let p = toy();
        let w = p.incident_weight();
        assert_eq!(w, vec![2.0, 2.0]);
    }
}
