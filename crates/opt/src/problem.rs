//! Builders that turn a circuit, a machine and an optimization objective
//! into an [`AssignmentProblem`] over hardware placements.
//!
//! This is the translation step the paper performs when it generates the
//! SMT encoding (Figure 3, "Generate Data-Aware Constraints"): reliability
//! or duration matrices become pairwise placement costs, readout error rates
//! become single-qubit placement costs, and the junction choice of the
//! one-bend-path policy is folded into the pairwise cost by always pricing a
//! pair at its better junction (which is exactly the choice the SMT solver
//! would make, so the optimum is unchanged).

use crate::assignment::{AssignmentProblem, PairTerm, SingleTerm};
use crate::error::OptError;
use crate::routing::RouteSelection;
use nisq_ir::Circuit;
use nisq_machine::{HwQubit, Machine};
use std::collections::BTreeMap;

/// The objective the placement should optimize (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum MappingObjective {
    /// Maximize the weighted log-reliability of CNOT and readout operations
    /// (Equation 12). `omega` weights readout terms, `1 - omega` CNOT terms.
    Reliability {
        /// Readout weight ω ∈ [0, 1].
        omega: f64,
    },
    /// Minimize execution duration. When `calibration_aware` is false the
    /// model assumes every hardware CNOT takes `uniform_cnot_slots`
    /// timeslots (the paper's T-SMT); otherwise it uses the per-edge
    /// calibration durations (T-SMT*).
    Duration {
        /// Whether to use per-edge calibration durations.
        calibration_aware: bool,
        /// Uniform CNOT duration assumed when calibration-unaware.
        uniform_cnot_slots: u32,
    },
}

impl MappingObjective {
    /// The paper's default duration objective without calibration data
    /// (T-SMT): every CNOT takes 4 timeslots.
    pub fn duration_uniform() -> Self {
        MappingObjective::Duration {
            calibration_aware: false,
            uniform_cnot_slots: 4,
        }
    }

    /// The calibration-aware duration objective (T-SMT*).
    pub fn duration_calibrated() -> Self {
        MappingObjective::Duration {
            calibration_aware: true,
            uniform_cnot_slots: 4,
        }
    }
}

/// Builds the placement problem for `circuit` on `machine` under the given
/// objective and routing policy.
///
/// # Errors
///
/// Returns an error if the circuit needs more qubits than the machine has,
/// or the readout weight is outside `[0, 1]`.
pub fn build(
    circuit: &Circuit,
    machine: &Machine,
    objective: MappingObjective,
    policy: RouteSelection,
) -> Result<AssignmentProblem, OptError> {
    let n_prog = circuit.num_qubits();
    let n_hw = machine.num_qubits();
    if n_prog > n_hw {
        return Err(OptError::TooManyProgramQubits {
            program: n_prog,
            hardware: n_hw,
        });
    }
    if let MappingObjective::Reliability { omega } = objective {
        if !(0.0..=1.0).contains(&omega) || omega.is_nan() {
            return Err(OptError::InvalidOmega { omega });
        }
    }

    // Aggregate CNOTs by unordered program-qubit pair; reliability and
    // duration are symmetric in control/target under our routing model.
    let mut cnot_counts: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut measured: BTreeMap<usize, usize> = BTreeMap::new();
    for gate in circuit.iter() {
        if gate.is_cnot() {
            let a = gate.qubits()[0].0;
            let b = gate.qubits()[1].0;
            *cnot_counts.entry((a.min(b), a.max(b))).or_insert(0) += 1;
        } else if gate.kind() == nisq_ir::GateKind::Swap {
            let a = gate.qubits()[0].0;
            let b = gate.qubits()[1].0;
            *cnot_counts.entry((a.min(b), a.max(b))).or_insert(0) += 3;
        } else if gate.is_measure() {
            *measured.entry(gate.qubits()[0].0).or_insert(0) += 1;
        }
    }

    let (pair_weight_scale, single_weight_scale) = match objective {
        MappingObjective::Reliability { omega } => (1.0 - omega, omega),
        MappingObjective::Duration { .. } => (1.0, 0.0),
    };

    let pair_terms: Vec<PairTerm> = cnot_counts
        .iter()
        .map(|(&(a, b), &count)| PairTerm {
            a,
            b,
            weight: pair_weight_scale * count as f64,
        })
        .collect();
    let single_terms: Vec<SingleTerm> = measured
        .iter()
        .map(|(&q, &count)| SingleTerm {
            q,
            weight: single_weight_scale * count as f64,
        })
        .collect();

    let reliability = machine.reliability();
    // Price pairs under the selection the scheduler will actually use
    // (grid-only selections degrade to best-path off-grid).
    let policy = policy.effective_on(machine.topology());
    let mut pair_cost = vec![0.0; n_hw * n_hw];
    for h1 in 0..n_hw {
        for h2 in 0..n_hw {
            if h1 == h2 {
                continue;
            }
            let a = HwQubit(h1);
            let b = HwQubit(h2);
            pair_cost[h1 * n_hw + h2] = match objective {
                MappingObjective::Reliability { .. } => {
                    let rel = match policy {
                        RouteSelection::OneBendPaths | RouteSelection::RectangleReservation => {
                            reliability
                                .best_one_bend(a, b)
                                .expect("distinct qubits always have a one-bend route on a grid")
                                .1
                        }
                        RouteSelection::BestPath => reliability.best_path_cnot_reliability(a, b),
                    };
                    -rel.max(1e-12).ln()
                }
                MappingObjective::Duration {
                    calibration_aware,
                    uniform_cnot_slots,
                } => {
                    if calibration_aware {
                        match policy {
                            RouteSelection::OneBendPaths | RouteSelection::RectangleReservation => {
                                let (junction, _) = reliability.best_one_bend(a, b).expect(
                                    "distinct qubits always have a one-bend route on a grid",
                                );
                                reliability.one_bend_cnot_duration(a, b, junction) as f64
                            }
                            RouteSelection::BestPath => {
                                reliability.best_path_cnot_duration(a, b) as f64
                            }
                        }
                    } else {
                        reliability.uniform_cnot_duration(a, b, uniform_cnot_slots) as f64
                    }
                }
            };
        }
    }

    let single_cost: Vec<f64> = (0..n_hw)
        .map(|h| match objective {
            MappingObjective::Reliability { .. } => {
                -reliability.readout_reliability(HwQubit(h)).max(1e-12).ln()
            }
            MappingObjective::Duration { .. } => 0.0,
        })
        .collect();

    AssignmentProblem::new(
        n_prog,
        n_hw,
        pair_terms,
        single_terms,
        pair_cost,
        single_cost,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::{solve_branch_and_bound, SolverConfig};
    use nisq_ir::Benchmark;
    use nisq_machine::Machine;

    fn machine() -> Machine {
        Machine::ibmq16_on_day(5, 0)
    }

    #[test]
    fn bv4_reliability_problem_has_star_terms() {
        let c = Benchmark::Bv4.circuit();
        let p = build(
            &c,
            &machine(),
            MappingObjective::Reliability { omega: 0.5 },
            RouteSelection::OneBendPaths,
        )
        .unwrap();
        assert_eq!(p.num_program(), 4);
        assert_eq!(p.pair_terms().len(), 3);
        assert_eq!(p.single_terms().len(), 4);
        for t in p.pair_terms() {
            assert!((t.weight - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn omega_zero_ignores_readout_terms() {
        let c = Benchmark::Bv4.circuit();
        let p = build(
            &c,
            &machine(),
            MappingObjective::Reliability { omega: 0.0 },
            RouteSelection::OneBendPaths,
        )
        .unwrap();
        assert!(p.single_terms().iter().all(|t| t.weight == 0.0));
    }

    #[test]
    fn duration_objective_ignores_readout() {
        let c = Benchmark::Toffoli.circuit();
        let p = build(
            &c,
            &machine(),
            MappingObjective::duration_calibrated(),
            RouteSelection::OneBendPaths,
        )
        .unwrap();
        assert!(p.single_terms().iter().all(|t| t.weight == 0.0));
        // Toffoli has CNOTs between all three pairs of qubits.
        assert_eq!(p.pair_terms().len(), 3);
    }

    #[test]
    fn rejects_invalid_omega() {
        let c = Benchmark::Bv4.circuit();
        assert!(matches!(
            build(
                &c,
                &machine(),
                MappingObjective::Reliability { omega: 1.5 },
                RouteSelection::OneBendPaths,
            ),
            Err(OptError::InvalidOmega { .. })
        ));
    }

    #[test]
    fn rejects_oversized_circuits() {
        let c = nisq_ir::random_circuit(nisq_ir::RandomCircuitConfig::new(20, 32, 0));
        assert!(matches!(
            build(
                &c,
                &machine(),
                MappingObjective::Reliability { omega: 0.5 },
                RouteSelection::OneBendPaths,
            ),
            Err(OptError::TooManyProgramQubits { .. })
        ));
    }

    #[test]
    fn optimal_reliability_placement_beats_random_placements() {
        // The exact solver's cost must not exceed the cost of any other
        // valid placement (here: many random ones plus a hand-built
        // all-adjacent star like the paper's Figure 2c).
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let c = Benchmark::Bv4.circuit();
        let m = machine();
        let p = build(
            &c,
            &m,
            MappingObjective::Reliability { omega: 0.5 },
            RouteSelection::OneBendPaths,
        )
        .unwrap();
        let sol = solve_branch_and_bound(&p, &SolverConfig::default());
        assert!(sol.optimal);

        // Hand-built star: ancilla (program qubit 3) at hardware qubit 1,
        // data qubits at its three neighbours 0, 2 and 9.
        let star = vec![HwQubit(0), HwQubit(2), HwQubit(9), HwQubit(1)];
        assert!(sol.cost <= p.evaluate(&star).unwrap() + 1e-9);

        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut locations: Vec<usize> = (0..16).collect();
        for _ in 0..50 {
            locations.shuffle(&mut rng);
            let random: Vec<HwQubit> = locations[..4].iter().map(|&h| HwQubit(h)).collect();
            assert!(sol.cost <= p.evaluate(&random).unwrap() + 1e-9);
        }
    }

    #[test]
    fn duration_uniform_ties_are_broken_but_valid() {
        let c = Benchmark::Bv4.circuit();
        let m = machine();
        let p = build(
            &c,
            &m,
            MappingObjective::duration_uniform(),
            RouteSelection::RectangleReservation,
        )
        .unwrap();
        let sol = solve_branch_and_bound(&p, &SolverConfig::default());
        assert!(sol.optimal);
        assert!(p.validate_placement(&sol.assignment).is_ok());
    }
}
