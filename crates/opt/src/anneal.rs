use crate::assignment::AssignmentProblem;
use crate::PlacementSolution;
use nisq_machine::HwQubit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the anytime simulated-annealing placement solver.
///
/// The paper's SMT approach stops scaling around 32 qubits (Figure 11);
/// annealing provides an anytime fallback for larger machines or circuits,
/// trading optimality guarantees for bounded, configurable running time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Number of proposal moves.
    pub iterations: u64,
    /// Initial temperature (in objective units).
    pub initial_temperature: f64,
    /// Final temperature reached by geometric cooling.
    pub final_temperature: f64,
    /// RNG seed for reproducible runs.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 50_000,
            initial_temperature: 2.0,
            final_temperature: 1e-3,
            seed: 0,
        }
    }
}

impl AnnealConfig {
    /// A configuration with the given iteration budget and seed.
    pub fn new(iterations: u64, seed: u64) -> Self {
        AnnealConfig {
            iterations,
            seed,
            ..AnnealConfig::default()
        }
    }
}

/// Solves the placement problem with simulated annealing.
///
/// Returns the best placement visited; the result is never marked optimal.
/// Moves either relocate one program qubit to a free hardware location or
/// swap the locations of two program qubits, so Constraints 1-2 (injective
/// placement) hold at every step.
pub fn solve_annealing(problem: &AssignmentProblem, config: &AnnealConfig) -> PlacementSolution {
    if problem.num_program() == 0 {
        return PlacementSolution {
            assignment: Vec::new(),
            cost: 0.0,
            optimal: true,
            nodes_explored: 0,
        };
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_prog = problem.num_program();
    let n_hw = problem.num_hardware();

    // Initial placement: identity (program qubit i on hardware qubit i).
    let mut current: Vec<HwQubit> = (0..n_prog).map(HwQubit).collect();
    let mut current_cost = problem
        .evaluate(&current)
        .expect("identity placement is valid");
    let mut occupied: Vec<Option<usize>> = vec![None; n_hw];
    for (p, h) in current.iter().enumerate() {
        occupied[h.0] = Some(p);
    }

    let mut best = current.clone();
    let mut best_cost = current_cost;

    let cooling = if config.iterations > 1 {
        (config.final_temperature / config.initial_temperature).powf(1.0 / config.iterations as f64)
    } else {
        1.0
    };
    let mut temperature = config.initial_temperature;

    for _ in 0..config.iterations {
        // Propose: pick a program qubit and a target hardware location.
        let p = rng.gen_range(0..n_prog);
        let target = HwQubit(rng.gen_range(0..n_hw));
        let source = current[p];
        if target == source {
            temperature *= cooling;
            continue;
        }
        let displaced = occupied[target.0];

        // Apply the move (relocate, or swap with the displaced qubit).
        current[p] = target;
        occupied[target.0] = Some(p);
        occupied[source.0] = displaced;
        if let Some(other) = displaced {
            current[other] = source;
        }

        let new_cost = problem
            .evaluate(&current)
            .expect("moves preserve placement validity");
        let accept = new_cost <= current_cost
            || rng.gen_bool(
                ((current_cost - new_cost) / temperature.max(1e-12))
                    .exp()
                    .min(1.0),
            );
        if accept {
            current_cost = new_cost;
            if new_cost < best_cost {
                best_cost = new_cost;
                best = current.clone();
            }
        } else {
            // Undo the move.
            current[p] = source;
            occupied[source.0] = Some(p);
            occupied[target.0] = displaced;
            if let Some(other) = displaced {
                current[other] = target;
            }
        }
        temperature *= cooling;
    }

    PlacementSolution {
        assignment: best,
        cost: best_cost,
        optimal: false,
        nodes_explored: config.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::{PairTerm, SingleTerm};
    use crate::branch_bound::{solve_branch_and_bound, SolverConfig};

    fn random_problem(seed: u64, prog: usize, hw: usize) -> AssignmentProblem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pair_cost = vec![0.0; hw * hw];
        for a in 0..hw {
            for b in (a + 1)..hw {
                let v = rng.gen_range(0.1..4.0);
                pair_cost[a * hw + b] = v;
                pair_cost[b * hw + a] = v;
            }
        }
        let single_cost: Vec<f64> = (0..hw).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut pair_terms = Vec::new();
        for a in 0..prog {
            for b in (a + 1)..prog {
                if rng.gen_bool(0.5) {
                    pair_terms.push(PairTerm { a, b, weight: 1.0 });
                }
            }
        }
        let single_terms = (0..prog).map(|q| SingleTerm { q, weight: 0.5 }).collect();
        AssignmentProblem::new(prog, hw, pair_terms, single_terms, pair_cost, single_cost).unwrap()
    }

    #[test]
    fn produces_valid_placements() {
        let p = random_problem(5, 6, 9);
        let sol = solve_annealing(&p, &AnnealConfig::new(20_000, 1));
        assert!(p.validate_placement(&sol.assignment).is_ok());
        assert!(!sol.optimal);
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let p = random_problem(7, 5, 8);
        let a = solve_annealing(&p, &AnnealConfig::new(10_000, 3));
        let b = solve_annealing(&p, &AnnealConfig::new(10_000, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn gets_close_to_the_exact_optimum() {
        for seed in 0..5 {
            let p = random_problem(seed, 5, 8);
            let exact = solve_branch_and_bound(&p, &SolverConfig::default());
            let anneal = solve_annealing(&p, &AnnealConfig::new(40_000, seed));
            assert!(exact.optimal);
            assert!(
                anneal.cost <= exact.cost * 1.15 + 1e-9,
                "seed {seed}: anneal {} vs exact {}",
                anneal.cost,
                exact.cost
            );
        }
    }

    #[test]
    fn improves_over_the_identity_placement() {
        let p = random_problem(11, 8, 16);
        let identity: Vec<HwQubit> = (0..8).map(HwQubit).collect();
        let identity_cost = p.evaluate(&identity).unwrap();
        let sol = solve_annealing(&p, &AnnealConfig::new(30_000, 2));
        assert!(sol.cost <= identity_cost + 1e-9);
    }

    #[test]
    fn empty_problem_is_trivial() {
        let p = AssignmentProblem::new(0, 3, vec![], vec![], vec![0.0; 9], vec![0.0; 3]).unwrap();
        let sol = solve_annealing(&p, &AnnealConfig::default());
        assert!(sol.assignment.is_empty());
        assert_eq!(sol.cost, 0.0);
    }
}
