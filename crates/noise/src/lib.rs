//! # nisq-noise — declarative Kraus-channel noise subsystem
//!
//! The simulator's built-in error model is calibration-driven (Pauli gate
//! errors + duration dephasing). This crate adds everything beyond it:
//!
//! * a channel taxonomy ([`Channel`]) — depolarizing (1q/2q), bit-flip,
//!   phase-flip, Pauli-weighted, amplitude damping, and general Kraus
//!   channels given explicit matrices — all validated for CPTP-ness;
//! * a declarative [`NoiseSpec`] — named, per-gate-kind / per-edge /
//!   per-qubit channel bindings with calibration-scaled or fixed rates,
//!   parseable from JSON with strict unknown-field rejection;
//! * the minimal [`json`] module shared by the spec parser, the sweep
//!   report format and the serve protocol (re-exported by `nisq-exp`).
//!
//! The crate is deliberately backend-agnostic: `nisq-sim` lowers a spec
//! onto a compiled program ([`Channel::pauli_form`] keeps Pauli-diagonal
//! channels inside the fast pre-sampled tiers, [`Channel::kraus_ops`]
//! routes the rest to dense state-dependent application), and `nisq-exp`
//! carries specs as a sweep axis.
//!
//! ```
//! use nisq_noise::{Channel, NoiseSpec};
//!
//! let spec = NoiseSpec::from_json(r#"{
//!     "name": "depol-example",
//!     "bindings": [
//!         {"on": "cnot", "rate": {"calibration": 1.0},
//!          "channel": {"kind": "depolarizing-2q"}}
//!     ]
//! }"#).unwrap();
//! assert!(spec.is_pauli_only());
//! assert_eq!(spec.bindings()[0].channel_at(0.02),
//!            Channel::Depolarizing2q { p: 0.02 });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod json;
pub mod spec;

pub use channel::{Channel, Matrix2, NoiseError, PauliForm, CPTP_TOLERANCE, MAX_KRAUS_OPS};
pub use spec::{Binding, ChannelShape, GateSel, NoiseSpec, Rate, MAX_SPEC_QUBIT};
