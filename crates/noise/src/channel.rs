//! The channel taxonomy: every error process the simulator can attach to a
//! program site, validated for CPTP-ness at construction time.
//!
//! Channels split into two families the simulator treats very differently:
//!
//! * **Pauli-diagonal** channels ([`Channel::pauli_form`] returns `Some`) —
//!   depolarizing, bit-flip, phase-flip, Pauli-weighted. Their action is
//!   "with probability `p_fire`, apply one non-identity Pauli", which is
//!   exactly the shape of the pre-sampler's gating table, so they keep the
//!   fast execution tiers and the tableau backend's precomputed error masks.
//! * **General Kraus** channels ([`Channel::kraus_ops`] returns `Some`) —
//!   amplitude damping and explicit operator lists. Their branch
//!   probabilities depend on the quantum state, so every trial must replay
//!   densely and draw the branch against the live amplitudes.

use std::fmt;

/// A 2×2 complex matrix in row-major order (`[m00, m01, m10, m11]`);
/// each entry is `(re, im)`.
pub type Matrix2 = [(f64, f64); 4];

/// Largest number of operators a general Kraus channel may carry.
pub const MAX_KRAUS_OPS: usize = 8;

/// Tolerance for the CPTP completeness check `Σ K†K = I`.
pub const CPTP_TOLERANCE: f64 = 1e-9;

/// A fully-parameterized quantum channel.
///
/// Every variant is a CPTP map once [`Channel::validate`] passes; the
/// probability parameters are *absolute* (a `Channel` needs no further
/// context to be applied).
#[derive(Debug, Clone, PartialEq)]
pub enum Channel {
    /// Single-qubit depolarizing: with probability `p`, apply a uniformly
    /// chosen non-identity Pauli (X, Y or Z).
    Depolarizing1q {
        /// Total firing probability.
        p: f64,
    },
    /// Two-qubit depolarizing: with probability `p`, apply a uniformly
    /// chosen non-identity two-qubit Pauli (15 choices).
    Depolarizing2q {
        /// Total firing probability.
        p: f64,
    },
    /// With probability `p`, apply X.
    BitFlip {
        /// Firing probability.
        p: f64,
    },
    /// With probability `p`, apply Z.
    PhaseFlip {
        /// Firing probability.
        p: f64,
    },
    /// Apply X with probability `px`, Y with `py`, Z with `pz`
    /// (identity with the remainder).
    PauliWeighted {
        /// Probability of an X error.
        px: f64,
        /// Probability of a Y error.
        py: f64,
        /// Probability of a Z error.
        pz: f64,
    },
    /// Amplitude damping with decay probability `gamma`:
    /// `K0 = [[1, 0], [0, √(1−γ)]]`, `K1 = [[0, √γ], [0, 0]]`.
    AmplitudeDamping {
        /// Decay probability.
        gamma: f64,
    },
    /// A general single-qubit channel given by explicit Kraus operators.
    Kraus {
        /// The operator list; must satisfy `Σ K†K = I`.
        ops: Vec<Matrix2>,
    },
}

/// The Pauli-diagonal form of a channel: one firing probability plus the
/// conditional severity distribution, the exact inputs the pre-sampler's
/// gating table wants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PauliForm {
    /// Single-qubit: conditional weights over X/Y/Z (summing to 1 whenever
    /// `p_fire > 0`).
    One {
        /// Probability any error fires at this site.
        p_fire: f64,
        /// P(X | fired).
        wx: f64,
        /// P(Y | fired).
        wy: f64,
        /// P(Z | fired).
        wz: f64,
    },
    /// Two-qubit depolarizing: uniform over the 15 non-identity Paulis.
    TwoUniform {
        /// Probability any error fires at this site.
        p_fire: f64,
    },
}

/// Why a channel or spec was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseError {
    /// The document is not well-formed JSON.
    Parse(String),
    /// The document is well-formed JSON but violates the spec schema
    /// (unknown field, wrong type, bad selector, out-of-range rate...).
    Invalid(String),
    /// A channel's parameters do not describe a CPTP map.
    NotCptp(String),
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::Parse(m) => write!(f, "noise spec is not valid JSON: {m}"),
            NoiseError::Invalid(m) => write!(f, "invalid noise spec: {m}"),
            NoiseError::NotCptp(m) => write!(f, "channel is not CPTP: {m}"),
        }
    }
}

impl std::error::Error for NoiseError {}

fn check_probability(p: f64, what: &str) -> Result<(), NoiseError> {
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(NoiseError::NotCptp(format!(
            "{what} must be a probability in [0, 1], got {p}"
        )));
    }
    Ok(())
}

impl Channel {
    /// How many qubits the channel acts on (1 or 2).
    pub fn arity(&self) -> usize {
        match self {
            Channel::Depolarizing2q { .. } => 2,
            _ => 1,
        }
    }

    /// Checks the parameters describe a CPTP map.
    ///
    /// # Errors
    ///
    /// [`NoiseError::NotCptp`] when a probability is out of range, a Kraus
    /// entry is non-finite, or the completeness sum `Σ K†K` differs from
    /// the identity by more than [`CPTP_TOLERANCE`].
    pub fn validate(&self) -> Result<(), NoiseError> {
        match self {
            Channel::Depolarizing1q { p } => check_probability(*p, "depolarizing-1q p"),
            Channel::Depolarizing2q { p } => check_probability(*p, "depolarizing-2q p"),
            Channel::BitFlip { p } => check_probability(*p, "bit-flip p"),
            Channel::PhaseFlip { p } => check_probability(*p, "phase-flip p"),
            Channel::PauliWeighted { px, py, pz } => {
                check_probability(*px, "pauli-weighted px")?;
                check_probability(*py, "pauli-weighted py")?;
                check_probability(*pz, "pauli-weighted pz")?;
                check_probability(px + py + pz, "pauli-weighted px+py+pz")
            }
            Channel::AmplitudeDamping { gamma } => {
                check_probability(*gamma, "amplitude-damping gamma")
            }
            Channel::Kraus { ops } => validate_kraus(ops),
        }
    }

    /// The Pauli-diagonal form, when the channel has one; `None` for
    /// amplitude damping and general Kraus channels (those force the dense
    /// backend).
    pub fn pauli_form(&self) -> Option<PauliForm> {
        match *self {
            Channel::Depolarizing1q { p } => Some(PauliForm::One {
                p_fire: p,
                wx: 1.0 / 3.0,
                wy: 1.0 / 3.0,
                wz: 1.0 / 3.0,
            }),
            Channel::Depolarizing2q { p } => Some(PauliForm::TwoUniform { p_fire: p }),
            Channel::BitFlip { p } => Some(PauliForm::One {
                p_fire: p,
                wx: 1.0,
                wy: 0.0,
                wz: 0.0,
            }),
            Channel::PhaseFlip { p } => Some(PauliForm::One {
                p_fire: p,
                wx: 0.0,
                wy: 0.0,
                wz: 1.0,
            }),
            Channel::PauliWeighted { px, py, pz } => {
                let p_fire = px + py + pz;
                let (wx, wy, wz) = if p_fire > 0.0 {
                    (px / p_fire, py / p_fire, pz / p_fire)
                } else {
                    (1.0, 0.0, 0.0)
                };
                Some(PauliForm::One { p_fire, wx, wy, wz })
            }
            Channel::AmplitudeDamping { .. } | Channel::Kraus { .. } => None,
        }
    }

    /// The explicit Kraus operators, for the channels that need dense
    /// state-dependent application; `None` for Pauli-diagonal channels
    /// (those lower into the pre-sampler instead).
    pub fn kraus_ops(&self) -> Option<Vec<Matrix2>> {
        match self {
            Channel::AmplitudeDamping { gamma } => {
                let s = (1.0 - gamma).max(0.0).sqrt();
                let g = gamma.max(0.0).sqrt();
                Some(vec![
                    [(1.0, 0.0), (0.0, 0.0), (0.0, 0.0), (s, 0.0)],
                    [(0.0, 0.0), (g, 0.0), (0.0, 0.0), (0.0, 0.0)],
                ])
            }
            Channel::Kraus { ops } => Some(ops.clone()),
            _ => None,
        }
    }
}

/// Checks completeness `Σ K†K = I` (which also implies trace preservation).
fn validate_kraus(ops: &[Matrix2]) -> Result<(), NoiseError> {
    if ops.is_empty() || ops.len() > MAX_KRAUS_OPS {
        return Err(NoiseError::NotCptp(format!(
            "a Kraus channel needs 1..={MAX_KRAUS_OPS} operators, got {}",
            ops.len()
        )));
    }
    for (k, op) in ops.iter().enumerate() {
        for (re, im) in op {
            if !re.is_finite() || !im.is_finite() {
                return Err(NoiseError::NotCptp(format!(
                    "Kraus operator {k} has a non-finite entry"
                )));
            }
        }
    }
    // (Σ_k K†K)_{ij} = Σ_k Σ_m conj(K_mi) · K_mj, row-major index 2m+i.
    let mut sum = [(0.0f64, 0.0f64); 4];
    for op in ops {
        for i in 0..2 {
            for j in 0..2 {
                for m in 0..2 {
                    let (ar, ai) = op[2 * m + i];
                    let (br, bi) = op[2 * m + j];
                    // conj(a) * b
                    sum[2 * i + j].0 += ar * br + ai * bi;
                    sum[2 * i + j].1 += ar * bi - ai * br;
                }
            }
        }
    }
    let identity = [(1.0, 0.0), (0.0, 0.0), (0.0, 0.0), (1.0, 0.0)];
    let mut defect = 0.0f64;
    for (s, id) in sum.iter().zip(identity.iter()) {
        defect = defect.max((s.0 - id.0).abs()).max((s.1 - id.1).abs());
    }
    if defect > CPTP_TOLERANCE {
        return Err(NoiseError::NotCptp(format!(
            "Kraus completeness sum deviates from identity by {defect:.3e} \
             (tolerance {CPTP_TOLERANCE:.0e})"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pauli_channels_classify_and_validate() {
        let c = Channel::Depolarizing1q { p: 0.3 };
        c.validate().unwrap();
        let Some(PauliForm::One { p_fire, wx, wy, wz }) = c.pauli_form() else {
            panic!("depolarizing must be Pauli-diagonal");
        };
        assert!((p_fire - 0.3).abs() < 1e-15);
        assert!((wx + wy + wz - 1.0).abs() < 1e-15);

        let c = Channel::PauliWeighted {
            px: 0.1,
            py: 0.0,
            pz: 0.3,
        };
        c.validate().unwrap();
        let Some(PauliForm::One { p_fire, wx, wz, .. }) = c.pauli_form() else {
            panic!()
        };
        assert!((p_fire - 0.4).abs() < 1e-15);
        assert!((wx - 0.25).abs() < 1e-15);
        assert!((wz - 0.75).abs() < 1e-15);

        assert!(matches!(
            Channel::Depolarizing2q { p: 0.1 }.pauli_form(),
            Some(PauliForm::TwoUniform { .. })
        ));
    }

    #[test]
    fn out_of_range_probabilities_are_rejected() {
        assert!(Channel::BitFlip { p: 1.2 }.validate().is_err());
        assert!(Channel::PhaseFlip { p: -0.1 }.validate().is_err());
        assert!(Channel::AmplitudeDamping { gamma: f64::NAN }
            .validate()
            .is_err());
        assert!(Channel::PauliWeighted {
            px: 0.5,
            py: 0.5,
            pz: 0.5
        }
        .validate()
        .is_err());
    }

    #[test]
    fn amplitude_damping_kraus_ops_are_complete() {
        for gamma in [0.0, 0.25, 1.0] {
            let ops = Channel::AmplitudeDamping { gamma }.kraus_ops().unwrap();
            validate_kraus(&ops).unwrap();
        }
        assert!(Channel::AmplitudeDamping { gamma: 0.5 }
            .pauli_form()
            .is_none());
    }

    #[test]
    fn kraus_completeness_is_enforced() {
        // A valid dephasing-style pair...
        let p: f64 = 0.1;
        let good = Channel::Kraus {
            ops: vec![
                [
                    ((1.0 - p).sqrt(), 0.0),
                    (0.0, 0.0),
                    (0.0, 0.0),
                    ((1.0 - p).sqrt(), 0.0),
                ],
                [(p.sqrt(), 0.0), (0.0, 0.0), (0.0, 0.0), (-p.sqrt(), 0.0)],
            ],
        };
        good.validate().unwrap();

        // ...and the same pair scaled is no longer trace preserving.
        let bad = Channel::Kraus {
            ops: vec![[(0.9, 0.0), (0.0, 0.0), (0.0, 0.0), (0.9, 0.0)]],
        };
        assert!(matches!(bad.validate(), Err(NoiseError::NotCptp(_))));

        assert!(Channel::Kraus { ops: vec![] }.validate().is_err());
    }
}
