//! Minimal JSON reading and writing.
//!
//! The build environment has no `serde_json` (see `shims/README.md`), so
//! JSON handling is hand-rolled: [`write_str`]/number formatting on the way
//! out, and this small recursive-descent parser on the way in — enough to
//! parse [`NoiseSpec`](crate::NoiseSpec) documents, round-trip the reports
//! `nisq-exp` emits (which re-exports this module), and let CI validate a
//! `nisqc sweep` output without external dependencies.

use std::fmt;

/// A parsed JSON value. Objects keep their key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without a fraction or exponent, kept exact (JSON
    /// itself has one number type, but `u64` seeds do not survive an `f64`
    /// round-trip).
    Integer(i128),
    /// Any other JSON number (parsed as `f64`).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative
    /// number (exact for anything emitted as an integer literal).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Integer(i) => u64::try_from(*i).ok(),
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: what was expected and the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first malformed construct.
///
/// # Example
///
/// ```
/// use nisq_noise::json;
///
/// let v = json::parse(r#"{"cells": [1, 2.5], "ok": true}"#).unwrap();
/// assert_eq!(v.get("cells").unwrap().as_array().unwrap().len(), 2);
/// assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
/// ```
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

/// Escapes `s` into a JSON string literal (including the quotes).
pub fn write_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by this crate's
                            // writer; reject rather than mis-decode them.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(exact) = text.parse::<i128>() {
                return Ok(Value::Integer(exact));
            }
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, -2.5, "x\"y"], "b": {"c": null, "d": false}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_str(), Some("x\"y"));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"open", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn escaping_round_trips() {
        let original = "line\nbreak \"quoted\" back\\slash tab\t unicode é";
        let doc = format!("{{\"s\": {}}}", write_str(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        let seed = 17268860690689233510u64; // > 2^53: not representable as f64
        let v = parse(&format!("{{\"seed\": {seed}}}")).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(seed));
        assert_eq!(parse("-7").unwrap(), Value::Integer(-7));
    }

    #[test]
    fn scientific_numbers_parse() {
        assert_eq!(parse("1.5e3").unwrap().as_f64(), Some(1500.0));
        assert_eq!(parse("-2E-2").unwrap().as_f64(), Some(-0.02));
    }
}
