//! Declarative noise specifications: named sets of channel bindings,
//! parseable from JSON with the same strict unknown-field rejection the
//! serve protocol uses.
//!
//! A spec is a list of *bindings*. Each binding selects a class of program
//! sites (`"on"`: single-qubit gates, CNOTs, SWAPs or measurements,
//! optionally narrowed to listed qubits or edges), names a channel *shape*,
//! and gives the channel's strength as either a fixed probability or a
//! multiple of the site's calibrated error rate:
//!
//! ```json
//! {
//!   "name": "depol-cnot+ad-measure",
//!   "bindings": [
//!     {"on": "cnot", "rate": {"calibration": 1.0},
//!      "channel": {"kind": "depolarizing-2q"}},
//!     {"on": "measure", "rate": 0.03,
//!      "channel": {"kind": "amplitude-damping"}},
//!     {"on": "sq", "qubits": [0, 5], "rate": 0.001,
//!      "channel": {"kind": "pauli-weighted", "wx": 1, "wy": 1, "wz": 2}}
//!   ]
//! }
//! ```
//!
//! General Kraus channels are fully explicit (their operators already fix
//! the strength), so a `"kraus"` binding must *omit* `"rate"`; every other
//! shape requires one.

use crate::channel::{Channel, Matrix2, NoiseError, MAX_KRAUS_OPS};
use crate::json::{self, Value};

/// Largest qubit index a binding filter may name.
pub const MAX_SPEC_QUBIT: u32 = 4096;

/// Which program sites a binding attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateSel {
    /// Every single-qubit gate (spelled `"sq"`).
    SingleQubit,
    /// Every hardware CNOT (spelled `"cnot"`).
    Cnot,
    /// Every hardware SWAP (spelled `"swap"`).
    Swap,
    /// Every measurement (spelled `"measure"`).
    Measure,
}

impl GateSel {
    /// The wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            GateSel::SingleQubit => "sq",
            GateSel::Cnot => "cnot",
            GateSel::Swap => "swap",
            GateSel::Measure => "measure",
        }
    }

    fn parse(text: &str) -> Result<Self, NoiseError> {
        match text {
            "sq" => Ok(GateSel::SingleQubit),
            "cnot" => Ok(GateSel::Cnot),
            "swap" => Ok(GateSel::Swap),
            "measure" => Ok(GateSel::Measure),
            other => Err(NoiseError::Invalid(format!(
                "unknown binding selector {other:?} (expected sq, cnot, swap or measure)"
            ))),
        }
    }

    /// Whether the selected sites act on two qubits.
    pub fn is_two_qubit(self) -> bool {
        matches!(self, GateSel::Cnot | GateSel::Swap)
    }
}

/// How a binding's channel strength is determined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rate {
    /// A fixed probability in `[0, 1]`.
    Fixed(f64),
    /// `factor ×` the site's calibrated error rate, clamped to `[0, 1]`.
    Calibration {
        /// Non-negative multiplier on the calibrated rate.
        factor: f64,
    },
}

impl Rate {
    /// Resolves the strength parameter at a site whose calibrated error
    /// rate is `calibrated`.
    pub fn resolve(self, calibrated: f64) -> f64 {
        match self {
            Rate::Fixed(p) => p,
            Rate::Calibration { factor } => (factor * calibrated).clamp(0.0, 1.0),
        }
    }
}

/// A channel shape: a [`Channel`] minus its strength parameter (which the
/// binding's [`Rate`] supplies per site).
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelShape {
    /// Single-qubit depolarizing at the resolved rate.
    Depolarizing1q,
    /// Two-qubit depolarizing at the resolved rate.
    Depolarizing2q,
    /// X with the resolved rate.
    BitFlip,
    /// Z with the resolved rate.
    PhaseFlip,
    /// X/Y/Z with the resolved rate split by relative weights.
    PauliWeighted {
        /// Relative X weight.
        wx: f64,
        /// Relative Y weight.
        wy: f64,
        /// Relative Z weight.
        wz: f64,
    },
    /// Amplitude damping with `γ =` the resolved rate.
    AmplitudeDamping,
    /// Explicit Kraus operators (no rate; the operators are the channel).
    Kraus {
        /// The operator list, validated for CPTP-ness.
        ops: Vec<Matrix2>,
    },
}

impl ChannelShape {
    /// Whether the shape stays Pauli-diagonal (keeps the fast tiers).
    pub fn is_pauli(&self) -> bool {
        !matches!(
            self,
            ChannelShape::AmplitudeDamping | ChannelShape::Kraus { .. }
        )
    }

    fn kind_name(&self) -> &'static str {
        match self {
            ChannelShape::Depolarizing1q => "depolarizing-1q",
            ChannelShape::Depolarizing2q => "depolarizing-2q",
            ChannelShape::BitFlip => "bit-flip",
            ChannelShape::PhaseFlip => "phase-flip",
            ChannelShape::PauliWeighted { .. } => "pauli-weighted",
            ChannelShape::AmplitudeDamping => "amplitude-damping",
            ChannelShape::Kraus { .. } => "kraus",
        }
    }
}

/// One site-class → channel binding.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// Which sites the binding attaches to.
    pub on: GateSel,
    /// For `sq`/`measure`: restrict to these qubits (`None` = all).
    pub qubits: Option<Vec<u32>>,
    /// For `cnot`/`swap`: restrict to these (unordered) edges (`None` = all).
    pub edges: Option<Vec<(u32, u32)>>,
    /// The channel strength; `None` only for `kraus` shapes.
    pub rate: Option<Rate>,
    /// The channel shape.
    pub shape: ChannelShape,
}

impl Binding {
    /// Whether this binding covers single qubit `q` (for `sq`/`measure`).
    pub fn applies_to_qubit(&self, q: u32) -> bool {
        match &self.qubits {
            Some(list) => list.contains(&q),
            None => true,
        }
    }

    /// Whether this binding covers the unordered edge `(a, b)`.
    pub fn applies_to_edge(&self, a: u32, b: u32) -> bool {
        match &self.edges {
            Some(list) => list
                .iter()
                .any(|&(x, y)| (x == a && y == b) || (x == b && y == a)),
            None => true,
        }
    }

    /// Resolves the bound channel at a site whose calibrated error rate is
    /// `calibrated` (ignored for fixed rates and Kraus shapes).
    pub fn channel_at(&self, calibrated: f64) -> Channel {
        let theta = self.rate.map_or(0.0, |r| r.resolve(calibrated));
        match &self.shape {
            ChannelShape::Depolarizing1q => Channel::Depolarizing1q { p: theta },
            ChannelShape::Depolarizing2q => Channel::Depolarizing2q { p: theta },
            ChannelShape::BitFlip => Channel::BitFlip { p: theta },
            ChannelShape::PhaseFlip => Channel::PhaseFlip { p: theta },
            ChannelShape::PauliWeighted { wx, wy, wz } => {
                let sum = wx + wy + wz;
                Channel::PauliWeighted {
                    px: theta * wx / sum,
                    py: theta * wy / sum,
                    pz: theta * wz / sum,
                }
            }
            ChannelShape::AmplitudeDamping => Channel::AmplitudeDamping { gamma: theta },
            ChannelShape::Kraus { ops } => Channel::Kraus { ops: ops.clone() },
        }
    }

    fn validate(&self, index: usize) -> Result<(), NoiseError> {
        let ctx = format!(
            "binding {index} ({} → {})",
            self.on.name(),
            self.shape.kind_name()
        );
        let two_qubit_shape = matches!(self.shape, ChannelShape::Depolarizing2q);
        if two_qubit_shape != self.on.is_two_qubit() {
            return Err(NoiseError::Invalid(format!(
                "{ctx}: {} channels bind to {} sites only",
                self.shape.kind_name(),
                if two_qubit_shape {
                    "cnot/swap"
                } else {
                    "sq/measure"
                }
            )));
        }
        if self.qubits.is_some() && self.on.is_two_qubit() {
            return Err(NoiseError::Invalid(format!(
                "{ctx}: use \"edges\" (not \"qubits\") with cnot/swap selectors"
            )));
        }
        if self.edges.is_some() && !self.on.is_two_qubit() {
            return Err(NoiseError::Invalid(format!(
                "{ctx}: use \"qubits\" (not \"edges\") with sq/measure selectors"
            )));
        }
        if let Some(qubits) = &self.qubits {
            if qubits.is_empty() {
                return Err(NoiseError::Invalid(format!(
                    "{ctx}: empty \"qubits\" filter"
                )));
            }
            if let Some(&q) = qubits.iter().find(|&&q| q > MAX_SPEC_QUBIT) {
                return Err(NoiseError::Invalid(format!(
                    "{ctx}: qubit index {q} exceeds the {MAX_SPEC_QUBIT} cap"
                )));
            }
        }
        if let Some(edges) = &self.edges {
            if edges.is_empty() {
                return Err(NoiseError::Invalid(format!(
                    "{ctx}: empty \"edges\" filter"
                )));
            }
            for &(a, b) in edges {
                if a == b {
                    return Err(NoiseError::Invalid(format!(
                        "{ctx}: degenerate edge [{a}, {b}]"
                    )));
                }
                if a.max(b) > MAX_SPEC_QUBIT {
                    return Err(NoiseError::Invalid(format!(
                        "{ctx}: qubit index {} exceeds the {MAX_SPEC_QUBIT} cap",
                        a.max(b)
                    )));
                }
            }
        }
        match (&self.rate, &self.shape) {
            (Some(_), ChannelShape::Kraus { .. }) => {
                return Err(NoiseError::Invalid(format!(
                    "{ctx}: kraus channels are fully explicit — omit \"rate\""
                )));
            }
            (None, ChannelShape::Kraus { .. }) => {}
            (None, _) => {
                return Err(NoiseError::Invalid(format!("{ctx}: missing \"rate\"")));
            }
            (Some(Rate::Fixed(p)), _) => {
                if !p.is_finite() || !(0.0..=1.0).contains(p) {
                    return Err(NoiseError::Invalid(format!(
                        "{ctx}: fixed rate must be a probability in [0, 1], got {p}"
                    )));
                }
            }
            (Some(Rate::Calibration { factor }), _) => {
                if !factor.is_finite() || *factor < 0.0 {
                    return Err(NoiseError::Invalid(format!(
                        "{ctx}: calibration factor must be finite and non-negative, got {factor}"
                    )));
                }
            }
        }
        if let ChannelShape::PauliWeighted { wx, wy, wz } = self.shape {
            for (w, name) in [(wx, "wx"), (wy, "wy"), (wz, "wz")] {
                if !w.is_finite() || w < 0.0 {
                    return Err(NoiseError::Invalid(format!(
                        "{ctx}: weight {name} must be finite and non-negative, got {w}"
                    )));
                }
            }
            if wx + wy + wz <= 0.0 {
                return Err(NoiseError::Invalid(format!(
                    "{ctx}: pauli-weighted weights must sum to a positive value"
                )));
            }
        }
        // CPTP-check the channel at both extremes of the resolvable range.
        self.channel_at(0.0)
            .validate()
            .map_err(|e| invalid_cptp(&ctx, e))?;
        self.channel_at(1.0)
            .validate()
            .map_err(|e| invalid_cptp(&ctx, e))?;
        Ok(())
    }
}

fn invalid_cptp(ctx: &str, e: NoiseError) -> NoiseError {
    match e {
        NoiseError::NotCptp(m) => NoiseError::NotCptp(format!("{ctx}: {m}")),
        other => other,
    }
}

/// A named, validated set of channel bindings.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseSpec {
    name: String,
    bindings: Vec<Binding>,
}

impl NoiseSpec {
    /// Builds a spec programmatically, running the same validation the JSON
    /// path uses.
    ///
    /// # Errors
    ///
    /// See [`NoiseSpec::from_json`].
    pub fn new(name: impl Into<String>, bindings: Vec<Binding>) -> Result<Self, NoiseError> {
        let spec = NoiseSpec {
            name: name.into(),
            bindings,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The spec's label, recorded per cell in sweep reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bindings in declaration order.
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// Whether every binding keeps the Pauli-diagonal fast path (tiers 0–2
    /// and the tableau backend's error masks stay available).
    pub fn is_pauli_only(&self) -> bool {
        self.bindings.iter().all(|b| b.shape.is_pauli())
    }

    /// Parses a complete JSON document into a validated spec.
    ///
    /// # Errors
    ///
    /// [`NoiseError::Parse`] for malformed JSON, [`NoiseError::Invalid`]
    /// for schema violations (including any unknown field, anywhere), and
    /// [`NoiseError::NotCptp`] for channels that fail validation.
    pub fn from_json(text: &str) -> Result<Self, NoiseError> {
        let value = json::parse(text).map_err(|e| NoiseError::Parse(e.to_string()))?;
        Self::from_value(&value)
    }

    /// Parses an already-decoded JSON value (the serve protocol embeds
    /// specs inside its request envelope).
    ///
    /// # Errors
    ///
    /// As [`NoiseSpec::from_json`], minus the JSON-syntax class.
    pub fn from_value(value: &Value) -> Result<Self, NoiseError> {
        let fields = object_fields(value, "noise spec")?;
        reject_unknown(fields, &["name", "bindings"], "noise spec")?;
        let name = req_str(value, "name", "noise spec")?.to_string();
        let bindings_value = value
            .get("bindings")
            .ok_or_else(|| NoiseError::Invalid("noise spec: missing \"bindings\"".into()))?;
        let items = bindings_value.as_array().ok_or_else(|| {
            NoiseError::Invalid("noise spec: \"bindings\" must be an array".into())
        })?;
        let bindings = items
            .iter()
            .enumerate()
            .map(|(i, item)| parse_binding(item, i))
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(name, bindings)
    }

    fn validate(&self) -> Result<(), NoiseError> {
        if self.name.is_empty() || self.name.len() > 64 {
            return Err(NoiseError::Invalid(
                "spec name must be 1..=64 characters".into(),
            ));
        }
        if !self
            .name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '+'))
        {
            return Err(NoiseError::Invalid(format!(
                "spec name {:?} may only contain ASCII alphanumerics and - _ . +",
                self.name
            )));
        }
        if self.bindings.is_empty() {
            return Err(NoiseError::Invalid("spec has no bindings".into()));
        }
        for (i, binding) in self.bindings.iter().enumerate() {
            binding.validate(i)?;
        }
        Ok(())
    }
}

fn object_fields<'v>(value: &'v Value, ctx: &str) -> Result<&'v [(String, Value)], NoiseError> {
    match value {
        Value::Object(fields) => Ok(fields),
        _ => Err(NoiseError::Invalid(format!("{ctx} must be a JSON object"))),
    }
}

fn reject_unknown(
    fields: &[(String, Value)],
    allowed: &[&str],
    ctx: &str,
) -> Result<(), NoiseError> {
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(NoiseError::Invalid(format!(
                "{ctx}: unknown field {key:?} (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

fn req_str<'v>(value: &'v Value, key: &str, ctx: &str) -> Result<&'v str, NoiseError> {
    value
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| NoiseError::Invalid(format!("{ctx}: missing string field {key:?}")))
}

fn number(value: &Value, ctx: &str) -> Result<f64, NoiseError> {
    value
        .as_f64()
        .ok_or_else(|| NoiseError::Invalid(format!("{ctx} must be a number")))
}

fn parse_binding(value: &Value, index: usize) -> Result<Binding, NoiseError> {
    let ctx = format!("binding {index}");
    let fields = object_fields(value, &ctx)?;
    reject_unknown(fields, &["on", "qubits", "edges", "rate", "channel"], &ctx)?;

    let on = GateSel::parse(req_str(value, "on", &ctx)?)?;
    let qubits = match value.get("qubits") {
        None => None,
        Some(v) => Some(parse_u32_list(v, &format!("{ctx}: \"qubits\""))?),
    };
    let edges = match value.get("edges") {
        None => None,
        Some(v) => Some(parse_edge_list(v, &format!("{ctx}: \"edges\""))?),
    };
    let rate = match value.get("rate") {
        None => None,
        Some(v) => Some(parse_rate(v, &ctx)?),
    };
    let channel = value
        .get("channel")
        .ok_or_else(|| NoiseError::Invalid(format!("{ctx}: missing \"channel\"")))?;
    let shape = parse_shape(channel, &ctx)?;
    Ok(Binding {
        on,
        qubits,
        edges,
        rate,
        shape,
    })
}

fn parse_u32_list(value: &Value, ctx: &str) -> Result<Vec<u32>, NoiseError> {
    let items = value
        .as_array()
        .ok_or_else(|| NoiseError::Invalid(format!("{ctx} must be an array of qubit indices")))?;
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| NoiseError::Invalid(format!("{ctx} entries must be qubit indices")))
        })
        .collect()
}

fn parse_edge_list(value: &Value, ctx: &str) -> Result<Vec<(u32, u32)>, NoiseError> {
    let items = value
        .as_array()
        .ok_or_else(|| NoiseError::Invalid(format!("{ctx} must be an array of [a, b] pairs")))?;
    items
        .iter()
        .map(|v| {
            let pair = v.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                NoiseError::Invalid(format!("{ctx} entries must be [a, b] pairs"))
            })?;
            let a = pair[0].as_u64().and_then(|n| u32::try_from(n).ok());
            let b = pair[1].as_u64().and_then(|n| u32::try_from(n).ok());
            match (a, b) {
                (Some(a), Some(b)) => Ok((a, b)),
                _ => Err(NoiseError::Invalid(format!(
                    "{ctx} entries must be qubit-index pairs"
                ))),
            }
        })
        .collect()
}

fn parse_rate(value: &Value, ctx: &str) -> Result<Rate, NoiseError> {
    match value {
        Value::Integer(_) | Value::Number(_) => Ok(Rate::Fixed(value.as_f64().expect("number"))),
        Value::Object(fields) => {
            reject_unknown(fields, &["calibration"], &format!("{ctx}: \"rate\""))?;
            let factor = value.get("calibration").ok_or_else(|| {
                NoiseError::Invalid(format!("{ctx}: rate object needs a \"calibration\" field"))
            })?;
            Ok(Rate::Calibration {
                factor: number(factor, &format!("{ctx}: \"calibration\""))?,
            })
        }
        _ => Err(NoiseError::Invalid(format!(
            "{ctx}: \"rate\" must be a number or {{\"calibration\": factor}}"
        ))),
    }
}

fn parse_shape(value: &Value, ctx: &str) -> Result<ChannelShape, NoiseError> {
    let fields = object_fields(value, &format!("{ctx}: \"channel\""))?;
    let kind = req_str(value, "kind", &format!("{ctx}: \"channel\""))?;
    match kind {
        "depolarizing-1q" | "depolarizing-2q" | "bit-flip" | "phase-flip" | "amplitude-damping" => {
            reject_unknown(fields, &["kind"], &format!("{ctx}: {kind} channel"))?;
            Ok(match kind {
                "depolarizing-1q" => ChannelShape::Depolarizing1q,
                "depolarizing-2q" => ChannelShape::Depolarizing2q,
                "bit-flip" => ChannelShape::BitFlip,
                "phase-flip" => ChannelShape::PhaseFlip,
                _ => ChannelShape::AmplitudeDamping,
            })
        }
        "pauli-weighted" => {
            reject_unknown(
                fields,
                &["kind", "wx", "wy", "wz"],
                &format!("{ctx}: pauli-weighted channel"),
            )?;
            let weight = |key: &str| -> Result<f64, NoiseError> {
                match value.get(key) {
                    None => Ok(0.0),
                    Some(v) => number(v, &format!("{ctx}: pauli-weighted {key}")),
                }
            };
            Ok(ChannelShape::PauliWeighted {
                wx: weight("wx")?,
                wy: weight("wy")?,
                wz: weight("wz")?,
            })
        }
        "kraus" => {
            reject_unknown(fields, &["kind", "ops"], &format!("{ctx}: kraus channel"))?;
            let ops_value = value.get("ops").and_then(Value::as_array).ok_or_else(|| {
                NoiseError::Invalid(format!("{ctx}: kraus channel needs an \"ops\" array"))
            })?;
            if ops_value.is_empty() || ops_value.len() > MAX_KRAUS_OPS {
                return Err(NoiseError::Invalid(format!(
                    "{ctx}: kraus channel needs 1..={MAX_KRAUS_OPS} operators"
                )));
            }
            let ops = ops_value
                .iter()
                .map(|op| parse_matrix(op, ctx))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(ChannelShape::Kraus { ops })
        }
        other => Err(NoiseError::Invalid(format!(
            "{ctx}: unknown channel kind {other:?}"
        ))),
    }
}

/// A Kraus operator in JSON: four `[re, im]` entries, row-major
/// `[m00, m01, m10, m11]`.
fn parse_matrix(value: &Value, ctx: &str) -> Result<Matrix2, NoiseError> {
    let entries = value.as_array().filter(|e| e.len() == 4).ok_or_else(|| {
        NoiseError::Invalid(format!(
            "{ctx}: a Kraus operator is 4 row-major [re, im] entries"
        ))
    })?;
    let mut out = [(0.0, 0.0); 4];
    for (slot, entry) in out.iter_mut().zip(entries) {
        let pair = entry.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
            NoiseError::Invalid(format!("{ctx}: Kraus entries must be [re, im] pairs"))
        })?;
        let re = number(&pair[0], &format!("{ctx}: Kraus re"))?;
        let im = number(&pair[1], &format!("{ctx}: Kraus im"))?;
        *slot = (re, im);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
        "name": "depol-cnot_ad-measure",
        "bindings": [
            {"on": "cnot", "rate": {"calibration": 1.0},
             "channel": {"kind": "depolarizing-2q"}},
            {"on": "measure", "rate": 0.03,
             "channel": {"kind": "amplitude-damping"}},
            {"on": "sq", "qubits": [0, 5], "rate": 0.001,
             "channel": {"kind": "pauli-weighted", "wx": 1, "wy": 1, "wz": 2}}
        ]
    }"#;

    #[test]
    fn parses_a_valid_spec() {
        let spec = NoiseSpec::from_json(GOOD).unwrap();
        assert_eq!(spec.name(), "depol-cnot_ad-measure");
        assert_eq!(spec.bindings().len(), 3);
        assert!(!spec.is_pauli_only());
        assert!(spec.bindings()[0].applies_to_edge(3, 7));
        assert!(spec.bindings()[2].applies_to_qubit(5));
        assert!(!spec.bindings()[2].applies_to_qubit(3));

        let c = spec.bindings()[0].channel_at(0.02);
        assert_eq!(c, Channel::Depolarizing2q { p: 0.02 });
        let c = spec.bindings()[1].channel_at(0.9);
        assert_eq!(c, Channel::AmplitudeDamping { gamma: 0.03 });
        let Channel::PauliWeighted { px, py, pz } = spec.bindings()[2].channel_at(0.0) else {
            panic!()
        };
        assert!((px + py + pz - 0.001).abs() < 1e-12);
        assert!((pz - 2.0 * px).abs() < 1e-12);
    }

    #[test]
    fn unknown_fields_are_rejected_at_every_level() {
        let top = GOOD.replacen("\"name\"", "\"Name\"", 1);
        assert!(matches!(
            NoiseSpec::from_json(&top),
            Err(NoiseError::Invalid(_))
        ));
        let binding = GOOD.replacen("\"on\": \"cnot\"", "\"on\": \"cnot\", \"x\": 1", 1);
        assert!(NoiseSpec::from_json(&binding).is_err());
        let channel = GOOD.replacen(
            "{\"kind\": \"depolarizing-2q\"}",
            "{\"kind\": \"depolarizing-2q\", \"p\": 0.1}",
            1,
        );
        assert!(NoiseSpec::from_json(&channel).is_err());
        let rate = GOOD.replacen("{\"calibration\": 1.0}", "{\"scale\": 1.0}", 1);
        assert!(NoiseSpec::from_json(&rate).is_err());
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        assert!(matches!(
            NoiseSpec::from_json("{not json"),
            Err(NoiseError::Parse(_))
        ));
    }

    #[test]
    fn arity_and_filter_mismatches_are_rejected() {
        let sq_2q = r#"{"name": "x", "bindings": [
            {"on": "sq", "rate": 0.1, "channel": {"kind": "depolarizing-2q"}}]}"#;
        assert!(NoiseSpec::from_json(sq_2q).is_err());
        let cnot_1q = r#"{"name": "x", "bindings": [
            {"on": "cnot", "rate": 0.1, "channel": {"kind": "bit-flip"}}]}"#;
        assert!(NoiseSpec::from_json(cnot_1q).is_err());
        let qubits_on_cnot = r#"{"name": "x", "bindings": [
            {"on": "cnot", "qubits": [1], "rate": 0.1,
             "channel": {"kind": "depolarizing-2q"}}]}"#;
        assert!(NoiseSpec::from_json(qubits_on_cnot).is_err());
        let bad_edge = r#"{"name": "x", "bindings": [
            {"on": "cnot", "edges": [[2, 2]], "rate": 0.1,
             "channel": {"kind": "depolarizing-2q"}}]}"#;
        assert!(NoiseSpec::from_json(bad_edge).is_err());
    }

    #[test]
    fn rate_rules_are_enforced() {
        let over = r#"{"name": "x", "bindings": [
            {"on": "sq", "rate": 1.5, "channel": {"kind": "bit-flip"}}]}"#;
        assert!(NoiseSpec::from_json(over).is_err());
        let missing = r#"{"name": "x", "bindings": [
            {"on": "sq", "channel": {"kind": "bit-flip"}}]}"#;
        assert!(NoiseSpec::from_json(missing).is_err());
        let negative_factor = r#"{"name": "x", "bindings": [
            {"on": "sq", "rate": {"calibration": -2}, "channel": {"kind": "bit-flip"}}]}"#;
        assert!(NoiseSpec::from_json(negative_factor).is_err());
        // Calibration scaling saturates at 1.
        let spec = NoiseSpec::from_json(
            r#"{"name": "x", "bindings": [
            {"on": "sq", "rate": {"calibration": 3.0}, "channel": {"kind": "bit-flip"}}]}"#,
        )
        .unwrap();
        assert_eq!(
            spec.bindings()[0].channel_at(0.9),
            Channel::BitFlip { p: 1.0 }
        );
    }

    #[test]
    fn kraus_bindings_parse_and_reject_non_cptp() {
        let good = r#"{"name": "k", "bindings": [
            {"on": "sq", "channel": {"kind": "kraus", "ops": [
                [[0.99498743710662, 0], [0, 0], [0, 0], [0.99498743710662, 0]],
                [[0.1, 0], [0, 0], [0, 0], [-0.1, 0]]
            ]}}]}"#;
        let spec = NoiseSpec::from_json(good).unwrap();
        assert!(!spec.is_pauli_only());

        let rated = good.replacen("\"channel\"", "\"rate\": 0.5, \"channel\"", 1);
        assert!(NoiseSpec::from_json(&rated).is_err());

        let non_cptp = r#"{"name": "k", "bindings": [
            {"on": "sq", "channel": {"kind": "kraus", "ops": [
                [[0.9, 0], [0, 0], [0, 0], [0.9, 0]]
            ]}}]}"#;
        assert!(matches!(
            NoiseSpec::from_json(non_cptp),
            Err(NoiseError::NotCptp(_))
        ));
    }

    #[test]
    fn spec_names_are_constrained() {
        let renamed = GOOD.replacen("depol-cnot_ad-measure", "bad name!", 1);
        assert!(NoiseSpec::from_json(&renamed).is_err());
        let empty = GOOD.replacen("depol-cnot_ad-measure", "", 1);
        assert!(NoiseSpec::from_json(&empty).is_err());
    }

    #[test]
    fn pauli_only_classification() {
        let pauli = r#"{"name": "p", "bindings": [
            {"on": "cnot", "rate": 0.01, "channel": {"kind": "depolarizing-2q"}},
            {"on": "sq", "rate": 0.001, "channel": {"kind": "phase-flip"}}]}"#;
        assert!(NoiseSpec::from_json(pauli).unwrap().is_pauli_only());
    }
}
