//! Textual names for plan axes.
//!
//! The CLI and the serve daemon accept the same spellings for mappers,
//! benchmarks, topologies and day lists; this module is the single parser
//! for them, so a request sent to `nisqc serve` and a `nisqc sweep`
//! invocation resolve identically. Every function returns a typed
//! `Result` — unknown or malformed names are diagnoses, never panics.

use nisq_core::{CompilerConfig, RouteSelection};
use nisq_ir::Benchmark;
use nisq_machine::TopologySpec;

/// Resolves a mapper name (`qiskit`, `t-smt`, `t-smt-star`, `r-smt-star`,
/// `greedy-v`, `greedy-e`) into a compiler configuration.
///
/// # Errors
///
/// Returns a message naming the unknown mapper.
pub fn config_for(mapper: &str, omega: f64) -> Result<CompilerConfig, String> {
    Ok(match mapper {
        "qiskit" => CompilerConfig::qiskit(),
        "t-smt" => CompilerConfig::t_smt(RouteSelection::RectangleReservation),
        "t-smt-star" => CompilerConfig::t_smt_star(RouteSelection::OneBendPaths),
        "r-smt-star" => CompilerConfig::r_smt_star(omega),
        "greedy-v" => CompilerConfig::greedy_v(),
        "greedy-e" => CompilerConfig::greedy_e(),
        other => return Err(format!("unknown mapper {other}")),
    })
}

/// Largest day-axis a textual range may expand to. Untrusted input like
/// `"0..9999999999"` must fail before the expansion allocates.
pub const MAX_DAY_RANGE: usize = 100_000;

/// Parses a day-axis argument: comma-separated items, each a single index
/// or an `a..b` half-open range (`"0,3,5..8"` → `[0, 3, 5, 6, 7]`).
///
/// # Errors
///
/// Returns a message describing the first malformed item, an error for an
/// empty list, or an error for a range expanding past [`MAX_DAY_RANGE`].
pub fn parse_days(text: &str) -> Result<Vec<usize>, String> {
    let mut days = Vec::new();
    for item in text.split(',') {
        let item = item.trim();
        if let Some((start, end)) = item.split_once("..") {
            let start: usize = start
                .parse()
                .map_err(|_| format!("invalid day range start {start:?}"))?;
            let end: usize = end
                .parse()
                .map_err(|_| format!("invalid day range end {end:?}"))?;
            if start >= end {
                return Err(format!("empty day range {item:?}"));
            }
            if end - start > MAX_DAY_RANGE.saturating_sub(days.len()) {
                return Err(format!(
                    "day range {item:?} expands past the {MAX_DAY_RANGE}-day limit"
                ));
            }
            days.extend(start..end);
        } else {
            days.push(
                item.parse()
                    .map_err(|_| format!("invalid day index {item:?}"))?,
            );
        }
    }
    if days.is_empty() {
        return Err("no days given".to_string());
    }
    Ok(days)
}

/// Parses a topology name: `ibmq16`, `grid-MxN`, `ring-N` or
/// `heavy-hex-RxC`. The returned spec is *not* validated for degeneracy;
/// call [`TopologySpec::validate`] (or build machines via
/// `Machine::try_from_spec`) before trusting the dimensions.
///
/// # Errors
///
/// Returns a message describing the malformed name.
pub fn parse_topology(text: &str) -> Result<TopologySpec, String> {
    let lower = text.to_ascii_lowercase();
    let dims = |spec: &str| -> Result<(usize, usize), String> {
        spec.split_once('x')
            .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
            .ok_or_else(|| format!("invalid topology dimensions in {text:?}"))
    };
    if lower == "ibmq16" {
        Ok(TopologySpec::Ibmq16)
    } else if let Some(rest) = lower.strip_prefix("grid-") {
        let (mx, my) = dims(rest)?;
        Ok(TopologySpec::Grid { mx, my })
    } else if let Some(rest) = lower.strip_prefix("ring-") {
        let n = rest
            .parse()
            .map_err(|_| format!("invalid ring size in {text:?}"))?;
        Ok(TopologySpec::Ring { n })
    } else if let Some(rest) = lower.strip_prefix("heavy-hex-") {
        let (rows, cols) = dims(rest)?;
        Ok(TopologySpec::HeavyHex { rows, cols })
    } else {
        Err(format!("unknown topology {text:?}"))
    }
}

/// Resolves a benchmark-list argument (`all`, `representative`, `none`, or
/// a comma list of Table-2 names) into benchmarks. `none` selects no
/// benchmarks — for plans built entirely from custom QASM circuits.
///
/// # Errors
///
/// Returns a message naming the first unknown benchmark.
pub fn parse_benchmarks(text: &str) -> Result<Vec<Benchmark>, String> {
    match text.to_ascii_lowercase().as_str() {
        "all" => Ok(Benchmark::all().to_vec()),
        "representative" => Ok(Benchmark::representative().to_vec()),
        "none" => Ok(Vec::new()),
        _ => text
            .split(',')
            .map(|name| {
                let name = name.trim();
                Benchmark::all()
                    .into_iter()
                    .find(|b| b.name().eq_ignore_ascii_case(name))
                    .ok_or_else(|| format!("unknown benchmark {name}"))
            })
            .collect(),
    }
}

/// Resolves a mapper-list argument (`table1` or a comma list of mapper
/// names) into labelled configurations.
///
/// # Errors
///
/// Returns a message for an unknown mapper or a duplicate label.
pub fn parse_mappers(text: &str, omega: f64) -> Result<Vec<(String, CompilerConfig)>, String> {
    if text.eq_ignore_ascii_case("table1") {
        return Ok(CompilerConfig::table1()
            .into_iter()
            .map(|c| (c.algorithm.name().to_string(), c))
            .collect());
    }
    let mappers: Vec<(String, CompilerConfig)> = text
        .split(',')
        .map(|name| {
            let name = name.trim();
            config_for(name, omega).map(|c| (name.to_string(), c))
        })
        .collect::<Result<_, _>>()?;
    // Labels address report cells, so they must be unambiguous.
    for (i, (label, _)) in mappers.iter().enumerate() {
        if mappers[..i].iter().any(|(seen, _)| seen == label) {
            return Err(format!("duplicate mapper {label}"));
        }
    }
    Ok(mappers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_day_lists_and_ranges() {
        assert_eq!(parse_days("0,3,5..8").unwrap(), vec![0, 3, 5, 6, 7]);
        assert_eq!(parse_days("2").unwrap(), vec![2]);
        assert!(parse_days("5..5").is_err());
        assert!(parse_days("x").is_err());
        assert!(parse_days("").is_err());
        assert!(parse_days("0..9999999999").is_err());
    }

    #[test]
    fn parses_topology_names() {
        assert_eq!(parse_topology("ibmq16").unwrap(), TopologySpec::Ibmq16);
        assert_eq!(
            parse_topology("grid-4x4").unwrap(),
            TopologySpec::Grid { mx: 4, my: 4 }
        );
        assert_eq!(
            parse_topology("ring-12").unwrap(),
            TopologySpec::Ring { n: 12 }
        );
        assert_eq!(
            parse_topology("heavy-hex-2x7").unwrap(),
            TopologySpec::HeavyHex { rows: 2, cols: 7 }
        );
        assert!(parse_topology("torus-3x3").is_err());
    }

    #[test]
    fn parses_benchmark_and_mapper_lists() {
        assert_eq!(parse_benchmarks("all").unwrap().len(), 12);
        assert_eq!(parse_benchmarks("representative").unwrap().len(), 3);
        assert_eq!(
            parse_benchmarks("bv4,toffoli").unwrap(),
            vec![Benchmark::Bv4, Benchmark::Toffoli]
        );
        assert!(parse_benchmarks("bv99").is_err());

        assert_eq!(parse_mappers("table1", 0.5).unwrap().len(), 6);
        let pair = parse_mappers("qiskit,greedy-e", 0.5).unwrap();
        assert_eq!(pair[0].0, "qiskit");
        assert_eq!(pair[1].1, CompilerConfig::greedy_e());
        assert!(parse_mappers("magic", 0.5).is_err());
        assert!(parse_mappers("qiskit,qiskit", 0.5).is_err());
    }

    #[test]
    fn every_documented_mapper_name_is_accepted() {
        for name in [
            "qiskit",
            "t-smt",
            "t-smt-star",
            "r-smt-star",
            "greedy-v",
            "greedy-e",
        ] {
            assert!(config_for(name, 0.5).is_ok(), "{name}");
        }
    }
}
