//! Structured experiment reports with stable JSON serialization.

use crate::json::{self, JsonError, Value};
use serde::{Deserialize, Serialize};

/// Version tag embedded in every serialized report. `v2` added the
/// simulator tier-occupancy counts (per cell and as run totals); `v3`
/// added the tier-0 `pauli_prop` occupancy and the single-error suffix
/// memo's `memo_hits`/`memo_misses` counters; `v4` added the `backend`
/// tag recording which state backend (`dense` or `tableau`, `mixed` in
/// aggregates) served each cell's trials; `v5` added the per-cell
/// `noise` provenance field naming the declarative noise spec bound for
/// the cell's trials (`null` = built-in noise model alone); `v6` added
/// the journal provenance fields — the report-level `resumed_cells`
/// count and `journal_hash` path hash, and the cache's `journal_hits`
/// counter — all zero for journal-less runs.
pub const REPORT_SCHEMA: &str = "nisq-sweep-report/v6";

/// Which simulator state backend served a set of trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BackendTag {
    /// The dense state-vector backend (also the tag of never-simulated,
    /// all-zero [`TierStats`]).
    #[default]
    Dense,
    /// The bit-packed stabilizer-tableau backend (fully-Clifford programs).
    Tableau,
    /// An aggregate of cells served by different backends (run totals
    /// only; a single cell is always served by exactly one backend).
    Mixed,
}

impl BackendTag {
    /// The stable serialization name.
    pub fn name(&self) -> &'static str {
        match self {
            BackendTag::Dense => "dense",
            BackendTag::Tableau => "tableau",
            BackendTag::Mixed => "mixed",
        }
    }

    fn parse(name: &str) -> Option<BackendTag> {
        match name {
            "dense" => Some(BackendTag::Dense),
            "tableau" => Some(BackendTag::Tableau),
            "mixed" => Some(BackendTag::Mixed),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How many trials each tier of the simulator's four-tier engine served —
/// error-free shortcut, tier-0 Pauli propagation, checkpointed resume,
/// full replay — plus the single-error suffix memo's hit/miss counters
/// (see `nisq_sim::TierCounts`). Recorded per cell and summed over the
/// run. The four tier fields partition the trial count; the memo counters
/// describe a subset of the checkpointed/full-replay trials and are not
/// part of the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TierStats {
    /// Which state backend served these trials (`Mixed` only in merged
    /// run totals).
    pub backend: BackendTag,
    /// Trials with no sampled error, served from the ideal terminal
    /// distribution without state evolution.
    pub error_free: u64,
    /// Error trials whose suffix was all-Clifford, served by symplectic
    /// Pauli propagation without state evolution.
    pub pauli_prop: u64,
    /// Trials resumed from a shared ideal-prefix (or measure-divergence)
    /// checkpoint.
    pub checkpointed: u64,
    /// Trials replayed from the initial state.
    pub full_replay: u64,
    /// Single-error trials served from the memoized suffix evolution.
    pub memo_hits: u64,
    /// Single-error trials that built a memo entry.
    pub memo_misses: u64,
}

impl TierStats {
    /// Total trials across every tier (memo counters overlap the partition
    /// and are not added).
    pub fn total(&self) -> u64 {
        self.error_free + self.pauli_prop + self.checkpointed + self.full_replay
    }

    /// Accumulates another cell's counts. Empty operands leave the backend
    /// tag alone; merging cells served by different backends degrades the
    /// tag to [`BackendTag::Mixed`].
    pub fn merge(&mut self, other: &TierStats) {
        if other.total() > 0 {
            if self.total() == 0 {
                self.backend = other.backend;
            } else if self.backend != other.backend {
                self.backend = BackendTag::Mixed;
            }
        }
        self.error_free += other.error_free;
        self.pauli_prop += other.pauli_prop;
        self.checkpointed += other.checkpointed;
        self.full_replay += other.full_replay;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
    }
}

impl From<nisq_sim::TierCounts> for TierStats {
    fn from(counts: nisq_sim::TierCounts) -> Self {
        TierStats {
            backend: match counts.backend {
                nisq_sim::BackendKind::Dense => BackendTag::Dense,
                nisq_sim::BackendKind::Tableau => BackendTag::Tableau,
            },
            error_free: counts.error_free,
            pauli_prop: counts.pauli_prop,
            checkpointed: counts.checkpointed,
            full_replay: counts.full_replay,
            memo_hits: counts.memo_hits,
            memo_misses: counts.memo_misses,
        }
    }
}

/// Aggregate cache behaviour of the [`Session`](crate::Session) run that
/// produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Compilations requested (one per plan cell).
    pub compile_requests: u64,
    /// Requests answered from the full-compile cache.
    pub compile_hits: u64,
    /// Placement-pass lookups answered from the placement cache.
    pub place_hits: u64,
    /// Placement passes actually executed (= placement-cache misses).
    pub place_runs: u64,
    /// Cells served from a sweep journal without recompilation or
    /// resimulation (journaled runs only; always 0 otherwise).
    pub journal_hits: u64,
}

impl CacheStats {
    /// Compilations that actually ran the pipeline.
    pub fn compile_runs(&self) -> u64 {
        self.compile_requests - self.compile_hits
    }

    /// Cache hits at any level (full compile or placement pass).
    pub fn total_hits(&self) -> u64 {
        self.compile_hits + self.place_hits
    }
}

/// The outcome of one plan cell: compile metrics, and simulation metrics
/// when the plan requested trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellRecord {
    /// Circuit display name.
    pub circuit: String,
    /// Configuration label.
    pub config: String,
    /// Machine topology name (e.g. `IBMQ16`, `grid-4x4`).
    pub topology: String,
    /// Calibration day index.
    pub day: usize,
    /// Label of the plan's noise-axis entry bound for this cell's trials;
    /// `None` when the cell ran under the built-in noise model alone.
    pub noise: Option<String>,
    /// Logical qubit count of the circuit.
    pub qubits: usize,
    /// Logical gate count of the circuit.
    pub gates: usize,
    /// Seed used for this cell's trials.
    pub sim_seed: u64,
    /// Trials simulated (0 = compile only).
    pub trials: u32,
    /// Fraction of trials returning the correct answer; `None` when the
    /// cell was not simulated or has no known correct answer.
    pub success_rate: Option<f64>,
    /// The compiler's analytic reliability estimate.
    pub estimated_reliability: f64,
    /// Execution duration in hardware timeslots.
    pub duration_slots: u32,
    /// One-way SWAPs inserted by the router.
    pub swap_count: usize,
    /// Hardware CNOTs in the executable (SWAPs count as three).
    pub hardware_cnots: usize,
    /// Wall-clock compile time in milliseconds (of the original compile if
    /// this cell hit the compile cache).
    pub compile_ms: f64,
    /// Wall-clock time of the placement pass in microseconds, as recorded
    /// by the compile that produced this cell's executable: a full-compile
    /// cache hit repeats the original compile's value, and a placement-
    /// cache hit records only the (near-zero) lookup time.
    pub place_us: f64,
    /// Whether the compilation was served from the full-compile cache.
    pub cache_hit: bool,
    /// Simulator tier occupancy of this cell's trials (all zero when the
    /// cell was not simulated).
    pub tiers: TierStats,
}

impl CellRecord {
    /// The measured success rate.
    ///
    /// # Panics
    ///
    /// Panics if the cell was not simulated; check
    /// [`CellRecord::success_rate`] when that is possible.
    pub fn success(&self) -> f64 {
        self.success_rate.unwrap_or_else(|| {
            panic!(
                "cell {}/{}/day {} was not simulated",
                self.circuit, self.config, self.day
            )
        })
    }
}

/// The structured result of executing a [`SweepPlan`](crate::SweepPlan):
/// one record per cell plus the run's cache statistics, serializable to a
/// stable JSON document (and parseable back, so CI can validate emitted
/// reports without external dependencies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Machine calibration seed of the run.
    pub machine_seed: u64,
    /// Trials per cell requested by the plan (0 = compile only).
    pub trials: u32,
    /// Cells loaded from a sweep journal instead of being recomputed
    /// (journal provenance; 0 for journal-less runs).
    pub resumed_cells: u64,
    /// Stable hash of the journal path the run streamed to (journal
    /// provenance; 0 for journal-less runs).
    pub journal_hash: u64,
    /// One record per plan cell, in plan order.
    pub cells: Vec<CellRecord>,
    /// Cache behaviour over the whole run.
    pub cache: CacheStats,
    /// Simulator tier occupancy summed over every simulated cell.
    pub tiers: TierStats,
}

impl Report {
    /// The first record matching `(circuit, config, day)` (topology is not
    /// discriminated; use [`Report::cells`] directly for multi-topology
    /// plans).
    pub fn cell(&self, circuit: &str, config: &str, day: usize) -> Option<&CellRecord> {
        self.cells
            .iter()
            .find(|c| c.circuit == circuit && c.config == config && c.day == day)
    }

    /// Like [`Report::cell`] but panicking with a descriptive message —
    /// for figure binaries whose plans are static.
    ///
    /// # Panics
    ///
    /// Panics if no such cell exists.
    pub fn require(&self, circuit: &str, config: &str, day: usize) -> &CellRecord {
        self.cell(circuit, config, day)
            .unwrap_or_else(|| panic!("no cell for {circuit}/{config}/day {day} in report"))
    }

    /// Serializes to the stable JSON format (`nisq-sweep-report/v6`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema\": {},\n",
            json::write_str(REPORT_SCHEMA)
        ));
        out.push_str(&format!("  \"machine_seed\": {},\n", self.machine_seed));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str(&format!("  \"resumed_cells\": {},\n", self.resumed_cells));
        out.push_str(&format!("  \"journal_hash\": {},\n", self.journal_hash));
        out.push_str(&format!(
            "  \"cache\": {{\"compile_requests\": {}, \"compile_hits\": {}, \"place_hits\": {}, \"place_runs\": {}, \"journal_hits\": {}}},\n",
            self.cache.compile_requests,
            self.cache.compile_hits,
            self.cache.place_hits,
            self.cache.place_runs,
            self.cache.journal_hits,
        ));
        out.push_str(&format!("  \"tiers\": {},\n", write_tiers(&self.tiers)));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                write_cell(c),
                if i + 1 == self.cells.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes to a single line of JSON — the framing the serve
    /// protocol uses (one response per line). Identical content to
    /// [`Report::to_json`]: the pretty form's newlines are purely
    /// structural (string content newlines are escaped by the writer), so
    /// stripping them cannot change the document.
    pub fn to_json_line(&self) -> String {
        self.to_json()
            .split('\n')
            .map(str::trim)
            .collect::<Vec<_>>()
            .join("")
    }

    /// A copy with every wall-clock and cache-provenance field zeroed
    /// (`compile_ms`, `place_us`, `cache_hit`, the run's [`CacheStats`],
    /// and the journal provenance `resumed_cells` / `journal_hash`),
    /// leaving only fields that are deterministic functions of the plan.
    /// Two canonicalized reports for the same plan and seeds compare equal
    /// bit for bit no matter which session — warm or cold, daemon or
    /// direct, resumed from a journal or run uninterrupted — produced
    /// them.
    pub fn canonicalized(&self) -> Report {
        let mut report = self.clone();
        report.cache = CacheStats::default();
        report.resumed_cells = 0;
        report.journal_hash = 0;
        for cell in &mut report.cells {
            cell.compile_ms = 0.0;
            cell.place_us = 0.0;
            cell.cache_hit = false;
        }
        report
    }

    /// [`Report::canonicalized`] serialized as a single JSON line — the
    /// comparison form used to prove two runs computed the same science
    /// (e.g. the crash-resume smoke test diffs this output byte for byte).
    pub fn to_json_line_canonical(&self) -> String {
        self.canonicalized().to_json_line()
    }

    /// Parses a document produced by [`Report::to_json`].
    ///
    /// # Errors
    ///
    /// Returns an error for malformed JSON, an unknown schema tag, or
    /// missing fields.
    pub fn from_json(text: &str) -> Result<Report, JsonError> {
        let doc = json::parse(text)?;
        let schema = req_str(&doc, "schema")?;
        if schema != REPORT_SCHEMA {
            return Err(shape_err(format!(
                "unsupported schema {schema:?} (expected {REPORT_SCHEMA:?})"
            )));
        }
        let cache_doc = req(&doc, "cache")?;
        let cache = CacheStats {
            compile_requests: req_u64(cache_doc, "compile_requests")?,
            compile_hits: req_u64(cache_doc, "compile_hits")?,
            place_hits: req_u64(cache_doc, "place_hits")?,
            place_runs: req_u64(cache_doc, "place_runs")?,
            journal_hits: req_u64(cache_doc, "journal_hits")?,
        };
        let mut cells = Vec::new();
        for cell in req(&doc, "cells")?
            .as_array()
            .ok_or_else(|| shape_err("\"cells\" is not an array".to_string()))?
        {
            cells.push(parse_cell(cell)?);
        }
        Ok(Report {
            machine_seed: req_u64(&doc, "machine_seed")?,
            trials: req_u64(&doc, "trials")? as u32,
            resumed_cells: req_u64(&doc, "resumed_cells")?,
            journal_hash: req_u64(&doc, "journal_hash")?,
            cells,
            cache,
            tiers: parse_tiers(req(&doc, "tiers")?)?,
        })
    }
}

/// Serializes one [`CellRecord`] as its inline (single-line) JSON object —
/// shared by [`Report::to_json`] and the sweep journal so a journaled cell
/// round-trips bit-exactly into the report it resumes into.
pub(crate) fn write_cell(c: &CellRecord) -> String {
    let success = match c.success_rate {
        Some(rate) => format!("{rate}"),
        None => "null".to_string(),
    };
    let noise = match &c.noise {
        Some(label) => json::write_str(label),
        None => "null".to_string(),
    };
    format!(
        "{{\"circuit\": {}, \"config\": {}, \"topology\": {}, \"day\": {}, \
         \"noise\": {}, \
         \"qubits\": {}, \"gates\": {}, \"sim_seed\": {}, \"trials\": {}, \
         \"success_rate\": {}, \"estimated_reliability\": {}, \"duration_slots\": {}, \
         \"swap_count\": {}, \"hardware_cnots\": {}, \"compile_ms\": {:.3}, \
         \"place_us\": {:.3}, \"cache_hit\": {}, \"tiers\": {}}}",
        json::write_str(&c.circuit),
        json::write_str(&c.config),
        json::write_str(&c.topology),
        c.day,
        noise,
        c.qubits,
        c.gates,
        c.sim_seed,
        c.trials,
        success,
        c.estimated_reliability,
        c.duration_slots,
        c.swap_count,
        c.hardware_cnots,
        c.compile_ms,
        c.place_us,
        c.cache_hit,
        write_tiers(&c.tiers),
    )
}

/// Parses one cell object of a report (or journal record) — the inverse
/// of [`write_cell`].
pub(crate) fn parse_cell(cell: &Value) -> Result<CellRecord, JsonError> {
    Ok(CellRecord {
        circuit: req_str(cell, "circuit")?.to_string(),
        config: req_str(cell, "config")?.to_string(),
        topology: req_str(cell, "topology")?.to_string(),
        day: req_u64(cell, "day")? as usize,
        noise: match req(cell, "noise")? {
            Value::Null => None,
            v => Some(
                v.as_str()
                    .ok_or_else(|| shape_err("non-string noise label".to_string()))?
                    .to_string(),
            ),
        },
        qubits: req_u64(cell, "qubits")? as usize,
        gates: req_u64(cell, "gates")? as usize,
        sim_seed: req_u64(cell, "sim_seed")?,
        trials: req_u64(cell, "trials")? as u32,
        success_rate: match req(cell, "success_rate")? {
            Value::Null => None,
            v => Some(
                v.as_f64()
                    .ok_or_else(|| shape_err("non-numeric success_rate".to_string()))?,
            ),
        },
        estimated_reliability: req_f64(cell, "estimated_reliability")?,
        duration_slots: req_u64(cell, "duration_slots")? as u32,
        swap_count: req_u64(cell, "swap_count")? as usize,
        hardware_cnots: req_u64(cell, "hardware_cnots")? as usize,
        compile_ms: req_f64(cell, "compile_ms")?,
        place_us: req_f64(cell, "place_us")?,
        cache_hit: req(cell, "cache_hit")?
            .as_bool()
            .ok_or_else(|| shape_err("non-boolean cache_hit".to_string()))?,
        tiers: parse_tiers(req(cell, "tiers")?)?,
    })
}

/// Serializes a [`TierStats`] as its inline JSON object.
fn write_tiers(tiers: &TierStats) -> String {
    format!(
        "{{\"backend\": \"{}\", \"error_free\": {}, \"pauli_prop\": {}, \"checkpointed\": {}, \
         \"full_replay\": {}, \"memo_hits\": {}, \"memo_misses\": {}}}",
        tiers.backend.name(),
        tiers.error_free,
        tiers.pauli_prop,
        tiers.checkpointed,
        tiers.full_replay,
        tiers.memo_hits,
        tiers.memo_misses,
    )
}

/// Parses a [`TierStats`] from its JSON object.
fn parse_tiers(doc: &Value) -> Result<TierStats, JsonError> {
    let backend_name = req_str(doc, "backend")?;
    Ok(TierStats {
        backend: BackendTag::parse(backend_name)
            .ok_or_else(|| shape_err(format!("unknown backend tag {backend_name:?}")))?,
        error_free: req_u64(doc, "error_free")?,
        pauli_prop: req_u64(doc, "pauli_prop")?,
        checkpointed: req_u64(doc, "checkpointed")?,
        full_replay: req_u64(doc, "full_replay")?,
        memo_hits: req_u64(doc, "memo_hits")?,
        memo_misses: req_u64(doc, "memo_misses")?,
    })
}

fn shape_err(message: String) -> JsonError {
    JsonError { message, offset: 0 }
}

fn req<'a>(doc: &'a Value, key: &str) -> Result<&'a Value, JsonError> {
    doc.get(key)
        .ok_or_else(|| shape_err(format!("missing field {key:?}")))
}

fn req_str<'a>(doc: &'a Value, key: &str) -> Result<&'a str, JsonError> {
    req(doc, key)?
        .as_str()
        .ok_or_else(|| shape_err(format!("field {key:?} is not a string")))
}

fn req_u64(doc: &Value, key: &str) -> Result<u64, JsonError> {
    req(doc, key)?
        .as_u64()
        .ok_or_else(|| shape_err(format!("field {key:?} is not an unsigned integer")))
}

fn req_f64(doc: &Value, key: &str) -> Result<f64, JsonError> {
    req(doc, key)?
        .as_f64()
        .ok_or_else(|| shape_err(format!("field {key:?} is not a number")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            machine_seed: 2019,
            trials: 64,
            resumed_cells: 1,
            journal_hash: 0x8422_2325_cbf2_9ce4,
            cells: vec![
                CellRecord {
                    circuit: "BV4".into(),
                    config: "Qiskit".into(),
                    topology: "IBMQ16".into(),
                    day: 0,
                    noise: Some("ad-measure".into()),
                    qubits: 4,
                    gates: 11,
                    sim_seed: 42,
                    trials: 64,
                    success_rate: Some(0.59375),
                    estimated_reliability: 0.6123456789,
                    duration_slots: 40,
                    swap_count: 1,
                    hardware_cnots: 9,
                    compile_ms: 1.25,
                    place_us: 310.0,
                    cache_hit: false,
                    tiers: TierStats {
                        backend: BackendTag::Tableau,
                        error_free: 40,
                        pauli_prop: 12,
                        checkpointed: 8,
                        full_replay: 4,
                        memo_hits: 3,
                        memo_misses: 2,
                    },
                },
                CellRecord {
                    circuit: "BV4".into(),
                    config: "GreedyE*".into(),
                    topology: "IBMQ16".into(),
                    day: 3,
                    noise: None,
                    qubits: 4,
                    gates: 11,
                    sim_seed: 43,
                    trials: 0,
                    success_rate: None,
                    estimated_reliability: 0.7,
                    duration_slots: 30,
                    swap_count: 0,
                    hardware_cnots: 3,
                    compile_ms: 0.5,
                    place_us: 120.5,
                    cache_hit: true,
                    tiers: TierStats::default(),
                },
            ],
            cache: CacheStats {
                compile_requests: 2,
                compile_hits: 1,
                place_hits: 1,
                place_runs: 1,
                journal_hits: 1,
            },
            tiers: TierStats {
                backend: BackendTag::Tableau,
                error_free: 40,
                pauli_prop: 12,
                checkpointed: 8,
                full_replay: 4,
                memo_hits: 3,
                memo_misses: 2,
            },
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn json_line_is_single_line_and_equivalent() {
        let report = sample();
        let line = report.to_json_line();
        assert!(!line.contains('\n'));
        assert_eq!(Report::from_json(&line).unwrap(), report);
        // Content newlines survive framing because the writer escapes them.
        let mut tricky = report;
        tricky.cells[0].circuit = "multi\nline \"name\"".into();
        let line = tricky.to_json_line();
        assert!(!line.contains('\n'));
        assert_eq!(Report::from_json(&line).unwrap(), tricky);
    }

    #[test]
    fn canonicalized_zeroes_provenance_but_keeps_results() {
        let canon = sample().canonicalized();
        assert_eq!(canon.cache, CacheStats::default());
        assert_eq!(canon.resumed_cells, 0);
        assert_eq!(canon.journal_hash, 0);
        for cell in &canon.cells {
            assert_eq!(cell.compile_ms, 0.0);
            assert_eq!(cell.place_us, 0.0);
            assert!(!cell.cache_hit);
        }
        assert_eq!(canon.cells[0].success_rate, Some(0.59375));
        assert_eq!(canon.tiers, sample().tiers);
        // A warm-cache rerun differs only in provenance fields, so its
        // canonical form is identical.
        let mut warm = sample();
        warm.cells[0].cache_hit = true;
        warm.cells[0].compile_ms = 0.001;
        warm.cache.compile_hits = 2;
        assert_eq!(warm.canonicalized(), sample().canonicalized());
        // So is a journal-resumed rerun: the journal provenance is zeroed
        // with the rest.
        let mut resumed = sample();
        resumed.resumed_cells = 2;
        resumed.journal_hash = 77;
        resumed.cache.journal_hits = 2;
        assert_eq!(resumed.canonicalized(), sample().canonicalized());
    }

    #[test]
    fn canonical_json_line_round_trips_and_matches_canonicalized() {
        // The smoke script's comparison form: a single line that parses
        // back to exactly `canonicalized()`, so v6 documents (journal
        // provenance included) stay parseable after canonicalization.
        let line = sample().to_json_line_canonical();
        assert!(!line.contains('\n'));
        let parsed = Report::from_json(&line).unwrap();
        assert_eq!(parsed, sample().canonicalized());
        assert_eq!(parsed.to_json_line_canonical(), line);
    }

    #[test]
    fn lookup_finds_cells_by_coordinates() {
        let report = sample();
        assert_eq!(report.require("BV4", "Qiskit", 0).swap_count, 1);
        assert!(report.cell("BV4", "Qiskit", 5).is_none());
        assert!((report.require("BV4", "Qiskit", 0).success() - 0.59375).abs() < 1e-12);
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_shapes() {
        assert!(Report::from_json("{}").is_err());
        assert!(Report::from_json("{\"schema\": \"other/v9\"}").is_err());
        assert!(Report::from_json("not json").is_err());
        // Pre-journal documents carry the v5 tag and are rejected outright
        // rather than silently defaulted.
        let v5 = sample()
            .to_json()
            .replace("nisq-sweep-report/v6", "nisq-sweep-report/v5");
        assert!(Report::from_json(&v5).is_err());
        // A v6-tagged document with an unknown backend name is malformed.
        let bad_backend = sample().to_json().replace("\"tableau\"", "\"sparse\"");
        assert!(Report::from_json(&bad_backend).is_err());
        // ...and one missing the per-cell noise field is malformed too.
        let no_noise = sample()
            .to_json()
            .replace("\"noise\": \"ad-measure\", ", "")
            .replace("\"noise\": null, ", "");
        assert!(Report::from_json(&no_noise).is_err());
        // ...as is one missing the v6 journal provenance.
        let no_journal = sample().to_json().replace("  \"resumed_cells\": 1,\n", "");
        assert!(Report::from_json(&no_journal).is_err());
    }

    #[test]
    fn cache_stats_derive_runs_and_hits() {
        let cache = sample().cache;
        assert_eq!(cache.compile_runs(), 1);
        assert_eq!(cache.total_hits(), 2);
    }

    #[test]
    fn tier_stats_total_and_merge() {
        let mut totals = TierStats::default();
        for cell in &sample().cells {
            totals.merge(&cell.tiers);
        }
        assert_eq!(totals, sample().tiers);
        assert_eq!(totals.total(), 64);
    }

    #[test]
    fn backend_tags_merge_to_mixed_only_across_backends() {
        let dense = TierStats {
            backend: BackendTag::Dense,
            error_free: 10,
            ..TierStats::default()
        };
        let tableau = TierStats {
            backend: BackendTag::Tableau,
            error_free: 5,
            ..TierStats::default()
        };
        // Empty totals adopt the first non-empty operand's tag.
        let mut totals = TierStats::default();
        totals.merge(&tableau);
        assert_eq!(totals.backend, BackendTag::Tableau);
        // Same backend stays pure; a different one degrades to Mixed.
        totals.merge(&tableau);
        assert_eq!(totals.backend, BackendTag::Tableau);
        totals.merge(&dense);
        assert_eq!(totals.backend, BackendTag::Mixed);
        // Merging an empty cell (compile-only) never moves the tag.
        totals = dense;
        totals.merge(&TierStats::default());
        assert_eq!(totals.backend, BackendTag::Dense);
        assert_eq!(totals.total(), 10);
    }

    #[test]
    fn tiers_round_trip_through_json() {
        let report = sample();
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.tiers, report.tiers);
        assert_eq!(parsed.cells[0].tiers.backend, BackendTag::Tableau);
        assert_eq!(parsed.cells[0].tiers.error_free, 40);
        assert_eq!(parsed.cells[0].tiers.pauli_prop, 12);
        assert_eq!(parsed.cells[0].tiers.memo_hits, 3);
        assert_eq!(parsed.cells[1].tiers, TierStats::default());
        // A document missing the tier fields (e.g. a v2-shaped object) is
        // rejected, not defaulted.
        let stripped = report.to_json().replace(
            "\"pauli_prop\": 12, \"checkpointed\": 8, \"full_replay\": 4, \
             \"memo_hits\": 3, \"memo_misses\": 2",
            "\"checkpointed\": 8, \"full_replay\": 4",
        );
        assert!(Report::from_json(&stripped).is_err());
    }
}
