//! # nisq-exp — declarative experiment API
//!
//! The paper's evaluation is one large cross-product — benchmarks ×
//! Table-1 configurations × calibration days × trials. This crate turns
//! that shape into three first-class types:
//!
//! * [`SweepPlan`] — a declarative builder describing a workload (circuits
//!   × configs × days × topologies × simulation settings, with
//!   deterministic per-cell seeds);
//! * [`Session`] — a long-lived executor owning machine snapshots, a keyed
//!   full-compile cache, the shared placement cache, and a rayon-parallel
//!   batch simulator;
//! * [`Report`] — a structured, serializable record set (per-cell success
//!   rate, reliability estimate, swap/slot counts, pass timings, cache
//!   statistics) with a stable JSON format and a parser for validation.
//!
//! Every figure and table binary of the evaluation, the `nisqc sweep`
//! subcommand and the examples are thin declarations over this API.
//!
//! # Example
//!
//! ```
//! use nisq_exp::{Session, SweepPlan};
//! use nisq_core::CompilerConfig;
//! use nisq_ir::Benchmark;
//!
//! let plan = SweepPlan::new()
//!     .benchmark(Benchmark::Bv4)
//!     .config("Qiskit", CompilerConfig::qiskit())
//!     .config("R-SMT*", CompilerConfig::r_smt_star(0.5))
//!     .days(0..2)
//!     .with_trials(128)
//!     .per_day_sim_seed(100);
//!
//! let mut session = Session::new();
//! let report = session.run(&plan).unwrap();
//! assert_eq!(report.cells.len(), 4);
//! let parsed = nisq_exp::Report::from_json(&report.to_json()).unwrap();
//! assert_eq!(parsed, report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The JSON module moved to `nisq-noise` (the spec parser lives below the
// sim crate in the dependency order); the re-export keeps every
// `nisq_exp::json::` path working.
pub use nisq_noise::json;
// The noise axis on `SweepPlan` takes a `NoiseSpec`; re-exporting it lets
// plan producers (CLI, serve) avoid a direct `nisq-noise` dependency.
pub use nisq_noise::{NoiseError, NoiseSpec};

mod journal;
pub mod names;
mod plan;
mod report;
mod session;

pub use journal::{
    fnv64, CellKey, CompactInfo, InspectInfo, Journal, JournalError, RecoveryInfo, JOURNAL_SCHEMA,
};
pub use plan::{Cell, CircuitSpec, MachineScope, SeedMode, SweepPlan, DEFAULT_MACHINE_SEED};
pub use report::{BackendTag, CacheStats, CellRecord, Report, TierStats, REPORT_SCHEMA};
pub use session::{RunControl, RunOutcome, Session};
