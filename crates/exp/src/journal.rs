//! Crash-safe write-ahead journaling for sweep execution.
//!
//! A journal is an append-only file of length-and-checksum-framed JSON
//! records. Before a cell executes, an *intent* record is appended; after
//! it completes, the full per-cell result (the report's cell schema) is
//! appended and fsync'd, keyed by the cell's content fingerprint
//! `(circuit_fp, machine_fp, config_fp, day, noise, sim_seed, trials)`.
//! Because every cell is a deterministic function of the plan and its
//! seeds, a run resumed from a journal is *bit-identical* (canonically) to
//! an uninterrupted run: completed cells are replayed from the journal,
//! the rest recompute.
//!
//! # Framing
//!
//! One record per line:
//!
//! ```text
//! J1 <payload-bytes> <fnv1a64-hex16> <single-line JSON payload>\n
//! ```
//!
//! Recovery scans from the start; the first record must be a `header`
//! carrying the journal schema tag (anything else means the file is not a
//! journal and is left untouched). The first torn or checksum-corrupt
//! record truncates the file at that record's byte offset — a crash mid-
//! append loses at most the record being written, never a completed one.
//!
//! # Degradation
//!
//! Append failures after a journal is open (disk full, I/O error, an
//! injected fault) never fail the sweep: the journal degrades to a no-op
//! sink, the run continues journal-less, and the caller surfaces the
//! reason from [`Journal::degraded`]. A report is never lost to a
//! journaling problem.

use crate::json::{self, Value};
use crate::report::{self, CellRecord};
use rustc_hash::{FxHashMap, FxHashSet};
use std::fmt;
use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Version tag carried by every journal's header record.
pub const JOURNAL_SCHEMA: &str = "nisq-sweep-journal/v1";

/// 64-bit FNV-1a — the journal's record checksum (also used to derive
/// stable per-path and per-request hashes; not cryptographic).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The content fingerprint identifying one sweep cell across processes.
///
/// Two cells with equal keys compute bit-identical results: the circuit,
/// machine and compiler-config fingerprints pin the compile, and the day /
/// noise label / seed / trial count pin the simulation stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Circuit content fingerprint.
    pub circuit_fp: u64,
    /// Machine snapshot fingerprint (topology + calibration day + seed).
    pub machine_fp: u64,
    /// Compiler configuration fingerprint.
    pub config_fp: u64,
    /// Calibration day index.
    pub day: usize,
    /// Noise-axis label bound for the cell (`None` = built-in noise only).
    pub noise: Option<String>,
    /// Simulation seed of the cell's trial stream.
    pub sim_seed: u64,
    /// Trials per cell.
    pub trials: u32,
}

/// Why a journal could not be opened or recovered.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O failure opening or reading the journal file.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file exists but does not begin with a valid journal header —
    /// it is refused (and never truncated) rather than overwritten.
    NotAJournal {
        /// The offending path.
        path: PathBuf,
        /// What disqualified the file.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal {}: {source}", path.display())
            }
            JournalError::NotAJournal { path, detail } => {
                write!(
                    f,
                    "journal {}: not a sweep journal ({detail})",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// What recovery found in an existing journal file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Completed cell records loaded (after last-write-wins dedup).
    pub completed_cells: usize,
    /// Trailing bytes truncated because of a torn or corrupt record.
    pub truncated_bytes: u64,
    /// Intent records with no matching completion (cells that were
    /// executing when the previous process died).
    pub orphan_intents: usize,
}

/// A read-only summary of a journal file — what `nisqc journal inspect`
/// prints. Produced by [`Journal::inspect`] without truncating or
/// otherwise modifying the file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InspectInfo {
    /// Machine seed recorded in the header, when the header carries one.
    pub machine_seed: Option<u64>,
    /// Trial count recorded in the header, when the header carries one.
    pub trials: Option<u64>,
    /// Valid records of any kind (header included).
    pub records: usize,
    /// Completed-cell records, duplicates included.
    pub cell_records: usize,
    /// Distinct cell keys after last-write-wins dedup.
    pub unique_cells: usize,
    /// Write-ahead intent records, matched and orphaned alike.
    pub intent_records: usize,
    /// Intents with no matching completion (cells in flight at a crash).
    pub orphan_intents: usize,
    /// Records compaction would drop: intents, superseded duplicates and
    /// redundant headers.
    pub dead_records: usize,
    /// Byte offset of the first torn or checksum-corrupt record, when the
    /// file does not scan clean to its end.
    pub torn_tail_offset: Option<u64>,
    /// Total file size in bytes.
    pub file_bytes: u64,
}

/// What [`Journal::compact`] did to a journal file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactInfo {
    /// Distinct cell records the compacted journal keeps.
    pub kept_cells: usize,
    /// Records dropped (intents, superseded duplicates, torn tail).
    pub dropped_records: usize,
    /// File size before compaction.
    pub bytes_before: u64,
    /// File size after compaction.
    pub bytes_after: u64,
}

/// A write-ahead sweep journal: completed-cell lookup plus durable
/// appends. See the module docs for the format and recovery semantics.
pub struct Journal {
    path: PathBuf,
    file: Option<std::fs::File>,
    completed: FxHashMap<CellKey, CellRecord>,
    /// Distinct keys in first-completion order, so compaction rewrites
    /// deterministically.
    order: Vec<CellKey>,
    recovery: RecoveryInfo,
    degraded: Option<String>,
    appends: u64,
    machine_seed: u64,
    trials: u32,
    /// Records on disk a compaction would drop: every intent whose cell
    /// completed, superseded duplicate cells, and whatever recovery found
    /// already dead. The serve daemon compacts when this crosses its
    /// threshold.
    dead_records: u64,
    /// Intents appended whose completion has not landed yet.
    live_intents: u64,
    #[cfg(feature = "fault-injection")]
    fail_appends_after: Option<u64>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("completed", &self.completed.len())
            .field("degraded", &self.degraded)
            .finish()
    }
}

impl Journal {
    /// Starts a fresh journal at `path`, truncating any existing file and
    /// writing the header record. `machine_seed` and `trials` are recorded
    /// in the header for provenance.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the file cannot be created.
    pub fn create(path: &Path, machine_seed: u64, trials: u32) -> Result<Journal, JournalError> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|source| JournalError::Io {
                path: path.to_path_buf(),
                source,
            })?;
        let mut journal = Journal {
            path: path.to_path_buf(),
            file: Some(file),
            completed: FxHashMap::default(),
            order: Vec::new(),
            recovery: RecoveryInfo::default(),
            degraded: None,
            appends: 0,
            machine_seed,
            trials,
            dead_records: 0,
            live_intents: 0,
            #[cfg(feature = "fault-injection")]
            fail_appends_after: None,
        };
        journal.append_payload(&header_payload(machine_seed, trials), true);
        Ok(journal)
    }

    /// Opens `path` for resumption: recovers every completed cell record
    /// (last write wins for duplicate keys), truncates the file after the
    /// first torn or checksum-corrupt record, and positions the journal
    /// for appending. A missing or empty file behaves like
    /// [`Journal::create`]. Records from a different plan are harmless —
    /// their keys simply never match.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on read/open failures; [`JournalError::NotAJournal`]
    /// when the file exists but does not begin with a journal header (the
    /// file is left untouched in that case).
    pub fn resume(path: &Path, machine_seed: u64, trials: u32) -> Result<Journal, JournalError> {
        let io_err = |source: std::io::Error| JournalError::Io {
            path: path.to_path_buf(),
            source,
        };
        let buf = match std::fs::read(path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(e)),
        };
        let scan = scan_records(path, &buf)?;
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err)?;
        if (scan.valid_end as usize) < buf.len() {
            file.set_len(scan.valid_end).map_err(io_err)?;
        }
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
        // Everything on disk that a compaction would drop is already dead:
        // all records except the leading header and one per distinct key.
        let dead = scan.records.saturating_sub(1 + scan.completed.len()) as u64;
        let mut journal = Journal {
            path: path.to_path_buf(),
            file: Some(file),
            completed: scan.completed,
            order: scan.order,
            recovery: RecoveryInfo {
                completed_cells: 0,
                truncated_bytes: buf.len() as u64 - scan.valid_end,
                orphan_intents: scan.orphan_intents,
            },
            degraded: None,
            appends: 0,
            machine_seed,
            trials,
            dead_records: dead,
            live_intents: 0,
            #[cfg(feature = "fault-injection")]
            fail_appends_after: None,
        };
        journal.recovery.completed_cells = journal.completed.len();
        if scan.valid_end == 0 {
            journal.append_payload(&header_payload(machine_seed, trials), true);
        }
        Ok(journal)
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A stable 64-bit hash of the journal path — the `journal_hash`
    /// provenance field of reports produced through this journal.
    pub fn path_hash(&self) -> u64 {
        fnv64(self.path.to_string_lossy().as_bytes())
    }

    /// What recovery found when this journal was opened with
    /// [`Journal::resume`] (all zero for a fresh journal).
    pub fn recovery(&self) -> RecoveryInfo {
        self.recovery
    }

    /// Completed cell records currently known (recovered plus appended).
    pub fn completed_cells(&self) -> usize {
        self.completed.len()
    }

    /// Why the journal stopped persisting, if an append failed. A degraded
    /// journal keeps serving lookups; it only stops writing.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// The completed record for `key`, if the journal holds one.
    pub fn lookup(&self, key: &CellKey) -> Option<&CellRecord> {
        self.completed.get(key)
    }

    /// Appends the write-ahead intent record for `key` (flushed, not
    /// fsync'd — an intent marks work in flight, not work to preserve).
    pub fn append_intent(&mut self, key: &CellKey) {
        let payload = format!("{{\"kind\": \"intent\", \"key\": {}}}", write_key(key));
        self.append_payload(&payload, false);
        self.live_intents += 1;
    }

    /// Appends (and fsyncs) the completed record for `key`, and makes it
    /// visible to [`Journal::lookup`].
    pub fn append_cell(&mut self, key: &CellKey, record: &CellRecord) {
        let payload = format!(
            "{{\"kind\": \"cell\", \"key\": {}, \"cell\": {}}}",
            write_key(key),
            report::write_cell(record),
        );
        self.append_payload(&payload, true);
        // The completion kills its write-ahead intent; overwriting an
        // existing key kills the superseded cell record.
        if self.live_intents > 0 {
            self.live_intents -= 1;
            self.dead_records += 1;
        }
        if self.completed.insert(key.clone(), record.clone()).is_some() {
            self.dead_records += 1;
        } else {
            self.order.push(key.clone());
        }
    }

    /// Records on disk that a compaction would drop: completed intents,
    /// superseded duplicate cells, and dead weight found at recovery.
    pub fn dead_records(&self) -> u64 {
        self.dead_records
    }

    /// Copies every completed cell of the journal at `other` that this
    /// journal does not already hold into this journal (appended and
    /// fsync'd like freshly computed cells) — cross-run reuse keyed purely
    /// by cell fingerprints. Records for other plans are harmless: their
    /// keys never match a lookup. Returns how many cells were absorbed.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if `other` cannot be read,
    /// [`JournalError::NotAJournal`] if it is not a sweep journal. This
    /// journal is unchanged on error.
    pub fn absorb(&mut self, other: &Path) -> Result<usize, JournalError> {
        let buf = std::fs::read(other).map_err(|source| JournalError::Io {
            path: other.to_path_buf(),
            source,
        })?;
        let scan = scan_records(other, &buf)?;
        let mut absorbed = 0;
        for key in &scan.order {
            if self.completed.contains_key(key) {
                continue;
            }
            let record = scan.completed.get(key).expect("order keys are completed");
            self.append_cell(key, record);
            absorbed += 1;
        }
        Ok(absorbed)
    }

    /// Summarizes the journal file at `path` without modifying it — no
    /// truncation, no header rewrite, nothing. The torn-tail offset (if
    /// any) reports where [`Journal::resume`] would truncate.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the file cannot be read,
    /// [`JournalError::NotAJournal`] if it is not a sweep journal.
    pub fn inspect(path: &Path) -> Result<InspectInfo, JournalError> {
        let buf = std::fs::read(path).map_err(|source| JournalError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let scan = scan_records(path, &buf)?;
        Ok(InspectInfo {
            machine_seed: scan.header_machine_seed,
            trials: scan.header_trials,
            records: scan.records,
            cell_records: scan.cell_records,
            unique_cells: scan.completed.len(),
            intent_records: scan.intent_records,
            orphan_intents: scan.orphan_intents,
            dead_records: scan.records.saturating_sub(1 + scan.completed.len()),
            torn_tail_offset: ((scan.valid_end as usize) < buf.len()).then_some(scan.valid_end),
            file_bytes: buf.len() as u64,
        })
    }

    /// Rewrites the journal file at `path` keeping only the header and the
    /// last-write-wins record per cell key — dropping intents, superseded
    /// duplicates and any torn tail. The rewrite is atomic: a sibling
    /// temporary file is written, fsync'd, then renamed over the original,
    /// so a crash mid-compaction leaves either the old or the new journal,
    /// never a torn hybrid.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on read/write/rename failures,
    /// [`JournalError::NotAJournal`] if the file is not a sweep journal.
    pub fn compact(path: &Path) -> Result<CompactInfo, JournalError> {
        let io_err = |source: std::io::Error| JournalError::Io {
            path: path.to_path_buf(),
            source,
        };
        let buf = std::fs::read(path).map_err(io_err)?;
        let scan = scan_records(path, &buf)?;
        let bytes_after = write_compacted(
            path,
            scan.header_machine_seed.unwrap_or(0),
            scan.header_trials.unwrap_or(0) as u32,
            scan.order.iter().map(|key| {
                let record = scan.completed.get(key).expect("order keys are completed");
                (key, record)
            }),
        )
        .map_err(io_err)?;
        Ok(CompactInfo {
            kept_cells: scan.completed.len(),
            dropped_records: scan.records.saturating_sub(1 + scan.completed.len()),
            bytes_before: buf.len() as u64,
            bytes_after,
        })
    }

    /// Compacts this open journal's file in place (same rewrite-and-rename
    /// as [`Journal::compact`]) and re-opens it for appending. Lookups and
    /// recovery info are unaffected. Returns `false` — without failing the
    /// run — when the journal is degraded or the rewrite fails; the old
    /// file is left as it was in that case.
    pub fn compact_in_place(&mut self) -> bool {
        if self.file.is_none() {
            return false;
        }
        let written = write_compacted(
            &self.path,
            self.machine_seed,
            self.trials,
            self.order.iter().map(|key| {
                let record = self.completed.get(key).expect("order keys are completed");
                (key, record)
            }),
        );
        if written.is_err() {
            // Compaction is an optimization: failure leaves the journal
            // usable (the original file was replaced only on success).
            return false;
        }
        let reopened = OpenOptions::new()
            .write(true)
            .open(&self.path)
            .and_then(|mut f| f.seek(SeekFrom::End(0)).map(|_| f));
        match reopened {
            Ok(file) => {
                self.file = Some(file);
                self.dead_records = 0;
                self.live_intents = 0;
                true
            }
            Err(e) => {
                self.degrade(format!("reopen after compaction failed: {e}"));
                false
            }
        }
    }

    /// Makes every append after the next `appends` ones fail with a
    /// simulated out-of-space error, exercising the degradation path
    /// (appends are counted from journal open, header included).
    #[cfg(feature = "fault-injection")]
    pub fn fail_appends_after(&mut self, appends: u64) {
        self.fail_appends_after = Some(appends);
    }

    fn append_payload(&mut self, payload: &str, sync: bool) {
        if self.file.is_none() {
            return;
        }
        #[cfg(feature = "fault-injection")]
        if let Some(limit) = self.fail_appends_after {
            if self.appends >= limit {
                self.degrade("injected append fault: no space left on device".to_string());
                return;
            }
        }
        self.appends += 1;
        let line = frame(payload);
        let result = {
            let file = self.file.as_mut().expect("checked above");
            file.write_all(line.as_bytes()).and_then(|()| {
                if sync {
                    file.sync_data()
                } else {
                    file.flush()
                }
            })
        };
        if let Err(e) = result {
            self.degrade(format!("append failed: {e}"));
        }
    }

    fn degrade(&mut self, reason: String) {
        self.file = None;
        self.degraded = Some(reason);
    }
}

/// Writes a compacted journal (header plus one record per key, in the
/// given order) to a sibling temporary file, fsyncs it, and atomically
/// renames it over `path`. Returns the compacted file's byte length.
fn write_compacted<'a>(
    path: &Path,
    machine_seed: u64,
    trials: u32,
    cells: impl Iterator<Item = (&'a CellKey, &'a CellRecord)>,
) -> std::io::Result<u64> {
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".compact-tmp");
    let tmp = PathBuf::from(tmp_name);
    let mut out = String::new();
    out.push_str(&frame(&header_payload(machine_seed, trials)));
    for (key, record) in cells {
        let payload = format!(
            "{{\"kind\": \"cell\", \"key\": {}, \"cell\": {}}}",
            write_key(key),
            report::write_cell(record),
        );
        out.push_str(&frame(&payload));
    }
    let result = (|| {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(out.as_bytes())?;
        file.sync_data()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = result {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(out.len() as u64)
}

/// Frames a payload as one journal record line.
fn frame(payload: &str) -> String {
    format!(
        "J1 {} {:016x} {payload}\n",
        payload.len(),
        fnv64(payload.as_bytes())
    )
}

fn header_payload(machine_seed: u64, trials: u32) -> String {
    format!(
        "{{\"kind\": \"header\", \"schema\": {}, \"machine_seed\": {machine_seed}, \"trials\": {trials}}}",
        json::write_str(JOURNAL_SCHEMA)
    )
}

fn write_key(key: &CellKey) -> String {
    let noise = match &key.noise {
        Some(label) => json::write_str(label),
        None => "null".to_string(),
    };
    format!(
        "{{\"circuit_fp\": {}, \"machine_fp\": {}, \"config_fp\": {}, \"day\": {}, \
         \"noise\": {noise}, \"sim_seed\": {}, \"trials\": {}}}",
        key.circuit_fp, key.machine_fp, key.config_fp, key.day, key.sim_seed, key.trials,
    )
}

fn parse_key(doc: &Value) -> Result<CellKey, String> {
    let int = |field: &str| {
        doc.get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("key field {field:?} missing or not an unsigned integer"))
    };
    Ok(CellKey {
        circuit_fp: int("circuit_fp")?,
        machine_fp: int("machine_fp")?,
        config_fp: int("config_fp")?,
        day: int("day")? as usize,
        noise: match doc.get("noise") {
            Some(Value::Null) | None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| "key field \"noise\" is not a string".to_string())?
                    .to_string(),
            ),
        },
        sim_seed: int("sim_seed")?,
        trials: int("trials")? as u32,
    })
}

/// One record successfully parsed out of a journal file.
enum Record {
    Header {
        schema: Option<String>,
        machine_seed: Option<u64>,
        trials: Option<u64>,
    },
    Intent(CellKey),
    Cell(CellKey, Box<CellRecord>),
}

/// Parses one framed line (without its trailing newline).
fn parse_record(line: &[u8]) -> Result<Record, String> {
    let text = std::str::from_utf8(line).map_err(|_| "record is not UTF-8".to_string())?;
    let rest = text
        .strip_prefix("J1 ")
        .ok_or_else(|| "missing J1 record magic".to_string())?;
    let (len_text, rest) = rest
        .split_once(' ')
        .ok_or_else(|| "missing length field".to_string())?;
    let (sum_text, payload) = rest
        .split_once(' ')
        .ok_or_else(|| "missing checksum field".to_string())?;
    let length: usize = len_text
        .parse()
        .map_err(|_| format!("bad length field {len_text:?}"))?;
    if payload.len() != length {
        return Err(format!(
            "length mismatch: framed {length}, found {} (torn record)",
            payload.len()
        ));
    }
    let framed_sum = u64::from_str_radix(sum_text, 16)
        .map_err(|_| format!("bad checksum field {sum_text:?}"))?;
    let actual_sum = fnv64(payload.as_bytes());
    if framed_sum != actual_sum {
        return Err(format!(
            "checksum mismatch: framed {framed_sum:016x}, computed {actual_sum:016x}"
        ));
    }
    let doc = json::parse(payload).map_err(|e| format!("payload is not JSON: {e}"))?;
    match doc.get("kind").and_then(Value::as_str) {
        Some("header") => Ok(Record::Header {
            schema: doc
                .get("schema")
                .and_then(Value::as_str)
                .map(str::to_string),
            machine_seed: doc.get("machine_seed").and_then(Value::as_u64),
            trials: doc.get("trials").and_then(Value::as_u64),
        }),
        Some("intent") => {
            let key = doc
                .get("key")
                .ok_or_else(|| "intent has no key".to_string())?;
            Ok(Record::Intent(parse_key(key)?))
        }
        Some("cell") => {
            let key = doc
                .get("key")
                .ok_or_else(|| "cell has no key".to_string())?;
            let cell = doc
                .get("cell")
                .ok_or_else(|| "cell record has no cell body".to_string())?;
            let record = report::parse_cell(cell).map_err(|e| format!("bad cell body: {e}"))?;
            Ok(Record::Cell(parse_key(key)?, Box::new(record)))
        }
        other => Err(format!("unknown record kind {other:?}")),
    }
}

struct Scan {
    completed: FxHashMap<CellKey, CellRecord>,
    /// Distinct keys in first-completion order (compaction order).
    order: Vec<CellKey>,
    valid_end: u64,
    orphan_intents: usize,
    records: usize,
    cell_records: usize,
    intent_records: usize,
    header_machine_seed: Option<u64>,
    header_trials: Option<u64>,
}

/// Scans a journal file's bytes: validates the header, loads completed
/// records, and finds the byte offset after the last valid record.
fn scan_records(path: &Path, buf: &[u8]) -> Result<Scan, JournalError> {
    let mut scan = Scan {
        completed: FxHashMap::default(),
        order: Vec::new(),
        valid_end: 0,
        orphan_intents: 0,
        records: 0,
        cell_records: 0,
        intent_records: 0,
        header_machine_seed: None,
        header_trials: None,
    };
    if buf.is_empty() {
        return Ok(scan);
    }
    let not_a_journal = |detail: String| JournalError::NotAJournal {
        path: path.to_path_buf(),
        detail,
    };
    // A non-empty file that does not even start with the record magic is
    // some other file — refuse rather than truncate it to zero.
    if !buf.starts_with(b"J1 ") {
        return Err(not_a_journal("no J1 record magic at offset 0".to_string()));
    }
    let mut intents: FxHashSet<CellKey> = FxHashSet::default();
    let mut offset = 0usize;
    let mut saw_header = false;
    while offset < buf.len() {
        let Some(newline) = buf[offset..].iter().position(|&b| b == b'\n') else {
            break; // torn tail: no record terminator
        };
        let record = match parse_record(&buf[offset..offset + newline]) {
            Ok(record) => record,
            // A torn/corrupt record truncates from its offset. For the
            // header itself that truncates to zero: the file carries the
            // magic but no recoverable prefix, so it restarts fresh.
            Err(_) => break,
        };
        match record {
            Record::Header {
                schema,
                machine_seed,
                trials,
            } if !saw_header => match schema.as_deref() {
                Some(JOURNAL_SCHEMA) => {
                    saw_header = true;
                    scan.header_machine_seed = machine_seed;
                    scan.header_trials = trials;
                }
                Some(other) => {
                    return Err(not_a_journal(format!(
                        "unsupported journal schema {other:?} (expected {JOURNAL_SCHEMA:?})"
                    )))
                }
                None => return Err(not_a_journal("header carries no schema tag".to_string())),
            },
            Record::Header { .. } => {} // a later header is inert
            _ if !saw_header => {
                return Err(not_a_journal(
                    "first record is not a journal header".to_string(),
                ))
            }
            Record::Intent(key) => {
                scan.intent_records += 1;
                intents.insert(key);
            }
            Record::Cell(key, record) => {
                scan.cell_records += 1;
                intents.remove(&key);
                if scan.completed.insert(key.clone(), *record).is_none() {
                    scan.order.push(key); // last write wins; first-seen order
                }
            }
        }
        scan.records += 1;
        offset += newline + 1;
        scan.valid_end = offset as u64;
    }
    scan.orphan_intents = intents.len();
    Ok(scan)
}
