//! Crash-safe write-ahead journaling for sweep execution.
//!
//! A journal is an append-only file of length-and-checksum-framed JSON
//! records. Before a cell executes, an *intent* record is appended; after
//! it completes, the full per-cell result (the report's cell schema) is
//! appended and fsync'd, keyed by the cell's content fingerprint
//! `(circuit_fp, machine_fp, config_fp, day, noise, sim_seed, trials)`.
//! Because every cell is a deterministic function of the plan and its
//! seeds, a run resumed from a journal is *bit-identical* (canonically) to
//! an uninterrupted run: completed cells are replayed from the journal,
//! the rest recompute.
//!
//! # Framing
//!
//! One record per line:
//!
//! ```text
//! J1 <payload-bytes> <fnv1a64-hex16> <single-line JSON payload>\n
//! ```
//!
//! Recovery scans from the start; the first record must be a `header`
//! carrying the journal schema tag (anything else means the file is not a
//! journal and is left untouched). The first torn or checksum-corrupt
//! record truncates the file at that record's byte offset — a crash mid-
//! append loses at most the record being written, never a completed one.
//!
//! # Degradation
//!
//! Append failures after a journal is open (disk full, I/O error, an
//! injected fault) never fail the sweep: the journal degrades to a no-op
//! sink, the run continues journal-less, and the caller surfaces the
//! reason from [`Journal::degraded`]. A report is never lost to a
//! journaling problem.

use crate::json::{self, Value};
use crate::report::{self, CellRecord};
use rustc_hash::{FxHashMap, FxHashSet};
use std::fmt;
use std::fs::OpenOptions;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Version tag carried by every journal's header record.
pub const JOURNAL_SCHEMA: &str = "nisq-sweep-journal/v1";

/// 64-bit FNV-1a — the journal's record checksum (also used to derive
/// stable per-path and per-request hashes; not cryptographic).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The content fingerprint identifying one sweep cell across processes.
///
/// Two cells with equal keys compute bit-identical results: the circuit,
/// machine and compiler-config fingerprints pin the compile, and the day /
/// noise label / seed / trial count pin the simulation stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Circuit content fingerprint.
    pub circuit_fp: u64,
    /// Machine snapshot fingerprint (topology + calibration day + seed).
    pub machine_fp: u64,
    /// Compiler configuration fingerprint.
    pub config_fp: u64,
    /// Calibration day index.
    pub day: usize,
    /// Noise-axis label bound for the cell (`None` = built-in noise only).
    pub noise: Option<String>,
    /// Simulation seed of the cell's trial stream.
    pub sim_seed: u64,
    /// Trials per cell.
    pub trials: u32,
}

/// Why a journal could not be opened or recovered.
#[derive(Debug)]
pub enum JournalError {
    /// An I/O failure opening or reading the journal file.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file exists but does not begin with a valid journal header —
    /// it is refused (and never truncated) rather than overwritten.
    NotAJournal {
        /// The offending path.
        path: PathBuf,
        /// What disqualified the file.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal {}: {source}", path.display())
            }
            JournalError::NotAJournal { path, detail } => {
                write!(
                    f,
                    "journal {}: not a sweep journal ({detail})",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// What recovery found in an existing journal file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Completed cell records loaded (after last-write-wins dedup).
    pub completed_cells: usize,
    /// Trailing bytes truncated because of a torn or corrupt record.
    pub truncated_bytes: u64,
    /// Intent records with no matching completion (cells that were
    /// executing when the previous process died).
    pub orphan_intents: usize,
}

/// A write-ahead sweep journal: completed-cell lookup plus durable
/// appends. See the module docs for the format and recovery semantics.
pub struct Journal {
    path: PathBuf,
    file: Option<std::fs::File>,
    completed: FxHashMap<CellKey, CellRecord>,
    recovery: RecoveryInfo,
    degraded: Option<String>,
    appends: u64,
    #[cfg(feature = "fault-injection")]
    fail_appends_after: Option<u64>,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("completed", &self.completed.len())
            .field("degraded", &self.degraded)
            .finish()
    }
}

impl Journal {
    /// Starts a fresh journal at `path`, truncating any existing file and
    /// writing the header record. `machine_seed` and `trials` are recorded
    /// in the header for provenance.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the file cannot be created.
    pub fn create(path: &Path, machine_seed: u64, trials: u32) -> Result<Journal, JournalError> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|source| JournalError::Io {
                path: path.to_path_buf(),
                source,
            })?;
        let mut journal = Journal {
            path: path.to_path_buf(),
            file: Some(file),
            completed: FxHashMap::default(),
            recovery: RecoveryInfo::default(),
            degraded: None,
            appends: 0,
            #[cfg(feature = "fault-injection")]
            fail_appends_after: None,
        };
        journal.append_payload(&header_payload(machine_seed, trials), true);
        Ok(journal)
    }

    /// Opens `path` for resumption: recovers every completed cell record
    /// (last write wins for duplicate keys), truncates the file after the
    /// first torn or checksum-corrupt record, and positions the journal
    /// for appending. A missing or empty file behaves like
    /// [`Journal::create`]. Records from a different plan are harmless —
    /// their keys simply never match.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on read/open failures; [`JournalError::NotAJournal`]
    /// when the file exists but does not begin with a journal header (the
    /// file is left untouched in that case).
    pub fn resume(path: &Path, machine_seed: u64, trials: u32) -> Result<Journal, JournalError> {
        let io_err = |source: std::io::Error| JournalError::Io {
            path: path.to_path_buf(),
            source,
        };
        let buf = match std::fs::read(path) {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(e)),
        };
        let scan = scan_records(path, &buf)?;
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err)?;
        if (scan.valid_end as usize) < buf.len() {
            file.set_len(scan.valid_end).map_err(io_err)?;
        }
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
        let mut journal = Journal {
            path: path.to_path_buf(),
            file: Some(file),
            completed: scan.completed,
            recovery: RecoveryInfo {
                completed_cells: 0,
                truncated_bytes: buf.len() as u64 - scan.valid_end,
                orphan_intents: scan.orphan_intents,
            },
            degraded: None,
            appends: 0,
            #[cfg(feature = "fault-injection")]
            fail_appends_after: None,
        };
        journal.recovery.completed_cells = journal.completed.len();
        if scan.valid_end == 0 {
            journal.append_payload(&header_payload(machine_seed, trials), true);
        }
        Ok(journal)
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A stable 64-bit hash of the journal path — the `journal_hash`
    /// provenance field of reports produced through this journal.
    pub fn path_hash(&self) -> u64 {
        fnv64(self.path.to_string_lossy().as_bytes())
    }

    /// What recovery found when this journal was opened with
    /// [`Journal::resume`] (all zero for a fresh journal).
    pub fn recovery(&self) -> RecoveryInfo {
        self.recovery
    }

    /// Completed cell records currently known (recovered plus appended).
    pub fn completed_cells(&self) -> usize {
        self.completed.len()
    }

    /// Why the journal stopped persisting, if an append failed. A degraded
    /// journal keeps serving lookups; it only stops writing.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// The completed record for `key`, if the journal holds one.
    pub fn lookup(&self, key: &CellKey) -> Option<&CellRecord> {
        self.completed.get(key)
    }

    /// Appends the write-ahead intent record for `key` (flushed, not
    /// fsync'd — an intent marks work in flight, not work to preserve).
    pub fn append_intent(&mut self, key: &CellKey) {
        let payload = format!("{{\"kind\": \"intent\", \"key\": {}}}", write_key(key));
        self.append_payload(&payload, false);
    }

    /// Appends (and fsyncs) the completed record for `key`, and makes it
    /// visible to [`Journal::lookup`].
    pub fn append_cell(&mut self, key: &CellKey, record: &CellRecord) {
        let payload = format!(
            "{{\"kind\": \"cell\", \"key\": {}, \"cell\": {}}}",
            write_key(key),
            report::write_cell(record),
        );
        self.append_payload(&payload, true);
        self.completed.insert(key.clone(), record.clone());
    }

    /// Makes every append after the next `appends` ones fail with a
    /// simulated out-of-space error, exercising the degradation path
    /// (appends are counted from journal open, header included).
    #[cfg(feature = "fault-injection")]
    pub fn fail_appends_after(&mut self, appends: u64) {
        self.fail_appends_after = Some(appends);
    }

    fn append_payload(&mut self, payload: &str, sync: bool) {
        if self.file.is_none() {
            return;
        }
        #[cfg(feature = "fault-injection")]
        if let Some(limit) = self.fail_appends_after {
            if self.appends >= limit {
                self.degrade("injected append fault: no space left on device".to_string());
                return;
            }
        }
        self.appends += 1;
        let line = frame(payload);
        let result = {
            let file = self.file.as_mut().expect("checked above");
            file.write_all(line.as_bytes()).and_then(|()| {
                if sync {
                    file.sync_data()
                } else {
                    file.flush()
                }
            })
        };
        if let Err(e) = result {
            self.degrade(format!("append failed: {e}"));
        }
    }

    fn degrade(&mut self, reason: String) {
        self.file = None;
        self.degraded = Some(reason);
    }
}

/// Frames a payload as one journal record line.
fn frame(payload: &str) -> String {
    format!(
        "J1 {} {:016x} {payload}\n",
        payload.len(),
        fnv64(payload.as_bytes())
    )
}

fn header_payload(machine_seed: u64, trials: u32) -> String {
    format!(
        "{{\"kind\": \"header\", \"schema\": {}, \"machine_seed\": {machine_seed}, \"trials\": {trials}}}",
        json::write_str(JOURNAL_SCHEMA)
    )
}

fn write_key(key: &CellKey) -> String {
    let noise = match &key.noise {
        Some(label) => json::write_str(label),
        None => "null".to_string(),
    };
    format!(
        "{{\"circuit_fp\": {}, \"machine_fp\": {}, \"config_fp\": {}, \"day\": {}, \
         \"noise\": {noise}, \"sim_seed\": {}, \"trials\": {}}}",
        key.circuit_fp, key.machine_fp, key.config_fp, key.day, key.sim_seed, key.trials,
    )
}

fn parse_key(doc: &Value) -> Result<CellKey, String> {
    let int = |field: &str| {
        doc.get(field)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("key field {field:?} missing or not an unsigned integer"))
    };
    Ok(CellKey {
        circuit_fp: int("circuit_fp")?,
        machine_fp: int("machine_fp")?,
        config_fp: int("config_fp")?,
        day: int("day")? as usize,
        noise: match doc.get("noise") {
            Some(Value::Null) | None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| "key field \"noise\" is not a string".to_string())?
                    .to_string(),
            ),
        },
        sim_seed: int("sim_seed")?,
        trials: int("trials")? as u32,
    })
}

/// One record successfully parsed out of a journal file.
enum Record {
    Header { schema: Option<String> },
    Intent(CellKey),
    Cell(CellKey, Box<CellRecord>),
}

/// Parses one framed line (without its trailing newline).
fn parse_record(line: &[u8]) -> Result<Record, String> {
    let text = std::str::from_utf8(line).map_err(|_| "record is not UTF-8".to_string())?;
    let rest = text
        .strip_prefix("J1 ")
        .ok_or_else(|| "missing J1 record magic".to_string())?;
    let (len_text, rest) = rest
        .split_once(' ')
        .ok_or_else(|| "missing length field".to_string())?;
    let (sum_text, payload) = rest
        .split_once(' ')
        .ok_or_else(|| "missing checksum field".to_string())?;
    let length: usize = len_text
        .parse()
        .map_err(|_| format!("bad length field {len_text:?}"))?;
    if payload.len() != length {
        return Err(format!(
            "length mismatch: framed {length}, found {} (torn record)",
            payload.len()
        ));
    }
    let framed_sum = u64::from_str_radix(sum_text, 16)
        .map_err(|_| format!("bad checksum field {sum_text:?}"))?;
    let actual_sum = fnv64(payload.as_bytes());
    if framed_sum != actual_sum {
        return Err(format!(
            "checksum mismatch: framed {framed_sum:016x}, computed {actual_sum:016x}"
        ));
    }
    let doc = json::parse(payload).map_err(|e| format!("payload is not JSON: {e}"))?;
    match doc.get("kind").and_then(Value::as_str) {
        Some("header") => Ok(Record::Header {
            schema: doc
                .get("schema")
                .and_then(Value::as_str)
                .map(str::to_string),
        }),
        Some("intent") => {
            let key = doc
                .get("key")
                .ok_or_else(|| "intent has no key".to_string())?;
            Ok(Record::Intent(parse_key(key)?))
        }
        Some("cell") => {
            let key = doc
                .get("key")
                .ok_or_else(|| "cell has no key".to_string())?;
            let cell = doc
                .get("cell")
                .ok_or_else(|| "cell record has no cell body".to_string())?;
            let record = report::parse_cell(cell).map_err(|e| format!("bad cell body: {e}"))?;
            Ok(Record::Cell(parse_key(key)?, Box::new(record)))
        }
        other => Err(format!("unknown record kind {other:?}")),
    }
}

struct Scan {
    completed: FxHashMap<CellKey, CellRecord>,
    valid_end: u64,
    orphan_intents: usize,
}

/// Scans a journal file's bytes: validates the header, loads completed
/// records, and finds the byte offset after the last valid record.
fn scan_records(path: &Path, buf: &[u8]) -> Result<Scan, JournalError> {
    let mut scan = Scan {
        completed: FxHashMap::default(),
        valid_end: 0,
        orphan_intents: 0,
    };
    if buf.is_empty() {
        return Ok(scan);
    }
    let not_a_journal = |detail: String| JournalError::NotAJournal {
        path: path.to_path_buf(),
        detail,
    };
    // A non-empty file that does not even start with the record magic is
    // some other file — refuse rather than truncate it to zero.
    if !buf.starts_with(b"J1 ") {
        return Err(not_a_journal("no J1 record magic at offset 0".to_string()));
    }
    let mut intents: FxHashSet<CellKey> = FxHashSet::default();
    let mut offset = 0usize;
    let mut saw_header = false;
    while offset < buf.len() {
        let Some(newline) = buf[offset..].iter().position(|&b| b == b'\n') else {
            break; // torn tail: no record terminator
        };
        let record = match parse_record(&buf[offset..offset + newline]) {
            Ok(record) => record,
            // A torn/corrupt record truncates from its offset. For the
            // header itself that truncates to zero: the file carries the
            // magic but no recoverable prefix, so it restarts fresh.
            Err(_) => break,
        };
        match record {
            Record::Header { schema } if !saw_header => match schema.as_deref() {
                Some(JOURNAL_SCHEMA) => saw_header = true,
                Some(other) => {
                    return Err(not_a_journal(format!(
                        "unsupported journal schema {other:?} (expected {JOURNAL_SCHEMA:?})"
                    )))
                }
                None => return Err(not_a_journal("header carries no schema tag".to_string())),
            },
            Record::Header { .. } => {} // a later header is inert
            _ if !saw_header => {
                return Err(not_a_journal(
                    "first record is not a journal header".to_string(),
                ))
            }
            Record::Intent(key) => {
                intents.insert(key);
            }
            Record::Cell(key, record) => {
                intents.remove(&key);
                scan.completed.insert(key, *record); // last write wins
            }
        }
        offset += newline + 1;
        scan.valid_end = offset as u64;
    }
    scan.orphan_intents = intents.len();
    Ok(scan)
}
