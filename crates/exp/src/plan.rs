//! Declarative sweep plans.
//!
//! A [`SweepPlan`] describes an experiment workload as a cross-product of
//! axes — circuits × compiler configurations × calibration days ×
//! topologies — plus simulation settings, without executing anything. The
//! paper's figures and tables are all instances of this shape; a
//! [`Session`](crate::Session) executes the plan into a
//! [`Report`](crate::Report).

use nisq_core::CompilerConfig;
use nisq_ir::{Benchmark, Circuit};
use nisq_machine::{GridTopology, TopologySpec};
use nisq_noise::NoiseSpec;
use std::hash::{Hash, Hasher};

/// One circuit of a plan: a display name, the logical circuit, and (when
/// known) the classically-correct output used to score success rates.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitSpec {
    /// Display name used in reports (benchmark name, file name, ...).
    pub name: String,
    /// The logical circuit to compile.
    pub circuit: Circuit,
    /// The correct answer, if known; `None` disables success-rate scoring
    /// for this circuit.
    pub expected: Option<Vec<bool>>,
}

impl CircuitSpec {
    /// A named circuit without a known correct answer.
    pub fn new(name: impl Into<String>, circuit: Circuit) -> Self {
        CircuitSpec {
            name: name.into(),
            circuit,
            expected: None,
        }
    }

    /// Attaches the classically-correct output.
    pub fn with_expected(mut self, expected: Vec<bool>) -> Self {
        self.expected = Some(expected);
        self
    }
}

impl From<Benchmark> for CircuitSpec {
    fn from(benchmark: Benchmark) -> Self {
        CircuitSpec {
            name: benchmark.name().to_string(),
            circuit: benchmark.circuit(),
            expected: Some(benchmark.expected_output()),
        }
    }
}

/// How per-cell simulation seeds are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedMode {
    /// Every cell simulates with the same seed (the historical behaviour of
    /// the single-day figure binaries).
    Fixed(u64),
    /// Cells on day `d` use `base + d` (the historical behaviour of the
    /// daily-variation figures).
    PerDay(u64),
    /// Every cell gets an independent stream: `base` mixed with a hash of
    /// the cell's coordinates (topology, day, circuit and config names), so
    /// seeds are stable when axes are reordered or extended.
    PerCell(u64),
}

/// Which machines the plan targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineScope {
    /// A fixed list of topologies, crossed with every other axis.
    Topologies(Vec<TopologySpec>),
    /// One near-square grid per circuit, just large enough to hold it (the
    /// scalability-study shape: the machine grows with the workload).
    GridPerCircuit,
}

/// One executable cell of a plan: indices into the plan's axes plus the
/// resolved topology and derived simulation seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// The machine topology this cell targets.
    pub topology: TopologySpec,
    /// Calibration day index.
    pub day: usize,
    /// Index into [`SweepPlan::circuits`].
    pub circuit: usize,
    /// Index into [`SweepPlan::configs`].
    pub config: usize,
    /// Index into [`SweepPlan::noise_axis`], or `None` for the built-in
    /// noise model alone (the only value when the plan has no noise axis).
    pub noise: Option<usize>,
    /// Seed for this cell's simulation trials.
    pub sim_seed: u64,
}

/// A declarative description of an experiment workload.
///
/// # Example
///
/// ```
/// use nisq_exp::SweepPlan;
/// use nisq_core::CompilerConfig;
/// use nisq_ir::Benchmark;
///
/// let plan = SweepPlan::new()
///     .benchmarks(Benchmark::representative())
///     .config("Qiskit", CompilerConfig::qiskit())
///     .config("GreedyE*", CompilerConfig::greedy_e())
///     .days(0..7)
///     .with_trials(256);
/// assert_eq!(plan.cells().len(), 3 * 2 * 7);
/// ```
#[derive(Debug, Clone)]
pub struct SweepPlan {
    circuits: Vec<CircuitSpec>,
    configs: Vec<(String, CompilerConfig)>,
    days: Vec<usize>,
    noises: Vec<(String, NoiseSpec)>,
    scope: MachineScope,
    machine_seed: u64,
    trials: u32,
    seed_mode: SeedMode,
}

/// The default machine seed shared by the whole evaluation (one consistent
/// synthetic device across every figure and table).
pub const DEFAULT_MACHINE_SEED: u64 = 2019;

impl Default for SweepPlan {
    fn default() -> Self {
        SweepPlan::new()
    }
}

impl SweepPlan {
    /// An empty plan: IBMQ16, day 0, machine seed 2019, no simulation
    /// (compile-only), per-cell seeds from base 0.
    pub fn new() -> Self {
        SweepPlan {
            circuits: Vec::new(),
            configs: Vec::new(),
            days: vec![0],
            noises: Vec::new(),
            scope: MachineScope::Topologies(vec![TopologySpec::Ibmq16]),
            machine_seed: DEFAULT_MACHINE_SEED,
            trials: 0,
            seed_mode: SeedMode::PerCell(0),
        }
    }

    /// Adds one benchmark (name, circuit and expected output).
    pub fn benchmark(self, benchmark: Benchmark) -> Self {
        self.circuit(benchmark.into())
    }

    /// Adds several benchmarks.
    pub fn benchmarks(mut self, benchmarks: impl IntoIterator<Item = Benchmark>) -> Self {
        self.circuits
            .extend(benchmarks.into_iter().map(CircuitSpec::from));
        self
    }

    /// Adds a custom circuit.
    pub fn circuit(mut self, spec: CircuitSpec) -> Self {
        self.circuits.push(spec);
        self
    }

    /// Adds one labelled compiler configuration. Labels address report
    /// cells ([`Report::cell`](crate::Report::cell) returns the first
    /// match), so keep them unique within a plan.
    pub fn config(mut self, label: impl Into<String>, config: CompilerConfig) -> Self {
        self.configs.push((label.into(), config));
        self
    }

    /// Adds several labelled configurations.
    pub fn with_configs<L: Into<String>>(
        mut self,
        configs: impl IntoIterator<Item = (L, CompilerConfig)>,
    ) -> Self {
        self.configs
            .extend(configs.into_iter().map(|(l, c)| (l.into(), c)));
        self
    }

    /// Adds the paper's six Table-1 configurations, labelled by algorithm
    /// name.
    pub fn table1_configs(mut self) -> Self {
        for config in CompilerConfig::table1() {
            self.configs
                .push((config.algorithm.name().to_string(), config));
        }
        self
    }

    /// Adds one labelled noise spec to the noise axis. A plan with a
    /// non-empty noise axis runs every other-axis combination once per
    /// entry, binding that spec's declarative channels on top of the
    /// built-in noise model; an empty axis (the default) runs each
    /// combination once with the built-in model alone.
    pub fn with_noise(mut self, label: impl Into<String>, spec: NoiseSpec) -> Self {
        self.noises.push((label.into(), spec));
        self
    }

    /// Replaces the calibration-day axis.
    pub fn days(mut self, days: impl IntoIterator<Item = usize>) -> Self {
        self.days = days.into_iter().collect();
        assert!(!self.days.is_empty(), "a plan needs at least one day");
        self
    }

    /// Replaces the topology axis.
    pub fn topologies(mut self, specs: impl IntoIterator<Item = TopologySpec>) -> Self {
        let specs: Vec<TopologySpec> = specs.into_iter().collect();
        assert!(!specs.is_empty(), "a plan needs at least one topology");
        self.scope = MachineScope::Topologies(specs);
        self
    }

    /// Targets one topology.
    pub fn topology(self, spec: TopologySpec) -> Self {
        self.topologies([spec])
    }

    /// Sizes a near-square grid machine to each circuit instead of using a
    /// fixed topology list (the scalability-study shape).
    pub fn grid_per_circuit(mut self) -> Self {
        self.scope = MachineScope::GridPerCircuit;
        self
    }

    /// Sets the machine calibration seed.
    pub fn with_machine_seed(mut self, seed: u64) -> Self {
        self.machine_seed = seed;
        self
    }

    /// Sets the number of noisy trials per cell (0 = compile only).
    pub fn with_trials(mut self, trials: u32) -> Self {
        self.trials = trials;
        self
    }

    /// Uses one fixed simulation seed for every cell.
    pub fn fixed_sim_seed(mut self, seed: u64) -> Self {
        self.seed_mode = SeedMode::Fixed(seed);
        self
    }

    /// Seeds cells on day `d` with `base + d`.
    pub fn per_day_sim_seed(mut self, base: u64) -> Self {
        self.seed_mode = SeedMode::PerDay(base);
        self
    }

    /// Derives an independent seed per cell from `base` and the cell's
    /// coordinates (the default, with base 0).
    pub fn per_cell_sim_seed(mut self, base: u64) -> Self {
        self.seed_mode = SeedMode::PerCell(base);
        self
    }

    /// The circuit axis.
    pub fn circuits(&self) -> &[CircuitSpec] {
        &self.circuits
    }

    /// The labelled configuration axis.
    pub fn configs(&self) -> &[(String, CompilerConfig)] {
        &self.configs
    }

    /// The calibration-day axis.
    pub fn day_axis(&self) -> &[usize] {
        &self.days
    }

    /// The labelled noise-spec axis (empty = built-in model only).
    pub fn noise_axis(&self) -> &[(String, NoiseSpec)] {
        &self.noises
    }

    /// The machine scope.
    pub fn scope(&self) -> &MachineScope {
        &self.scope
    }

    /// The machine calibration seed.
    pub fn machine_seed(&self) -> u64 {
        self.machine_seed
    }

    /// Trials per cell (0 = compile only).
    pub fn trials(&self) -> u32 {
        self.trials
    }

    /// A stable 64-bit content fingerprint of the whole plan.
    ///
    /// Two plans that would produce identical reports fingerprint
    /// identically: circuit contents (not just names), configuration
    /// fingerprints, day / topology / noise axes, machine seed, trial
    /// count and seed mode all join the hash. The sharded serve
    /// supervisor routes requests by this value so identical plans land
    /// on the same worker (warm compile and placement caches); it is not
    /// cryptographic.
    pub fn fingerprint(&self) -> u64 {
        let mut h = rustc_hash::FxHasher::default();
        self.circuits.len().hash(&mut h);
        for spec in &self.circuits {
            spec.name.hash(&mut h);
            spec.circuit.fingerprint().hash(&mut h);
            spec.expected.hash(&mut h);
        }
        self.configs.len().hash(&mut h);
        for (label, config) in &self.configs {
            label.hash(&mut h);
            config.fingerprint().hash(&mut h);
        }
        self.days.hash(&mut h);
        for (label, _) in &self.noises {
            label.hash(&mut h);
        }
        match &self.scope {
            MachineScope::Topologies(specs) => specs.hash(&mut h),
            MachineScope::GridPerCircuit => "grid-per-circuit".hash(&mut h),
        }
        self.machine_seed.hash(&mut h);
        self.trials.hash(&mut h);
        match self.seed_mode {
            SeedMode::Fixed(seed) => (0u8, seed).hash(&mut h),
            SeedMode::PerDay(base) => (1u8, base).hash(&mut h),
            SeedMode::PerCell(base) => (2u8, base).hash(&mut h),
        }
        // SplitMix64-style avalanche: near-identical plans must not
        // produce correlated rendezvous-hash scores.
        let mut z = h.finish();
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// The smallest near-square grid holding `circuit` (the machine used
    /// for it under [`MachineScope::GridPerCircuit`]).
    pub fn grid_for(circuit: &Circuit) -> TopologySpec {
        let grid = GridTopology::at_least(circuit.num_qubits().max(1));
        TopologySpec::Grid {
            mx: grid.mx(),
            my: grid.my(),
        }
    }

    /// Materializes the plan into its cells, in deterministic order:
    /// topology-major, then day, circuit, configuration, noise (innermost,
    /// so adding a noise axis extends rather than reshuffles the order).
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        let topologies: Vec<Option<TopologySpec>> = match &self.scope {
            MachineScope::Topologies(specs) => specs.iter().copied().map(Some).collect(),
            MachineScope::GridPerCircuit => vec![None],
        };
        let noises: Vec<Option<usize>> = if self.noises.is_empty() {
            vec![None]
        } else {
            (0..self.noises.len()).map(Some).collect()
        };
        for topology in topologies {
            for &day in &self.days {
                for (ci, spec) in self.circuits.iter().enumerate() {
                    let resolved = topology.unwrap_or_else(|| SweepPlan::grid_for(&spec.circuit));
                    for cfg in 0..self.configs.len() {
                        for &noise in &noises {
                            cells.push(Cell {
                                topology: resolved,
                                day,
                                circuit: ci,
                                config: cfg,
                                noise,
                                sim_seed: self.cell_seed(resolved, day, ci, cfg, noise),
                            });
                        }
                    }
                }
            }
        }
        cells
    }

    /// The simulation seed of a cell, per the plan's [`SeedMode`].
    fn cell_seed(
        &self,
        topology: TopologySpec,
        day: usize,
        circuit: usize,
        config: usize,
        noise: Option<usize>,
    ) -> u64 {
        match self.seed_mode {
            SeedMode::Fixed(seed) => seed,
            SeedMode::PerDay(base) => base.wrapping_add(day as u64),
            SeedMode::PerCell(base) => {
                let mut h = rustc_hash::FxHasher::default();
                topology.hash(&mut h);
                day.hash(&mut h);
                self.circuits[circuit].name.hash(&mut h);
                self.configs[config].0.hash(&mut h);
                // Only a bound noise spec joins the key: plans without a
                // noise axis keep their historical per-cell seeds.
                if let Some(n) = noise {
                    self.noises[n].0.hash(&mut h);
                }
                // Finalize with a SplitMix64-style avalanche so nearby
                // hashes do not yield correlated trial streams.
                let mut z = base ^ h.finish();
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_product_covers_every_axis() {
        let plan = SweepPlan::new()
            .benchmarks([Benchmark::Bv4, Benchmark::Hs2])
            .table1_configs()
            .days([0, 3, 6])
            .topologies([TopologySpec::Ibmq16, TopologySpec::Grid { mx: 4, my: 4 }]);
        assert_eq!(plan.cells().len(), 2 * 6 * 3 * 2);
    }

    #[test]
    fn seed_modes_match_their_contracts() {
        let base = SweepPlan::new()
            .benchmark(Benchmark::Bv4)
            .config("Qiskit", CompilerConfig::qiskit())
            .days([0, 5]);

        let fixed = base.clone().fixed_sim_seed(42);
        assert!(fixed.cells().iter().all(|c| c.sim_seed == 42));

        let per_day = base.clone().per_day_sim_seed(100);
        let seeds: Vec<u64> = per_day.cells().iter().map(|c| c.sim_seed).collect();
        assert_eq!(seeds, vec![100, 105]);

        let per_cell = base.per_cell_sim_seed(7);
        let seeds: Vec<u64> = per_cell.cells().iter().map(|c| c.sim_seed).collect();
        assert_ne!(seeds[0], seeds[1]);
    }

    #[test]
    fn per_cell_seeds_are_stable_under_axis_extension() {
        let small = SweepPlan::new()
            .benchmark(Benchmark::Bv4)
            .config("Qiskit", CompilerConfig::qiskit());
        let large = SweepPlan::new()
            .benchmark(Benchmark::Bv4)
            .benchmark(Benchmark::Hs2)
            .config("Qiskit", CompilerConfig::qiskit())
            .config("GreedyE*", CompilerConfig::greedy_e());
        assert_eq!(small.cells()[0].sim_seed, large.cells()[0].sim_seed);
    }

    #[test]
    fn grid_per_circuit_sizes_machines_to_circuits() {
        let plan = SweepPlan::new()
            .circuit(CircuitSpec::new("tiny", Circuit::new(3)))
            .circuit(CircuitSpec::new("big", Circuit::new(60)))
            .config("GreedyE*", CompilerConfig::greedy_e())
            .grid_per_circuit();
        let cells = plan.cells();
        assert_eq!(cells[0].topology, TopologySpec::Grid { mx: 2, my: 2 });
        assert_eq!(cells[1].topology, TopologySpec::Grid { mx: 8, my: 8 });
    }

    #[test]
    fn plan_fingerprints_are_stable_and_content_sensitive() {
        let base = || {
            SweepPlan::new()
                .benchmark(Benchmark::Bv4)
                .config("Qiskit", CompilerConfig::qiskit())
                .days([0, 1])
                .with_trials(64)
        };
        assert_eq!(base().fingerprint(), base().fingerprint());
        // Every axis of the plan moves the fingerprint.
        assert_ne!(base().fingerprint(), base().with_trials(65).fingerprint());
        assert_ne!(
            base().fingerprint(),
            base().with_machine_seed(7).fingerprint()
        );
        assert_ne!(base().fingerprint(), base().days([0, 2]).fingerprint());
        assert_ne!(base().fingerprint(), base().fixed_sim_seed(0).fingerprint());
        assert_ne!(
            base().fingerprint(),
            base().benchmark(Benchmark::Hs2).fingerprint()
        );
        assert_ne!(
            base().fingerprint(),
            base()
                .topology(TopologySpec::Grid { mx: 4, my: 4 })
                .fingerprint()
        );
    }

    #[test]
    fn benchmark_specs_carry_expected_outputs() {
        let spec: CircuitSpec = Benchmark::Bv4.into();
        assert_eq!(spec.name, "BV4");
        assert_eq!(spec.expected, Some(Benchmark::Bv4.expected_output()));
    }
}
