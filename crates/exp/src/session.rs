//! The long-lived experiment executor.

use crate::journal::{CellKey, Journal};
use crate::plan::{Cell, CircuitSpec, SweepPlan};
use crate::report::{CacheStats, CellRecord, Report, TierStats};
use nisq_core::{
    CompileError, CompiledCircuit, Compiler, CompilerConfig, Pipeline, PlacementCache,
};
use nisq_ir::Circuit;
use nisq_machine::{Machine, MachineError, TopologySpec};
use nisq_sim::{Simulator, SimulatorConfig};
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use std::sync::Arc;
use std::time::Instant;

/// Key of the full-compile cache: circuit, machine and config fingerprints.
type CompileKey = (u64, u64, u64);

/// External controls for [`Session::run_controlled`]: the knobs a hosting
/// service (the serve daemon) uses to bound a run without forking the
/// execution logic.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunControl {
    /// Stop before starting any cell that would begin after this instant.
    /// `None` runs to completion.
    pub deadline: Option<Instant>,
    /// Stop before starting the `n+1`-th cell (journal hits included).
    /// `None` runs to completion. Unlike the wall-clock deadline this cut
    /// is deterministic, which is what the crash-recovery tests need to
    /// simulate a process dying at an exact cell boundary.
    pub stop_after_cells: Option<usize>,
}

impl RunControl {
    /// A control block with no limits (equivalent to [`Session::run`]'s
    /// behaviour, executed serially).
    pub fn unbounded() -> Self {
        RunControl::default()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deterministic cell-count cut.
    pub fn with_stop_after_cells(mut self, cells: usize) -> Self {
        self.stop_after_cells = Some(cells);
        self
    }
}

/// What [`Session::run_controlled`] produced: the (possibly partial)
/// report plus how far through the plan the run got.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Records for every cell that finished, in plan order.
    pub report: Report,
    /// `true` when every plan cell ran; `false` when the deadline cut the
    /// run short (the report then holds a prefix of the plan's cells).
    pub completed: bool,
    /// Total cells the plan describes.
    pub cells_total: usize,
}

/// A long-lived executor for [`SweepPlan`] workloads.
///
/// A session owns three layers of reusable state, so a sequence of plans
/// (or one plan with overlapping cells) never repeats work:
///
/// * **machine snapshots** — `(topology, seed, day)` builds calibration
///   data once and shares the [`Machine`] behind an `Arc`;
/// * **a full-compile cache** — identical `(circuit, machine-day, config)`
///   triples return the same [`CompiledCircuit`], bit for bit;
/// * **a placement cache** (see [`PlacementCache`]) — shared by every
///   compile the session runs, so even compile-cache *misses* skip the
///   expensive placement pass when only the calibration day changed for a
///   calibration-unaware configuration.
///
/// Simulation batches are executed on a rayon pool: cells run in parallel,
/// each replaying its trials with a deterministic per-cell stream, so
/// results are independent of thread count and identical to a serial run.
///
/// # Example
///
/// ```
/// use nisq_exp::{Session, SweepPlan};
/// use nisq_core::CompilerConfig;
/// use nisq_ir::Benchmark;
///
/// let mut session = Session::new();
/// let report = session
///     .run(
///         &SweepPlan::new()
///             .benchmark(Benchmark::Bv4)
///             .config("GreedyE*", CompilerConfig::greedy_e())
///             .with_trials(128),
///     )
///     .unwrap();
/// assert_eq!(report.cells.len(), 1);
/// assert!(report.cells[0].success() > 0.0);
/// ```
#[derive(Debug)]
pub struct Session {
    machines: FxHashMap<(TopologySpec, u64, usize), Arc<Machine>>,
    compiled: FxHashMap<CompileKey, Arc<CompiledCircuit>>,
    place_cache: Arc<PlacementCache>,
    pipeline: Arc<Pipeline>,
    compile_requests: u64,
    compile_hits: u64,
    threads: usize,
    /// Worker pool for batch simulation, built once per thread budget (not
    /// per run) so a long-lived session executing many plans does not pay
    /// repeated pool setup.
    pool: rayon::ThreadPool,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// Creates a session with an empty cache and the default thread budget
    /// (the machine's available parallelism, capped at 8 like the
    /// simulator's default).
    pub fn new() -> Self {
        let place_cache = Arc::new(PlacementCache::new());
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
        Session {
            machines: FxHashMap::default(),
            compiled: FxHashMap::default(),
            pipeline: Arc::new(Pipeline::standard_with_placement_cache(place_cache.clone())),
            place_cache,
            compile_requests: 0,
            compile_hits: 0,
            threads,
            pool: Session::build_pool(threads),
        }
    }

    fn build_pool(threads: usize) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("building the batch thread pool cannot fail")
    }

    /// Sets the worker-thread budget for batch simulation.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self.pool = Session::build_pool(self.threads);
        self
    }

    /// The machine snapshot for `(spec, seed, day)`, built on first use and
    /// shared afterwards.
    pub fn machine(&mut self, spec: TopologySpec, seed: u64, day: usize) -> Arc<Machine> {
        self.machines
            .entry((spec, seed, day))
            .or_insert_with(|| Arc::new(Machine::from_spec(spec, seed, day)))
            .clone()
    }

    /// Like [`Session::machine`], but validating the spec first so a
    /// degenerate topology (a `ring-2`, a `grid-0x5`) surfaces as a typed
    /// error instead of a panic — the variant untrusted plans go through.
    /// Only successful builds enter the cache.
    ///
    /// # Errors
    ///
    /// Returns whatever [`Machine::try_from_spec`] reports.
    pub fn try_machine(
        &mut self,
        spec: TopologySpec,
        seed: u64,
        day: usize,
    ) -> Result<Arc<Machine>, MachineError> {
        if let Some(hit) = self.machines.get(&(spec, seed, day)) {
            return Ok(hit.clone());
        }
        let machine = Arc::new(Machine::try_from_spec(spec, seed, day)?);
        self.machines.insert((spec, seed, day), machine.clone());
        Ok(machine)
    }

    /// Compiles `circuit` for `machine` under `config` through the
    /// session's caches. The returned flag is `true` when the result came
    /// from the full-compile cache (bit-identical to the original compile).
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit does not fit on the machine or the
    /// configuration is invalid.
    pub fn compile_cached(
        &mut self,
        machine: &Machine,
        config: &CompilerConfig,
        circuit: &Circuit,
    ) -> Result<(Arc<CompiledCircuit>, bool), CompileError> {
        self.compile_requests += 1;
        let key = (
            circuit.fingerprint(),
            machine.fingerprint(),
            config.fingerprint(),
        );
        if let Some(hit) = self.compiled.get(&key) {
            self.compile_hits += 1;
            return Ok((hit.clone(), true));
        }
        let compiled = Arc::new(
            Compiler::with_pipeline(machine, *config, self.pipeline.clone()).compile(circuit)?,
        );
        self.compiled.insert(key, compiled.clone());
        Ok((compiled, false))
    }

    /// Like [`Session::compile_cached`], discarding the hit flag.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit does not fit on the machine or the
    /// configuration is invalid.
    pub fn compile(
        &mut self,
        machine: &Machine,
        config: &CompilerConfig,
        circuit: &Circuit,
    ) -> Result<Arc<CompiledCircuit>, CompileError> {
        self.compile_cached(machine, config, circuit)
            .map(|(compiled, _)| compiled)
    }

    /// The placement cache shared by every compile this session runs.
    pub fn placement_cache(&self) -> &Arc<PlacementCache> {
        &self.place_cache
    }

    /// Cache behaviour accumulated over the session's lifetime.
    pub fn cache_stats(&self) -> CacheStats {
        let place = self.place_cache.stats();
        CacheStats {
            compile_requests: self.compile_requests,
            compile_hits: self.compile_hits,
            place_hits: place.hits,
            place_runs: place.misses,
            // Journal hits are per-run provenance, not session state; runs
            // fill the field in their report deltas.
            journal_hits: 0,
        }
    }

    /// Executes every cell of `plan`: compiles through the caches, then —
    /// when the plan requests trials — simulates the cells in parallel and
    /// scores success rates against each circuit's expected output.
    ///
    /// The report's [`CacheStats`] are the session totals *for this run*
    /// (deltas against the session state before the call).
    ///
    /// # Errors
    ///
    /// Returns the first compile error; cells already compiled are
    /// discarded.
    pub fn run(&mut self, plan: &SweepPlan) -> Result<Report, CompileError> {
        let before = self.cache_stats();
        let cells = plan.cells();
        let trials = plan.trials();

        // Compile phase: serial, so every cell sees the warmest cache.
        let mut compiled = Vec::with_capacity(cells.len());
        for cell in &cells {
            let machine = self.machine(cell.topology, plan.machine_seed(), cell.day);
            let spec = &plan.circuits()[cell.circuit];
            let config = &plan.configs()[cell.config].1;
            let (executable, cache_hit) = self.compile_cached(&machine, config, &spec.circuit)?;
            compiled.push((machine, executable, cache_hit));
        }

        // Simulation phase: one worker per cell, each driving the tiered
        // trial engine over its trials — deterministic for a plan
        // regardless of thread count. Worker-local engine scratch (state
        // vectors, checkpoint and event buffers) is reused across the
        // cells and chunks a worker processes instead of being reallocated
        // per chunk.
        let work: Vec<(usize, Arc<Machine>, Arc<CompiledCircuit>)> = cells
            .iter()
            .enumerate()
            .filter(|(_, cell)| trials > 0 && plan.circuits()[cell.circuit].expected.is_some())
            .map(|(i, _)| (i, compiled[i].0.clone(), compiled[i].1.clone()))
            .collect();
        let mut success: Vec<Option<f64>> = vec![None; cells.len()];
        let mut cell_tiers: Vec<TierStats> = vec![TierStats::default(); cells.len()];
        let simulate = |machine: &Machine,
                        executable: &CompiledCircuit,
                        cell: &Cell,
                        spec: &CircuitSpec,
                        threads: usize| {
            let mut config = SimulatorConfig::with_trials(trials, cell.sim_seed);
            config.threads = threads;
            let simulator = Simulator::new(machine, config);
            let noise = cell.noise.map(|n| &plan.noise_axis()[n].1);
            let program = simulator.prepare_with_noise(executable.physical_circuit(), noise);
            let (result, tiers) = simulator.run_program_with_stats(&program);
            let rate = result.probability_of(spec.expected.as_ref().expect("filtered above"));
            (rate, TierStats::from(tiers))
        };
        if work.len() > 1 {
            let rates: Vec<(usize, f64, TierStats)> = self.pool.install(|| {
                work.into_par_iter()
                    .map(|(i, machine, executable)| {
                        let cell = &cells[i];
                        let spec = &plan.circuits()[cell.circuit];
                        let (rate, tiers) = simulate(&machine, &executable, cell, spec, 1);
                        (i, rate, tiers)
                    })
                    .collect()
            });
            for (i, rate, tiers) in rates {
                success[i] = Some(rate);
                cell_tiers[i] = tiers;
            }
        } else {
            // A single simulated cell parallelizes over its trials instead.
            for (i, machine, executable) in work {
                let cell = &cells[i];
                let spec = &plan.circuits()[cell.circuit];
                let (rate, tiers) = simulate(&machine, &executable, cell, spec, self.threads);
                success[i] = Some(rate);
                cell_tiers[i] = tiers;
            }
        }

        let mut tier_totals = TierStats::default();
        for tiers in &cell_tiers {
            tier_totals.merge(tiers);
        }
        let records = cells
            .iter()
            .zip(compiled.iter())
            .zip(success.into_iter().zip(cell_tiers))
            .map(
                |((cell, (_, executable, cache_hit)), (success_rate, tiers))| {
                    cell_record(
                        plan,
                        cell,
                        executable,
                        *cache_hit,
                        trials,
                        success_rate,
                        tiers,
                    )
                },
            )
            .collect();

        let after = self.cache_stats();
        Ok(Report {
            machine_seed: plan.machine_seed(),
            trials,
            resumed_cells: 0,
            journal_hash: 0,
            cells: records,
            cache: CacheStats {
                compile_requests: after.compile_requests - before.compile_requests,
                compile_hits: after.compile_hits - before.compile_hits,
                place_hits: after.place_hits - before.place_hits,
                place_runs: after.place_runs - before.place_runs,
                journal_hits: 0,
            },
            tiers: tier_totals,
        })
    }

    /// Executes `plan` cell by cell under external controls — the serial
    /// sibling of [`Session::run`] used by hosting services that need to
    /// cut a run short.
    ///
    /// Cells execute in plan order; before each cell the control block's
    /// deadline and cell-count cut are checked, and an expired control
    /// ends the run with the cells finished so far (`completed == false`).
    /// Per-cell results are identical to [`Session::run`]'s: the
    /// simulator's trial streams are thread-invariant, so a report
    /// produced here matches a parallel run of the same plan bit for bit
    /// (wall-clock fields aside).
    ///
    /// Machines are built through [`Session::try_machine`], so a plan
    /// naming a degenerate topology returns a typed error instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns the first compile error; cells already executed are
    /// discarded.
    pub fn run_controlled(
        &mut self,
        plan: &SweepPlan,
        control: &RunControl,
    ) -> Result<RunOutcome, CompileError> {
        self.run_serial(plan, control, None)
    }

    /// Like [`Session::run_controlled`], but streaming every completed
    /// cell into `journal` and serving cells the journal already holds
    /// without recompiling or resimulating them.
    ///
    /// Before a cell executes its key is looked up: a hit replays the
    /// journaled record verbatim (counted in `resumed_cells` and the
    /// cache's `journal_hits`); a miss appends a write-ahead intent,
    /// executes the cell, then appends and fsyncs the completed record.
    /// Because journaled records round-trip bit-exactly, a resumed run's
    /// [`Report::canonicalized`] form is byte-identical to an
    /// uninterrupted run of the same plan. A journal that degrades
    /// mid-run (disk full) stops persisting but never fails the sweep —
    /// check [`Journal::degraded`] after the run.
    ///
    /// # Errors
    ///
    /// Returns the first compile error; cells already executed are
    /// discarded (though still recoverable from the journal).
    pub fn run_journaled(
        &mut self,
        plan: &SweepPlan,
        control: &RunControl,
        journal: &mut Journal,
    ) -> Result<RunOutcome, CompileError> {
        self.run_serial(plan, control, Some(journal))
    }

    fn run_serial(
        &mut self,
        plan: &SweepPlan,
        control: &RunControl,
        mut journal: Option<&mut Journal>,
    ) -> Result<RunOutcome, CompileError> {
        let before = self.cache_stats();
        let cells = plan.cells();
        let cells_total = cells.len();
        let trials = plan.trials();

        let mut records: Vec<CellRecord> = Vec::with_capacity(cells.len());
        let mut tier_totals = TierStats::default();
        let mut completed = true;
        let mut journal_hits = 0u64;
        for cell in &cells {
            if let Some(deadline) = control.deadline {
                if Instant::now() >= deadline {
                    completed = false;
                    break;
                }
            }
            if let Some(limit) = control.stop_after_cells {
                if records.len() >= limit {
                    completed = false;
                    break;
                }
            }
            let machine = self.try_machine(cell.topology, plan.machine_seed(), cell.day)?;
            let spec = &plan.circuits()[cell.circuit];
            let config = &plan.configs()[cell.config].1;
            let key = journal.as_ref().map(|_| CellKey {
                circuit_fp: spec.circuit.fingerprint(),
                machine_fp: machine.fingerprint(),
                config_fp: config.fingerprint(),
                day: cell.day,
                noise: cell.noise.map(|n| plan.noise_axis()[n].0.clone()),
                sim_seed: cell.sim_seed,
                trials,
            });
            if let (Some(journal), Some(key)) = (journal.as_deref_mut(), key.as_ref()) {
                if let Some(hit) = journal.lookup(key) {
                    journal_hits += 1;
                    tier_totals.merge(&hit.tiers);
                    records.push(hit.clone());
                    continue;
                }
                journal.append_intent(key);
            }
            let (executable, cache_hit) = self.compile_cached(&machine, config, &spec.circuit)?;

            let (success_rate, tiers) = match &spec.expected {
                Some(expected) if trials > 0 => {
                    let mut sim_config = SimulatorConfig::with_trials(trials, cell.sim_seed);
                    sim_config.threads = self.threads;
                    let simulator = Simulator::new(&machine, sim_config);
                    let noise = cell.noise.map(|n| &plan.noise_axis()[n].1);
                    let program =
                        simulator.prepare_with_noise(executable.physical_circuit(), noise);
                    let (result, counts) = simulator.run_program_with_stats(&program);
                    (
                        Some(result.probability_of(expected)),
                        TierStats::from(counts),
                    )
                }
                _ => (None, TierStats::default()),
            };
            tier_totals.merge(&tiers);
            let record = cell_record(
                plan,
                cell,
                &executable,
                cache_hit,
                trials,
                success_rate,
                tiers,
            );
            if let (Some(journal), Some(key)) = (journal.as_deref_mut(), key.as_ref()) {
                journal.append_cell(key, &record);
            }
            records.push(record);
        }

        let after = self.cache_stats();
        Ok(RunOutcome {
            report: Report {
                machine_seed: plan.machine_seed(),
                trials,
                resumed_cells: journal_hits,
                journal_hash: journal.as_ref().map_or(0, |j| j.path_hash()),
                cells: records,
                cache: CacheStats {
                    compile_requests: after.compile_requests - before.compile_requests,
                    compile_hits: after.compile_hits - before.compile_hits,
                    place_hits: after.place_hits - before.place_hits,
                    place_runs: after.place_runs - before.place_runs,
                    journal_hits,
                },
                tiers: tier_totals,
            },
            completed,
            cells_total,
        })
    }
}

/// Builds the report record for one executed cell — shared by the parallel
/// and the controlled execution paths so both emit identical records.
fn cell_record(
    plan: &SweepPlan,
    cell: &Cell,
    executable: &CompiledCircuit,
    cache_hit: bool,
    trials: u32,
    success_rate: Option<f64>,
    tiers: TierStats,
) -> CellRecord {
    let spec = &plan.circuits()[cell.circuit];
    // Timings are rounded to the JSON precision (3 decimals) so
    // serializing a report round-trips bit-exactly.
    let round3 = |v: f64| (v * 1e3).round() / 1e3;
    let place_us = executable
        .pass_timings()
        .iter()
        .find(|t| t.pass == "place")
        .map_or(0.0, |t| round3(t.elapsed.as_secs_f64() * 1e6));
    CellRecord {
        circuit: spec.name.clone(),
        config: plan.configs()[cell.config].0.clone(),
        topology: cell.topology.name(),
        day: cell.day,
        noise: cell.noise.map(|n| plan.noise_axis()[n].0.clone()),
        qubits: spec.circuit.num_qubits(),
        gates: spec.circuit.gate_count(),
        sim_seed: cell.sim_seed,
        trials,
        success_rate,
        estimated_reliability: executable.estimated_reliability(),
        duration_slots: executable.duration_slots(),
        swap_count: executable.swap_count(),
        hardware_cnots: executable.hardware_cnot_count(),
        compile_ms: round3(executable.compile_time().as_secs_f64() * 1e3),
        place_us,
        cache_hit,
        tiers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CircuitSpec;
    use nisq_ir::Benchmark;

    #[test]
    fn run_scores_success_and_counts_caches() {
        let mut session = Session::new();
        let plan = SweepPlan::new()
            .benchmarks([Benchmark::Bv4, Benchmark::Hs2])
            .config("Qiskit", CompilerConfig::qiskit())
            .config("GreedyE*", CompilerConfig::greedy_e())
            .with_trials(128)
            .fixed_sim_seed(7);
        let report = session.run(&plan).unwrap();
        assert_eq!(report.cells.len(), 4);
        for cell in &report.cells {
            let rate = cell.success();
            assert!(
                rate > 0.0 && rate <= 1.0,
                "{}/{}: {rate}",
                cell.circuit,
                cell.config
            );
            assert!(!cell.cache_hit);
        }
        assert_eq!(report.cache.compile_requests, 4);
        assert_eq!(report.cache.compile_hits, 0);
        assert_eq!(report.cache.place_runs, 4);

        // The same plan again is answered entirely from the compile cache.
        let again = session.run(&plan).unwrap();
        assert_eq!(again.cache.compile_hits, 4);
        assert!(again.cells.iter().all(|c| c.cache_hit));
        for (a, b) in report.cells.iter().zip(again.cells.iter()) {
            assert_eq!(a.success_rate, b.success_rate, "fixed seeds must reproduce");
            assert_eq!(a.estimated_reliability, b.estimated_reliability);
        }
    }

    #[test]
    fn thread_count_does_not_change_batch_results() {
        let plan = SweepPlan::new()
            .benchmarks(Benchmark::representative())
            .config("GreedyV*", CompilerConfig::greedy_v())
            .days([0, 1])
            .with_trials(96);
        let serial = Session::new().with_threads(1).run(&plan).unwrap();
        let parallel = Session::new().with_threads(7).run(&plan).unwrap();
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (a, b) in serial.cells.iter().zip(parallel.cells.iter()) {
            // Wall-clock fields (compile_ms, place_us) vary run to run;
            // everything observable must not.
            assert_eq!(a.success_rate, b.success_rate, "{}/{}", a.circuit, a.day);
            assert_eq!(a.estimated_reliability, b.estimated_reliability);
            assert_eq!(a.sim_seed, b.sim_seed);
            assert_eq!(
                (a.duration_slots, a.swap_count, a.hardware_cnots),
                (b.duration_slots, b.swap_count, b.hardware_cnots)
            );
        }
    }

    #[test]
    fn compile_only_plans_skip_simulation() {
        let mut session = Session::new();
        let plan = SweepPlan::new()
            .benchmark(Benchmark::Toffoli)
            .table1_configs();
        let report = session.run(&plan).unwrap();
        assert_eq!(report.cells.len(), 6);
        assert!(report.cells.iter().all(|c| c.success_rate.is_none()));
        assert!(report.cells.iter().all(|c| c.duration_slots > 0));
    }

    #[test]
    fn circuits_without_expected_output_are_not_scored() {
        let mut session = Session::new();
        let mut ghz = Circuit::new(3);
        ghz.h(nisq_ir::Qubit(0));
        ghz.cnot(nisq_ir::Qubit(0), nisq_ir::Qubit(1));
        ghz.cnot(nisq_ir::Qubit(1), nisq_ir::Qubit(2));
        ghz.measure_all();
        let plan = SweepPlan::new()
            .circuit(CircuitSpec::new("ghz", ghz))
            .config("GreedyE*", CompilerConfig::greedy_e())
            .with_trials(64);
        let report = session.run(&plan).unwrap();
        assert_eq!(report.cells[0].success_rate, None);
        assert_eq!(report.cells[0].trials, 64);
    }

    #[test]
    fn controlled_run_matches_parallel_run_canonically() {
        let plan = SweepPlan::new()
            .benchmarks([Benchmark::Bv4, Benchmark::Hs2])
            .config("Qiskit", CompilerConfig::qiskit())
            .config("GreedyE*", CompilerConfig::greedy_e())
            .days([0, 1])
            .with_trials(64);
        let parallel = Session::new().run(&plan).unwrap();
        let outcome = Session::new()
            .run_controlled(&plan, &RunControl::unbounded())
            .unwrap();
        assert!(outcome.completed);
        assert_eq!(outcome.cells_total, parallel.cells.len());
        assert_eq!(
            outcome.report.canonicalized(),
            parallel.canonicalized(),
            "controlled and parallel runs must agree on everything observable"
        );
    }

    #[test]
    fn controlled_run_stops_at_an_expired_deadline() {
        let plan = SweepPlan::new()
            .benchmarks([Benchmark::Bv4, Benchmark::Hs2])
            .config("GreedyE*", CompilerConfig::greedy_e())
            .with_trials(32);
        let control = RunControl::unbounded().with_deadline(Instant::now());
        let outcome = Session::new().run_controlled(&plan, &control).unwrap();
        assert!(!outcome.completed);
        assert_eq!(outcome.report.cells.len(), 0);
        assert_eq!(outcome.cells_total, 2);
    }

    #[test]
    fn try_machine_rejects_degenerate_specs_without_caching() {
        let mut session = Session::new();
        assert!(session
            .try_machine(TopologySpec::Ring { n: 2 }, 1, 0)
            .is_err());
        let ok = session
            .try_machine(TopologySpec::Ring { n: 4 }, 1, 0)
            .unwrap();
        let again = session
            .try_machine(TopologySpec::Ring { n: 4 }, 1, 0)
            .unwrap();
        assert!(Arc::ptr_eq(&ok, &again));
    }

    #[test]
    fn machines_are_shared_snapshots() {
        let mut session = Session::new();
        let a = session.machine(TopologySpec::Ibmq16, 2019, 0);
        let b = session.machine(TopologySpec::Ibmq16, 2019, 0);
        assert!(Arc::ptr_eq(&a, &b));
        let c = session.machine(TopologySpec::Ibmq16, 2019, 1);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
