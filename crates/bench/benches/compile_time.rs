//! Criterion benchmarks for compilation time (the quantity of Figures 7c
//! and 11): optimal vs heuristic mappers on the paper benchmarks and on
//! random circuits of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nisq_bench::{ibmq16_on_day, machine_with_qubits};
use nisq_core::{Compiler, CompilerConfig, RouteSelection};
use nisq_ir::{random_circuit, Benchmark, RandomCircuitConfig};
use std::time::Duration;

fn bench_paper_benchmarks(c: &mut Criterion) {
    let machine = ibmq16_on_day(0);
    let mut group = c.benchmark_group("compile_paper_benchmarks");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for benchmark in Benchmark::representative() {
        let circuit = benchmark.circuit();
        for (name, config) in [
            ("qiskit", CompilerConfig::qiskit()),
            (
                "t_smt_star",
                CompilerConfig::t_smt_star(RouteSelection::OneBendPaths),
            ),
            ("r_smt_star", CompilerConfig::r_smt_star(0.5)),
            ("greedy_e", CompilerConfig::greedy_e()),
            ("greedy_v", CompilerConfig::greedy_v()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, benchmark.name()),
                &circuit,
                |b, circuit| {
                    let compiler = Compiler::new(&machine, config);
                    b.iter(|| compiler.compile(circuit).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_random_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_random_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for qubits in [4usize, 8, 16] {
        let machine = machine_with_qubits(qubits);
        let circuit = random_circuit(RandomCircuitConfig::new(qubits, 128, 3));
        let exact = CompilerConfig::r_smt_star(0.5)
            .with_solver_budget(200_000, Some(Duration::from_secs(2)));
        group.bench_with_input(
            BenchmarkId::new("r_smt_star", qubits),
            &circuit,
            |b, circuit| {
                let compiler = Compiler::new(&machine, exact);
                b.iter(|| compiler.compile(circuit).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("greedy_e", qubits),
            &circuit,
            |b, circuit| {
                let compiler = Compiler::new(&machine, CompilerConfig::greedy_e());
                b.iter(|| compiler.compile(circuit).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_paper_benchmarks, bench_random_scaling);
criterion_main!(benches);
