//! Criterion benchmarks for the noisy simulator: trial throughput for
//! compiled executables (the substrate behind every success-rate figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nisq_bench::ibmq16_on_day;
use nisq_core::{Compiler, CompilerConfig};
use nisq_ir::Benchmark;
use nisq_sim::{Simulator, SimulatorConfig};
use std::time::Duration;

fn bench_simulation(c: &mut Criterion) {
    let machine = ibmq16_on_day(0);
    let mut group = c.benchmark_group("noisy_simulation_256_trials");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for benchmark in [Benchmark::Bv4, Benchmark::Hs6, Benchmark::Adder] {
        let compiled = Compiler::new(&machine, CompilerConfig::r_smt_star(0.5))
            .compile(&benchmark.circuit())
            .unwrap();
        let expected = benchmark.expected_output();
        group.bench_with_input(
            BenchmarkId::new("r_smt_star_executable", benchmark.name()),
            &compiled,
            |b, compiled| {
                let sim = Simulator::new(&machine, SimulatorConfig::with_trials(256, 1));
                b.iter(|| sim.success_rate(compiled, &expected));
            },
        );
    }
    // Baseline executables are longer (they include swap chains), so their
    // simulation cost is also interesting.
    for benchmark in [Benchmark::Bv8, Benchmark::Toffoli] {
        let compiled = Compiler::new(&machine, CompilerConfig::qiskit())
            .compile(&benchmark.circuit())
            .unwrap();
        let expected = benchmark.expected_output();
        group.bench_with_input(
            BenchmarkId::new("qiskit_executable", benchmark.name()),
            &compiled,
            |b, compiled| {
                let sim = Simulator::new(&machine, SimulatorConfig::with_trials(256, 1));
                b.iter(|| sim.success_rate(compiled, &expected));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
