//! Criterion benchmarks for the noisy simulator: trial throughput for
//! compiled executables (the substrate behind every success-rate figure).
//!
//! The `noisy_simulation_4096_trials/qiskit_executable/BV8` entry is the
//! tracked acceptance benchmark; `BENCH_sim.json` (emitted by the
//! `bench_sim_baseline` binary) records its trials-per-second trajectory
//! across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nisq_bench::ibmq16_on_day;
use nisq_core::{Compiler, CompilerConfig};
use nisq_ir::Benchmark;
use nisq_sim::{Simulator, SimulatorConfig};
use std::time::Duration;

fn bench_simulation(c: &mut Criterion) {
    let machine = ibmq16_on_day(0);
    let mut group = c.benchmark_group("noisy_simulation_256_trials");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for benchmark in [Benchmark::Bv4, Benchmark::Hs6, Benchmark::Adder] {
        let compiled = Compiler::new(&machine, CompilerConfig::r_smt_star(0.5))
            .compile(&benchmark.circuit())
            .unwrap();
        let expected = benchmark.expected_output();
        group.bench_with_input(
            BenchmarkId::new("r_smt_star_executable", benchmark.name()),
            &compiled,
            |b, compiled| {
                let sim = Simulator::new(&machine, SimulatorConfig::with_trials(256, 1));
                b.iter(|| sim.success_rate(compiled, &expected));
            },
        );
    }
    // Baseline executables are longer (they include swap chains), so their
    // simulation cost is also interesting.
    for benchmark in [Benchmark::Bv8, Benchmark::Toffoli] {
        let compiled = Compiler::new(&machine, CompilerConfig::qiskit())
            .compile(&benchmark.circuit())
            .unwrap();
        let expected = benchmark.expected_output();
        group.bench_with_input(
            BenchmarkId::new("qiskit_executable", benchmark.name()),
            &compiled,
            |b, compiled| {
                let sim = Simulator::new(&machine, SimulatorConfig::with_trials(256, 1));
                b.iter(|| sim.success_rate(compiled, &expected));
            },
        );
    }
    group.finish();
}

/// The acceptance-tracked workload: 4096 full-noise trials per run, half
/// the paper's 8192-trial executions.
fn bench_simulation_4096(c: &mut Criterion) {
    let machine = ibmq16_on_day(0);
    let mut group = c.benchmark_group("noisy_simulation_4096_trials");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));
    for (config_name, config) in [
        ("qiskit_executable", CompilerConfig::qiskit()),
        ("r_smt_star_executable", CompilerConfig::r_smt_star(0.5)),
    ] {
        let benchmark = Benchmark::Bv8;
        let compiled = Compiler::new(&machine, config)
            .compile(&benchmark.circuit())
            .unwrap();
        let expected = benchmark.expected_output();
        group.bench_with_input(
            BenchmarkId::new(config_name, benchmark.name()),
            &compiled,
            |b, compiled| {
                let sim = Simulator::new(&machine, SimulatorConfig::with_trials(4096, 1));
                b.iter(|| sim.success_rate(compiled, &expected));
            },
        );
    }
    group.finish();
}

/// Lower-once/replay-many: how much of a run is program lowering vs trial
/// replay. `prepared` skips the per-run lowering via `Simulator::prepare`.
fn bench_program_reuse(c: &mut Criterion) {
    let machine = ibmq16_on_day(0);
    let mut group = c.benchmark_group("trial_program_reuse");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let compiled = Compiler::new(&machine, CompilerConfig::qiskit())
        .compile(&Benchmark::Bv8.circuit())
        .unwrap();
    let sim = Simulator::new(&machine, SimulatorConfig::with_trials(1024, 1));
    group.bench_function("lower_each_run", |b| {
        b.iter(|| sim.run(compiled.physical_circuit()));
    });
    let program = sim.prepare(compiled.physical_circuit());
    group.bench_function("prepared", |b| {
        b.iter(|| sim.run_program(&program));
    });
    group.bench_function("lowering_only", |b| {
        b.iter(|| sim.prepare(compiled.physical_circuit()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_simulation_4096,
    bench_program_reuse
);
criterion_main!(benches);
