//! Criterion benchmarks for the optimization substrate itself: exact branch
//! and bound versus simulated annealing on the same placement problem (the
//! exact-vs-anytime ablation called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nisq_bench::ibmq16_on_day;
use nisq_ir::Benchmark;
use nisq_opt::{
    problem, solve_annealing, solve_branch_and_bound, AnnealConfig, MappingObjective,
    RouteSelection, SolverConfig,
};
use std::time::Duration;

fn bench_solvers(c: &mut Criterion) {
    let machine = ibmq16_on_day(0);
    let mut group = c.benchmark_group("placement_solvers");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for benchmark in [Benchmark::Bv4, Benchmark::Hs6, Benchmark::Adder] {
        let circuit = benchmark.circuit();
        let p = problem::build(
            &circuit,
            &machine,
            MappingObjective::Reliability { omega: 0.5 },
            RouteSelection::OneBendPaths,
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("branch_and_bound", benchmark.name()),
            &p,
            |b, p| {
                b.iter(|| solve_branch_and_bound(p, &SolverConfig::default()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("annealing_50k", benchmark.name()),
            &p,
            |b, p| {
                b.iter(|| solve_annealing(p, &AnnealConfig::new(50_000, 1)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
