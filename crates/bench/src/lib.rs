//! # nisq-bench — experiment harness for the paper's tables and figures
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the index). The binaries are thin declarations over
//! the experiment API of [`nisq_exp`] — each one builds a
//! [`SweepPlan`](nisq_exp::SweepPlan), executes it through a caching
//! [`Session`](nisq_exp::Session), and renders the resulting
//! [`Report`](nisq_exp::Report) as a text table. This library holds the
//! pieces they share: the canonical machine/calibration helpers, the
//! single-cell compile-then-simulate path, and text-table / statistics
//! helpers.
//!
//! The experiments substitute a noisy simulator driven by synthetic
//! calibration data for the paper's real IBMQ16 runs, so absolute numbers
//! differ from the paper while the comparisons between mapping algorithms
//! (who wins, by roughly what factor) are preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nisq_core::{Compiler, CompilerConfig};
use nisq_ir::{Benchmark, Circuit};
use nisq_machine::{Calibration, CalibrationGenerator, GridTopology, Machine};
use nisq_sim::{Simulator, SimulatorConfig};
use std::time::Duration;

/// The default machine seed used across the experiment binaries, so the
/// whole evaluation refers to one consistent synthetic device (re-exported
/// from the experiment API, which applies it to every plan by default).
pub const DEFAULT_MACHINE_SEED: u64 = nisq_exp::DEFAULT_MACHINE_SEED;

/// The default number of simulation trials (matches the paper's 8192 trials
/// per execution on IBMQ16).
pub const DEFAULT_TRIALS: u32 = 8192;

/// Builds the IBMQ16-like machine for a given calibration day.
pub fn ibmq16_on_day(day: usize) -> Machine {
    Machine::ibmq16_on_day(DEFAULT_MACHINE_SEED, day)
}

/// Builds a machine with at least `num_qubits` qubits (square-ish grid) for
/// the scalability experiments, with calibration for day 0.
pub fn machine_with_qubits(num_qubits: usize) -> Machine {
    let topology = GridTopology::at_least(num_qubits);
    let calibration = CalibrationGenerator::new(topology.clone(), DEFAULT_MACHINE_SEED).day(0);
    Machine::new(
        format!("synthetic-{}q", topology.num_qubits()),
        topology,
        calibration,
    )
}

/// The first `days` calibration snapshots of the default synthetic IBMQ16
/// device — the canonical calibration series every daily-variation figure
/// draws from.
pub fn ibmq16_calibration_days(days: usize) -> Vec<Calibration> {
    CalibrationGenerator::new(GridTopology::ibmq16(), DEFAULT_MACHINE_SEED).days(days)
}

/// Reads the `NISQ_TRIALS` override every figure binary honours, falling
/// back to `default` trials per cell.
pub fn trials_from_env(default: u32) -> u32 {
    std::env::var("NISQ_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The result of compiling and simulating one benchmark under one
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Fraction of simulated trials that returned the correct answer.
    pub success_rate: f64,
    /// Analytic reliability estimate from the compiler.
    pub estimated_reliability: f64,
    /// Execution duration in hardware timeslots.
    pub duration_slots: u32,
    /// One-way SWAPs inserted by the router.
    pub swap_count: usize,
    /// Wall-clock compilation time.
    pub compile_time: Duration,
}

/// Compiles `benchmark` with `config` on `machine` and measures its success
/// rate over `trials` simulated runs.
///
/// # Panics
///
/// Panics if compilation fails (the standard benchmarks always fit on the
/// 16-qubit machine).
pub fn run_benchmark(
    machine: &Machine,
    config: CompilerConfig,
    benchmark: Benchmark,
    trials: u32,
    sim_seed: u64,
) -> RunOutcome {
    run_circuit(
        machine,
        config,
        &benchmark.circuit(),
        &benchmark.expected_output(),
        trials,
        sim_seed,
    )
}

/// Compiles an arbitrary circuit and measures success against `expected`.
///
/// # Panics
///
/// Panics if compilation fails (circuit too large for the machine).
pub fn run_circuit(
    machine: &Machine,
    config: CompilerConfig,
    circuit: &Circuit,
    expected: &[bool],
    trials: u32,
    sim_seed: u64,
) -> RunOutcome {
    let compiled = Compiler::new(machine, config)
        .compile(circuit)
        .expect("benchmark compiles on the target machine");
    let simulator = Simulator::new(machine, SimulatorConfig::with_trials(trials, sim_seed));
    let success_rate = simulator.success_rate(&compiled, expected);
    RunOutcome {
        success_rate,
        estimated_reliability: compiled.estimated_reliability(),
        duration_slots: compiled.duration_slots(),
        swap_count: compiled.swap_count(),
        compile_time: compiled.compile_time(),
    }
}

/// Calibration days snapshotted by the golden equivalence harness (day 0
/// plus one drifted day, so calibration-aware configs are pinned on two
/// different machine states).
pub const GOLDEN_DAYS: &[usize] = &[0, 3];

/// Produces one golden line per Table-1 configuration × benchmark × day on
/// the default synthetic IBMQ16 machine, pinning every observable artifact
/// of a compilation bit-exactly:
///
/// `config|benchmark|day|placement|swaps|makespan|physical_gates|hw_cnots|reliability_bits`
///
/// where `placement` is the comma-separated hardware location of each
/// program qubit and `reliability_bits` is the estimated reliability's raw
/// IEEE-754 bit pattern in hex (so equality means bit-identical floats).
///
/// The `golden_snapshot` binary writes these lines to
/// `tests/golden/table1_ibmq16.txt`; `tests/pipeline_equivalence.rs`
/// regenerates them and diffs against that file.
///
/// # Panics
///
/// Panics if any benchmark fails to compile (they all fit on IBMQ16).
pub fn golden_snapshot_lines(days: &[usize]) -> Vec<String> {
    let mut out = Vec::new();
    for &day in days {
        let machine = ibmq16_on_day(day);
        for config in CompilerConfig::table1() {
            let label = format!(
                "{}/{}",
                config.algorithm.name(),
                config.routing.short_name()
            );
            for b in Benchmark::all() {
                let compiled = Compiler::new(&machine, config)
                    .compile(&b.circuit())
                    .unwrap_or_else(|e| panic!("{label} failed on {b}: {e}"));
                let placement: Vec<String> = compiled
                    .placement()
                    .as_slice()
                    .iter()
                    .map(|h| h.0.to_string())
                    .collect();
                out.push(format!(
                    "{label}|{}|{day}|{}|{}|{}|{}|{}|{:016x}",
                    b.name(),
                    placement.join(","),
                    compiled.swap_count(),
                    compiled.duration_slots(),
                    compiled.physical_circuit().len(),
                    compiled.hardware_cnot_count(),
                    compiled.estimated_reliability().to_bits(),
                ));
            }
        }
    }
    out
}

/// Geometric mean of a slice of positive values (used for the paper's
/// "geomean improvement" numbers). Returns 0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Renders a simple aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a fraction with three decimal places.
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_the_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_of_mixed_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn format_table_aligns_columns() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        assert!(t.contains("name"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn run_benchmark_produces_sane_outcome() {
        let machine = ibmq16_on_day(0);
        let outcome = run_benchmark(&machine, CompilerConfig::greedy_e(), Benchmark::Bv4, 256, 1);
        assert!(outcome.success_rate > 0.0 && outcome.success_rate <= 1.0);
        assert!(outcome.duration_slots > 0);
    }

    #[test]
    fn machine_with_qubits_covers_request() {
        for n in [4, 32, 128] {
            assert!(machine_with_qubits(n).num_qubits() >= n);
        }
    }
}
