//! Emits `BENCH_sim.json`: a machine-readable throughput baseline for the
//! noisy simulator, so future PRs can track the perf trajectory.
//!
//! For each measured configuration it runs the full compile-then-simulate
//! pipeline at 4096 trials, repeats the simulation several times, and
//! records the **best** observed trials/second (best-of-N is robust against
//! scheduler noise on shared machines).
//!
//! Usage: `cargo run --release --bin bench_sim_baseline [output-path]`
//! (default output: `BENCH_sim.json` in the current directory).

use nisq_bench::ibmq16_on_day;
use nisq_core::{Compiler, CompilerConfig};
use nisq_ir::Benchmark;
use nisq_sim::{Simulator, SimulatorConfig};
use std::time::Instant;

const TRIALS: u32 = 4096;
const REPETITIONS: usize = 5;

struct Measurement {
    benchmark: &'static str,
    compiler: &'static str,
    gates: usize,
    trials: u32,
    best_trials_per_sec: f64,
    mean_trials_per_sec: f64,
}

fn measure(
    benchmark: Benchmark,
    compiler_name: &'static str,
    config: CompilerConfig,
) -> Measurement {
    let machine = ibmq16_on_day(0);
    let compiled = Compiler::new(&machine, config)
        .compile(&benchmark.circuit())
        .expect("paper benchmarks compile on IBMQ16");
    let physical = compiled.physical_circuit();
    let sim = Simulator::new(&machine, SimulatorConfig::with_trials(TRIALS, 1));

    // One warm-up run outside the timed region.
    let _ = sim.run(physical);

    let mut rates = Vec::with_capacity(REPETITIONS);
    for _ in 0..REPETITIONS {
        let start = Instant::now();
        let result = sim.run(physical);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(result.trials(), TRIALS);
        rates.push(f64::from(TRIALS) / elapsed);
    }
    let best = rates.iter().cloned().fold(0.0f64, f64::max);
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    Measurement {
        benchmark: benchmark.name(),
        compiler: compiler_name,
        gates: physical.expand_swaps().len(),
        trials: TRIALS,
        best_trials_per_sec: best,
        mean_trials_per_sec: mean,
    }
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| String::from("BENCH_sim.json"));

    let measurements = vec![
        measure(Benchmark::Bv8, "qiskit", CompilerConfig::qiskit()),
        measure(
            Benchmark::Bv8,
            "r_smt_star",
            CompilerConfig::r_smt_star(0.5),
        ),
        measure(Benchmark::Toffoli, "qiskit", CompilerConfig::qiskit()),
        measure(
            Benchmark::Adder,
            "r_smt_star",
            CompilerConfig::r_smt_star(0.5),
        ),
    ];

    // Hand-rolled JSON: the workspace has no serde_json offline (see
    // shims/README.md); the format below is stable and append-friendly.
    let mut json = String::from("{\n  \"trials_per_run\": 4096,\n  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"compiler\": \"{}\", \"physical_gates\": {}, \
             \"trials\": {}, \"best_trials_per_sec\": {:.1}, \"mean_trials_per_sec\": {:.1}}}{}\n",
            m.benchmark,
            m.compiler,
            m.gates,
            m.trials,
            m.best_trials_per_sec,
            m.mean_trials_per_sec,
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&output, &json).expect("failed to write baseline file");
    println!("wrote {output}");
    for m in &measurements {
        println!(
            "  {:>8} / {:<10} {:>6} gates  best {:>10.0} trials/s  mean {:>10.0} trials/s",
            m.benchmark, m.compiler, m.gates, m.best_trials_per_sec, m.mean_trials_per_sec
        );
    }
}
