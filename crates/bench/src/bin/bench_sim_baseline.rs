//! Emits `BENCH_sim.json`: a machine-readable throughput baseline for the
//! noisy simulator, so future PRs can track the perf trajectory.
//!
//! For each measured configuration it runs the full compile-then-simulate
//! pipeline at 4096 trials, repeats the simulation several times, and
//! records the **best** observed trials/second (best-of-N is robust against
//! scheduler noise on shared machines).
//!
//! Usage:
//!
//! ```text
//! bench_sim_baseline [output-path]                    # write a snapshot
//! bench_sim_baseline [output-path] --check <baseline> # ...and ratchet
//!                    [--max-regress <fraction>]       #    (default 0.20)
//!                    [--require-tableau]              # backend occupancy
//! ```
//!
//! With `--check`, every measured configuration's `best_trials_per_sec` is
//! compared against the checked-in baseline; the process exits non-zero if
//! any configuration regresses by more than the allowed fraction (the CI
//! ratchet of the roadmap). Improvements are reported but never fail.
//! `--require-tableau` additionally fails the run if any wide Clifford
//! entry (BV64/BV128/ghz48) was not served by the stabilizer-tableau
//! backend — backend selection is automatic, so a silent fallback to the
//! dense path is a bug, not a tuning choice.

use nisq_core::CompilerConfig;
use nisq_exp::{NoiseSpec, Session, DEFAULT_MACHINE_SEED};
use nisq_ir::{bernstein_vazirani, random_circuit, Benchmark, Circuit, RandomCircuitConfig};
use nisq_machine::TopologySpec;
use nisq_sim::{Simulator, SimulatorConfig};
use std::time::Instant;

const TRIALS: u32 = 4096;
/// The random-circuit scalability entries (rand12/rand14) route onto a 4x4
/// grid and simulate states up to 2^16 amplitudes with errors in nearly
/// every trial, so they run fewer trials per repetition to keep the
/// wall-clock sane. (BV12 stays at the full trial count: its classical
/// output keeps the tier-1 shortcut hot.)
const LARGE_TRIALS: u32 = 1024;
const REPETITIONS: usize = 5;

struct Measurement {
    benchmark: &'static str,
    compiler: &'static str,
    gates: usize,
    trials: u32,
    /// Which state backend served the trials ("dense" or "tableau"), as
    /// reported by the engine's tier counters.
    backend: &'static str,
    best_trials_per_sec: f64,
    mean_trials_per_sec: f64,
}

/// One benchmarked configuration: a circuit compiled with `config` on
/// `topology`, simulated under full noise for `trials` per repetition.
struct Spec {
    name: &'static str,
    compiler: &'static str,
    config: CompilerConfig,
    circuit: Circuit,
    topology: TopologySpec,
    trials: u32,
    /// Entries wider than 24 qubits only exist because the stabilizer
    /// tableau serves them; `--require-tableau` turns a silent dense
    /// fallback on these into a hard failure.
    require_tableau: bool,
    /// Extra declarative channels lowered into the program (`None` for
    /// the calibration-only entries).
    noise: Option<NoiseSpec>,
}

impl Spec {
    /// A paper benchmark on the default IBMQ16 device at full trial count.
    fn paper(benchmark: Benchmark, compiler: &'static str, config: CompilerConfig) -> Self {
        Spec {
            name: benchmark.name(),
            compiler,
            config,
            circuit: benchmark.circuit(),
            topology: TopologySpec::Ibmq16,
            trials: TRIALS,
            require_tableau: false,
            noise: None,
        }
    }
}

/// A deep Clifford-only circuit (H/S layers over a CNOT ladder): every
/// error trial has an all-Clifford suffix, so the whole error budget is
/// served by the engine's tier-0 Pauli propagation. This entry ratchets the
/// tier-0 path itself — before tier 0, every one of its error trials paid a
/// multi-hundred-gate state replay at 2^14 amplitudes.
fn clifford_ladder(qubits: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(qubits);
    for layer in 0..layers {
        for q in 0..qubits {
            if (q + layer) % 2 == 0 {
                c.h(nisq_ir::Qubit(q));
            } else {
                c.s(nisq_ir::Qubit(q));
            }
        }
        let mut q = layer % 2;
        while q + 1 < qubits {
            c.cnot(nisq_ir::Qubit(q), nisq_ir::Qubit(q + 1));
            q += 2;
        }
    }
    c.measure_all();
    c
}

/// A deep GHZ ladder: one Hadamard seeds a parity chain that is folded
/// forward and backward `rounds` times before the terminal measurement —
/// pure H/CNOT, fully Clifford, and far too wide for any dense
/// representation (2^48 amplitudes at 48 qubits). Exists purely to pin the
/// tableau backend's wide-path throughput.
fn ghz_ladder(qubits: usize, rounds: usize) -> Circuit {
    let mut c = Circuit::new(qubits);
    c.h(nisq_ir::Qubit(0));
    for _ in 0..rounds {
        for q in 0..qubits - 1 {
            c.cnot(nisq_ir::Qubit(q), nisq_ir::Qubit(q + 1));
        }
        for q in (0..qubits - 1).rev() {
            c.cnot(nisq_ir::Qubit(q), nisq_ir::Qubit(q + 1));
        }
    }
    c.measure_all();
    c
}

/// An alternating hidden string for the wide Bernstein-Vazirani entries.
fn bv_hidden(bits: usize) -> Vec<bool> {
    (0..bits).map(|i| i % 3 != 1).collect()
}

fn measure(session: &mut Session, spec: &Spec) -> Measurement {
    let machine = session.machine(spec.topology, DEFAULT_MACHINE_SEED, 0);
    let compiled = session
        .compile(&machine, &spec.config, &spec.circuit)
        .expect("baseline benchmarks compile on their machine");
    let physical = compiled.physical_circuit();
    let sim = Simulator::new(&machine, SimulatorConfig::with_trials(spec.trials, 1));
    // Lowering happens once, outside the timed region: what's ratcheted is
    // trial throughput, not program analysis.
    let program = sim.prepare_with_noise(physical, spec.noise.as_ref());

    // One warm-up run outside the timed region.
    let (_, tiers) = sim.run_program_with_stats(&program);
    let backend = tiers.backend.name();

    let mut rates = Vec::with_capacity(REPETITIONS);
    for _ in 0..REPETITIONS {
        let start = Instant::now();
        let (result, _) = sim.run_program_with_stats(&program);
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(result.trials(), spec.trials);
        rates.push(f64::from(spec.trials) / elapsed);
    }
    let best = rates.iter().cloned().fold(0.0f64, f64::max);
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    Measurement {
        benchmark: spec.name,
        compiler: spec.compiler,
        gates: physical.expand_swaps().len(),
        trials: spec.trials,
        backend,
        best_trials_per_sec: best,
        mean_trials_per_sec: mean,
    }
}

/// Extracts `(benchmark, compiler, best_trials_per_sec)` triples from a
/// baseline file written by this binary (hand-rolled parse: the workspace
/// has no serde_json offline).
fn parse_baseline(text: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{\"benchmark\"") {
            continue;
        }
        let field = |key: &str| -> Option<&str> {
            let tag = format!("\"{key}\": ");
            let start = line.find(&tag)? + tag.len();
            let rest = &line[start..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim().trim_matches('"'))
        };
        if let (Some(b), Some(c), Some(rate)) = (
            field("benchmark"),
            field("compiler"),
            field("best_trials_per_sec").and_then(|v| v.parse::<f64>().ok()),
        ) {
            out.push((b.to_string(), c.to_string(), rate));
        }
    }
    out
}

/// Compares fresh measurements against a baseline; returns the number of
/// configurations that regressed beyond `max_regress` plus the number of
/// baseline rows no measurement covers (so renaming or dropping a
/// configuration cannot silently disable its guard).
fn ratchet(
    measurements: &[Measurement],
    baseline: &[(String, String, f64)],
    max_regress: f64,
) -> usize {
    let mut regressions = 0;
    for (b, c, _) in baseline {
        if !measurements
            .iter()
            .any(|m| m.benchmark == *b && m.compiler == *c)
        {
            println!("  {b:>8} / {c:<10} in baseline but NOT MEASURED — update BENCH_sim.json");
            regressions += 1;
        }
    }
    for m in measurements {
        let Some((_, _, base)) = baseline
            .iter()
            .find(|(b, c, _)| b == m.benchmark && c == m.compiler)
        else {
            println!(
                "  {:>8} / {:<10} not in baseline (new measurement, ok)",
                m.benchmark, m.compiler
            );
            continue;
        };
        let ratio = m.best_trials_per_sec / base;
        let verdict = if ratio < 1.0 - max_regress {
            regressions += 1;
            "REGRESSED"
        } else if ratio > 1.0 {
            "improved"
        } else {
            "ok"
        };
        println!(
            "  {:>8} / {:<10} baseline {:>10.0}  now {:>10.0}  ({:+.1}%)  {}",
            m.benchmark,
            m.compiler,
            base,
            m.best_trials_per_sec,
            (ratio - 1.0) * 100.0,
            verdict
        );
    }
    regressions
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut output = String::from("BENCH_sim.json");
    let mut check: Option<String> = None;
    let mut require_tableau = false;
    let mut max_regress = 0.20f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {
                check = Some(
                    args.get(i + 1)
                        .expect("--check needs a baseline path")
                        .clone(),
                );
                i += 2;
            }
            "--require-tableau" => {
                require_tableau = true;
                i += 1;
            }
            "--max-regress" => {
                max_regress = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .expect("--max-regress needs a fraction, e.g. 0.2");
                i += 2;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}; see the doc comment for usage");
                std::process::exit(2);
            }
            other => {
                output = other.to_string();
                i += 1;
            }
        }
    }

    // One session for the whole run: machine snapshots are built once and
    // compiles share the placement cache.
    //
    // The ≥12-qubit entries (BV12 on IBMQ16, random circuits routed onto a
    // 4x4 grid) exercise the fig11-scale regime where the state-vector
    // kernels dominate a trial, so SIMD kernel regressions are ratcheted
    // where they matter most.
    let specs = [
        Spec::paper(Benchmark::Bv8, "qiskit", CompilerConfig::qiskit()),
        Spec::paper(
            Benchmark::Bv8,
            "r_smt_star",
            CompilerConfig::r_smt_star(0.5),
        ),
        Spec::paper(Benchmark::Toffoli, "qiskit", CompilerConfig::qiskit()),
        Spec::paper(
            Benchmark::Adder,
            "r_smt_star",
            CompilerConfig::r_smt_star(0.5),
        ),
        // Amplitude damping on every measurement: a non-Pauli Kraus
        // channel, so backend selection forces dense and *every* trial is
        // a full replay with per-site branch selection — this entry
        // ratchets the Kraus-channel replay path itself, which no
        // calibration-only workload exercises.
        Spec {
            name: "Toffoli-ad",
            compiler: "qiskit",
            config: CompilerConfig::qiskit(),
            circuit: Benchmark::Toffoli.circuit(),
            topology: TopologySpec::Ibmq16,
            trials: LARGE_TRIALS,
            require_tableau: false,
            noise: Some(
                NoiseSpec::from_json(
                    r#"{"name": "ad-measure", "bindings": [
                        {"on": "measure", "rate": 0.05,
                         "channel": {"kind": "amplitude-damping"}}]}"#,
                )
                .expect("the baseline noise spec is valid"),
            ),
        },
        Spec {
            name: "BV12",
            compiler: "qiskit",
            config: CompilerConfig::qiskit(),
            circuit: bernstein_vazirani(&[
                true, false, true, true, false, true, false, true, true, false, true,
            ]),
            topology: TopologySpec::Ibmq16,
            trials: TRIALS,
            require_tableau: false,
            noise: None,
        },
        Spec {
            name: "rand12",
            compiler: "greedy_e",
            config: CompilerConfig::greedy_e(),
            circuit: random_circuit(RandomCircuitConfig::new(12, 96, 7)),
            topology: TopologySpec::Grid { mx: 4, my: 4 },
            trials: LARGE_TRIALS,
            require_tableau: false,
            noise: None,
        },
        Spec {
            name: "rand14",
            compiler: "greedy_e",
            config: CompilerConfig::greedy_e(),
            circuit: random_circuit(RandomCircuitConfig::new(14, 112, 9)),
            topology: TopologySpec::Grid { mx: 4, my: 4 },
            trials: LARGE_TRIALS,
            require_tableau: false,
            noise: None,
        },
        // BV16 fills the whole IBMQ16 device (2^16 amplitudes): the widest
        // paper-family entry, Clifford-only, with swap-back mid-circuit
        // measurements — the tier-0 + fused-flush showcase.
        Spec {
            name: "BV16",
            compiler: "qiskit",
            config: CompilerConfig::qiskit(),
            circuit: bernstein_vazirani(&[
                true, false, true, true, false, true, false, true, true, false, true, true, false,
                false, true,
            ]),
            topology: TopologySpec::Ibmq16,
            trials: TRIALS,
            require_tableau: false,
            noise: None,
        },
        Spec {
            name: "cliff14",
            compiler: "greedy_e",
            config: CompilerConfig::greedy_e(),
            circuit: clifford_ladder(14, 40),
            topology: TopologySpec::Grid { mx: 4, my: 4 },
            trials: LARGE_TRIALS,
            require_tableau: false,
            noise: None,
        },
        // The wide Clifford entries below exceed any 2^n state vector and
        // exist only because the stabilizer-tableau backend serves them;
        // `--require-tableau` (used by CI) fails the run if backend
        // selection ever silently falls back to dense for these.
        Spec {
            name: "BV64",
            compiler: "greedy_e",
            config: CompilerConfig::greedy_e(),
            circuit: bernstein_vazirani(&bv_hidden(63)),
            topology: TopologySpec::Grid { mx: 8, my: 8 },
            trials: TRIALS,
            require_tableau: true,
            noise: None,
        },
        Spec {
            name: "BV128",
            compiler: "greedy_e",
            config: CompilerConfig::greedy_e(),
            circuit: bernstein_vazirani(&bv_hidden(127)),
            topology: TopologySpec::Grid { mx: 12, my: 11 },
            trials: LARGE_TRIALS,
            require_tableau: true,
            noise: None,
        },
        Spec {
            name: "ghz48",
            compiler: "greedy_e",
            config: CompilerConfig::greedy_e(),
            circuit: ghz_ladder(48, 8),
            topology: TopologySpec::Grid { mx: 7, my: 7 },
            trials: TRIALS,
            require_tableau: true,
            noise: None,
        },
    ];
    let mut session = Session::new();
    let measurements: Vec<Measurement> = specs.iter().map(|s| measure(&mut session, s)).collect();

    // Backend-occupancy guard: the wide Clifford entries must actually be
    // served by the tableau backend — a silent dense fallback would either
    // panic (>24 qubits) or quietly ratchet the wrong engine.
    if require_tableau {
        let mut missing = 0;
        for (spec, m) in specs.iter().zip(&measurements) {
            if spec.require_tableau && m.backend != "tableau" {
                eprintln!(
                    "  {:>8} / {:<10} expected the tableau backend, got {}",
                    m.benchmark, m.compiler, m.backend
                );
                missing += 1;
            }
        }
        if missing > 0 {
            eprintln!("{missing} wide entries were not served by the tableau backend");
            std::process::exit(1);
        }
        println!("backend occupancy check passed (all wide entries on tableau)");
    }

    // Hand-rolled JSON: the workspace has no serde_json offline (see
    // shims/README.md); the format below is stable and append-friendly.
    let mut json = String::from("{\n  \"trials_per_run\": 4096,\n  \"measurements\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"compiler\": \"{}\", \"physical_gates\": {}, \
             \"trials\": {}, \"backend\": \"{}\", \"best_trials_per_sec\": {:.1}, \
             \"mean_trials_per_sec\": {:.1}}}{}\n",
            m.benchmark,
            m.compiler,
            m.gates,
            m.trials,
            m.backend,
            m.best_trials_per_sec,
            m.mean_trials_per_sec,
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&output, &json).expect("failed to write baseline file");
    println!("wrote {output}");
    for m in &measurements {
        println!(
            "  {:>8} / {:<10} {:>6} gates  [{}]  best {:>10.0} trials/s  mean {:>10.0} trials/s",
            m.benchmark,
            m.compiler,
            m.gates,
            m.backend,
            m.best_trials_per_sec,
            m.mean_trials_per_sec
        );
    }

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let baseline = parse_baseline(&text);
        assert!(
            !baseline.is_empty(),
            "baseline {baseline_path} contains no measurements"
        );
        println!(
            "\nratchet against {baseline_path} (allowed regression {:.0}%):",
            max_regress * 100.0
        );
        let regressions = ratchet(&measurements, &baseline, max_regress);
        if regressions > 0 {
            eprintln!(
                "{regressions} configuration(s) regressed more than {:.0}%",
                max_regress * 100.0
            );
            std::process::exit(1);
        }
        println!("ratchet passed");
    }
}
