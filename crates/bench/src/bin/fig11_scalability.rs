//! Figure 11: compile-time scalability of the optimal (R-SMT*) and greedy
//! (GreedyE*) methods on randomly generated circuits with 4-128 qubits and
//! 128-2048 gates.
//!
//! The exact solver's budget is capped (like the paper's 3-hour SMT runs)
//! so the sweep finishes in minutes; budget-limited points are marked with
//! an asterisk and report the time spent before the cap.

use nisq_bench::{format_table, machine_with_qubits};
use nisq_core::{CompiledCircuit, Compiler, CompilerConfig};
use nisq_ir::{random_circuit, RandomCircuitConfig};
use std::time::Duration;

/// Time the mapper itself spent, from the pipeline's per-pass timings (the
/// quantity of Figure 11: solver/heuristic time, excluding scheduling and
/// emission).
fn place_time(compiled: &CompiledCircuit) -> Duration {
    compiled
        .pass_timings()
        .iter()
        .find(|t| t.pass == "place")
        .map(|t| t.elapsed)
        .unwrap_or_default()
}

fn main() {
    let gate_counts = [128usize, 256, 512, 1024, 2048];
    let smt_qubits = [4usize, 8, 16, 32];
    let greedy_qubits = [4usize, 8, 16, 32, 64, 128];
    let budget = Duration::from_secs(
        std::env::var("NISQ_SOLVER_BUDGET_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20),
    );

    println!("Figure 11: mapper (place-pass) time in microseconds on random circuits\n");

    println!(
        "R-SMT* (exact solver, budget {}s per point; * = budget hit)\n",
        budget.as_secs()
    );
    let mut rows = Vec::new();
    for &qubits in &smt_qubits {
        let machine = machine_with_qubits(qubits);
        let mut cells = vec![format!("{qubits} qubits")];
        for &gates in &gate_counts {
            let circuit = random_circuit(RandomCircuitConfig::new(qubits, gates, 7));
            let config = CompilerConfig::r_smt_star(0.5).with_solver_budget(u64::MAX, Some(budget));
            let compiled = Compiler::new(&machine, config).compile(&circuit).unwrap();
            let elapsed = place_time(&compiled);
            let capped = elapsed >= budget;
            cells.push(format!(
                "{}{}",
                elapsed.as_micros(),
                if capped { "*" } else { "" }
            ));
        }
        rows.push(cells);
    }
    let headers: Vec<String> = std::iter::once("Machine".to_string())
        .chain(gate_counts.iter().map(|g| format!("{g} gates")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", format_table(&header_refs, &rows));

    println!("GreedyE* (heuristic)\n");
    let mut rows = Vec::new();
    for &qubits in &greedy_qubits {
        let machine = machine_with_qubits(qubits);
        let mut cells = vec![format!("{qubits} qubits")];
        for &gates in &gate_counts {
            let circuit = random_circuit(RandomCircuitConfig::new(qubits, gates, 7));
            let compiled = Compiler::new(&machine, CompilerConfig::greedy_e())
                .compile(&circuit)
                .unwrap();
            cells.push(place_time(&compiled).as_micros().to_string());
        }
        rows.push(cells);
    }
    println!("{}", format_table(&header_refs, &rows));
    println!(
        "The paper reports the SMT approach needing hours at 32 qubits while the greedy \
         heuristics stay under one second everywhere; the same separation (orders of \
         magnitude, growing with qubit count) should be visible above."
    );
}
